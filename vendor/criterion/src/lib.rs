//! Offline stand-in for the [criterion](https://docs.rs/criterion) harness.
//!
//! The build environment has no registry access, so the workspace vendors
//! this minimal, API-compatible subset instead of the real crate. It
//! covers exactly the surface the `autocomp_bench` benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, measurement_time, warm_up_time,
//! bench_function, bench_with_input, finish}`, `Bencher::{iter,
//! iter_batched}`, `BenchmarkId` and `BatchSize`.
//!
//! Measurement model: each benchmark is warmed up for the group's
//! `warm_up_time`, then timed for `sample_size` samples, each sample
//! running enough iterations to fill `measurement_time / sample_size`.
//! Results are printed in a criterion-like one-line format plus a
//! machine-readable `CRITERION_SHIM_RESULT {json}` line that CI and
//! `BENCH_ooda.json` tooling parse.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the shim
/// always times the routine alone, excluding setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Opaque equivalent of criterion's `Criterion` context.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards trailing args to the bench
        // binary; honor a single positional filter and ignore flags so
        // harness-level options don't break the shim.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a routine with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut f);
        self
    }

    /// Benchmarks a routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full_id = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: also calibrates iterations-per-sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(f64::total_cmp);
        let low = samples_ns[0];
        let high = samples_ns[samples_ns.len() - 1];
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        println!(
            "{full_id:<48} time: [{} {} {}]",
            fmt_ns(low),
            fmt_ns(median),
            fmt_ns(high)
        );
        println!(
            "CRITERION_SHIM_RESULT {{\"id\":\"{full_id}\",\"mean_ns\":{mean:.1},\"median_ns\":{median:.1},\"min_ns\":{low:.1},\"max_ns\":{high:.1},\"samples\":{},\"iters_per_sample\":{iters_per_sample}}}",
            samples_ns.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Times closures handed to it by benchmark routines.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
