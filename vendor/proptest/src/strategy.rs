//! Value-generation strategies: integer ranges, tuples, map, one-of.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// Generates values of one type from a random stream.
///
/// Object-safe subset of proptest's `Strategy`: combinators require
/// `Self: Sized`, generation does not.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Boxes a strategy for heterogeneous storage (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty strategy range");
                    ((self.start as i128) + rng.below(span as u128) as i128) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        // 53 uniformly random mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Strategy for "any value of T" (`any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Mirrors `proptest::prelude::any`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

any_int_strategy!(u8, u16, u32, u64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Mapped strategy (`Strategy::prop_map`).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Builds from the macro-boxed arms.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u128) as usize;
        self.options[idx].generate(rng)
    }
}
