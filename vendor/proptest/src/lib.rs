//! Offline stand-in for the [proptest](https://docs.rs/proptest) crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! this minimal, API-compatible subset: the `proptest!` macro (with
//! optional `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, integer-range / tuple / `collection::vec` strategies,
//! `any::<bool>()`, and `Strategy::prop_map`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (reproducible by construction) and failing cases are
//! reported with their generated inputs but **not shrunk**.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares deterministic property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    // Rendered before the body runs: the body takes the
                    // values by move, and there is no shrinking pass to
                    // re-derive them afterwards.
                    let mut dump = ::std::string::String::new();
                    $(
                        dump.push_str(&::std::format!(
                            "\n  {} = {:?}", stringify!($arg), $arg
                        ));
                    )+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        ::std::panic!(
                            "proptest case {}/{} failed: {}{}",
                            case + 1, config.cases, e, dump
                        );
                    }
                }
            }
        )*
    };
}

/// Fallible assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fallible equality assertion usable inside [`proptest!`] bodies.
/// Accepts optional trailing format arguments, like the real crate's.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    ::std::format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}
