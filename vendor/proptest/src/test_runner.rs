//! Deterministic case generation and failure reporting.

use std::fmt;

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 — small, fast, deterministic; plenty for input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed per-case seed so every run regenerates identical inputs.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15 ^ (u64::from(case).wrapping_mul(0xbf58_476d_1ce4_e5b9)),
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = u128::from(self.next_u64()) << 64 | u128::from(self.next_u64());
        wide % bound
    }
}
