//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s with lengths drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u128;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
