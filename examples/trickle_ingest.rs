//! Trickle/CDC ingestion with an optimize-after-write hook (§5 push mode).
//!
//! A CDC stream appends tiny files every few minutes. An after-write hook
//! watches the small-file count; when it crosses the tuned threshold the
//! hook triggers immediate compaction, keeping the table's file count
//! bounded while a hook-less twin table fragments without limit.
//!
//! Run with: `cargo run --release --example trickle_ingest`

use autocomp::{AfterWriteHook, FileCountReduction, HookAction, HookMode};
use autocomp_lakesim::hooks::evaluate_hook_direct;
use lakesim_catalog::TablePolicy;
use lakesim_engine::{EnvConfig, FileSizePlan, RewriteOptions, SimEnv, WriteSpec, MS_PER_MIN};
use lakesim_lst::{
    plan_table_rewrite, BinPackConfig, ColumnType, Field, PartitionKey, PartitionSpec, Schema,
    TableId, TableProperties,
};
use lakesim_storage::MB;

fn make_table(env: &mut SimEnv, name: &str) -> TableId {
    let schema = Schema::new(vec![
        Field::new(1, "op_seq", ColumnType::Int64, true),
        Field::new(2, "row", ColumnType::Utf8 { avg_len: 120 }, false),
    ])
    .expect("valid schema");
    env.create_table(
        "cdc",
        name,
        schema,
        PartitionSpec::unpartitioned(),
        TableProperties::default(),
        TablePolicy {
            min_age_ms: 0,
            ..TablePolicy::default()
        },
    )
    .expect("fresh table")
}

fn main() {
    let mut env = SimEnv::new(EnvConfig {
        seed: 7,
        ..EnvConfig::default()
    });
    env.create_database("cdc", "stream-tenant", None)
        .expect("fresh database");
    let hooked = make_table(&mut env, "orders_cdc_hooked");
    let unhooked = make_table(&mut env, "orders_cdc_plain");

    let hook = AfterWriteHook::new(
        HookMode::Immediate,
        Box::new(FileCountReduction::default()),
        40.0, // compact once 40 small files accumulate
    );

    println!("minute  hooked-files  plain-files  action");
    for tick in 0..120u64 {
        let now = tick * 5 * MS_PER_MIN; // one CDC batch every 5 minutes
        for table in [hooked, unhooked] {
            let spec = WriteSpec::insert(
                table,
                PartitionKey::unpartitioned(),
                8 * MB,
                FileSizePlan::trickle(),
                "query",
            );
            env.submit_write(&spec, now).expect("cdc append");
        }
        env.drain_due(now + 2 * MS_PER_MIN);

        // The hook only watches the hooked table.
        let mut action_str = "";
        if let Some(HookAction::TriggerNow) = evaluate_hook_direct(&mut env, &hook, hooked) {
            let plan = {
                let entry = env.catalog.table(hooked).expect("exists");
                plan_table_rewrite(&entry.table, &BinPackConfig::default())
            };
            if !plan.is_empty() {
                let predicted = env.cost().estimate_gbhr(64.0, plan.input_bytes());
                let opts = RewriteOptions {
                    cluster: "compaction".to_string(),
                    parallelism: 3,
                    trigger: "after-write".to_string(),
                    predicted_reduction: plan.expected_reduction(),
                    predicted_gbhr: predicted,
                };
                env.submit_rewrite(&plan, &opts, now + 2 * MS_PER_MIN)
                    .expect("rewrite submitted");
                action_str = "<- hook fired, compaction scheduled";
            }
        }
        if tick % 12 == 0 || !action_str.is_empty() {
            let h = env
                .catalog
                .table(hooked)
                .expect("exists")
                .table
                .file_count();
            let p = env
                .catalog
                .table(unhooked)
                .expect("exists")
                .table
                .file_count();
            println!("{:>6}  {:>12}  {:>11}  {action_str}", tick * 5, h, p);
        }
    }
    env.drain_all();
    let h = env
        .catalog
        .table(hooked)
        .expect("exists")
        .table
        .file_count();
    let p = env
        .catalog
        .table(unhooked)
        .expect("exists")
        .table
        .file_count();
    println!("\nafter {} hours of CDC:", 120 * 5 / 60);
    println!("  hooked table:   {h} files (bounded by the after-write hook)");
    println!("  unhooked table: {p} files (unbounded fragmentation)");
    assert!(h < p, "the hook must keep the file count bounded");
}
