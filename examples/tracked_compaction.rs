//! The act-phase job runtime over the simulated lake: a fleet driven
//! through `run_cycle_tracked_incremental`, showing the full managed
//! lifecycle — submissions tracked in the in-flight ledger, repeat
//! candidates suppressed while their job runs, conflicted jobs retried
//! with backoff, admission deferrals, and settled outcomes feeding the
//! estimator calibration automatically (no `FeedbackBridge`).
//!
//! Run with: `cargo run --release --example tracked_compaction`

use autocomp::{
    AutoComp, AutoCompConfig, ComputeCostGbhr, FileCountReduction, FleetObserver, JobRuntimeConfig,
    MinSizeFilter, RankingPolicy, ScopeStrategy, TraitWeight,
};
use autocomp_lakesim::{share, LakesimConnector, LakesimExecutor};
use lakesim_catalog::TablePolicy;
use lakesim_engine::{EnvConfig, FileSizePlan, SimEnv, WriteSpec};
use lakesim_lst::{
    ColumnType, Field, PartitionKey, PartitionSpec, Schema, TableId, TableProperties,
};
use lakesim_storage::MB;

fn main() {
    // A small fleet of fragmented tables across two databases.
    let mut env = SimEnv::new(EnvConfig {
        seed: 11,
        cost: lakesim_engine::CostModel {
            // Zero write-coordination overhead so user writes land inside
            // compaction windows at this compressed timescale — the §4.4
            // commit races the runtime's retries exist for.
            write_job_overhead_ms: 0,
            ..lakesim_engine::CostModel::default()
        },
        ..EnvConfig::default()
    });
    let tables: Vec<TableId> = (0..8)
        .map(|i| {
            let db = format!("db{}", i % 2);
            if i < 2 {
                env.create_database(&db, "tenant", None).unwrap();
            }
            let schema = Schema::new(vec![Field::new(1, "k", ColumnType::Int64, true)]).unwrap();
            let t = env
                .create_table(
                    &db,
                    &format!("t{i}"),
                    schema,
                    PartitionSpec::unpartitioned(),
                    TableProperties::default(),
                    TablePolicy::default(),
                )
                .unwrap();
            let spec = WriteSpec::insert(
                t,
                PartitionKey::unpartitioned(),
                (64 + 32 * i) * MB,
                FileSizePlan::trickle(),
                "query",
            );
            env.submit_write(&spec, i * 10_000).unwrap();
            t
        })
        .collect();
    env.drain_all();
    let shared = share(env);

    let connector = LakesimConnector::new(shared.clone());
    let mut executor = LakesimExecutor::new(shared.clone());
    let mut observer = FleetObserver::new();
    let mut ac = AutoComp::new(AutoCompConfig {
        scope: ScopeStrategy::Table,
        policy: RankingPolicy::Moop {
            weights: vec![
                TraitWeight::new("file_count_reduction", 0.7),
                TraitWeight::new("compute_cost_gbhr", 0.3),
            ],
            k: 3,
        },
        trigger_label: "tracked".into(),
        calibrate: true,
    })
    .with_filter(Box::new(MinSizeFilter {
        min_total_bytes: MB,
        min_file_count: 2,
    }))
    .with_trait(Box::new(FileCountReduction::default()))
    .with_trait(Box::new(ComputeCostGbhr::default()))
    .with_job_tracker(JobRuntimeConfig {
        max_in_flight: 4,
        max_in_flight_per_database: 2,
        retry_backoff_ms: 30_000,
        ..JobRuntimeConfig::default()
    });

    // Ten OODA cycles on a tight cadence (shorter than a compaction
    // job), so jobs span cycles: repeat candidates are suppressed while
    // their job runs, and a user write aimed at an in-flight table races
    // the rewrite commit → conflict → backoff retry.
    let mut now = 1_000_000u64;
    for cycle in 0..10 {
        let report = ac
            .run_cycle_tracked_incremental(&mut observer, &connector, &mut executor, now)
            .unwrap();
        println!(
            "cycle {cycle}: executed={} retried={} deferred={} | jobs: {}",
            report.executed.len(),
            report.retried.len(),
            report.deferred.len(),
            report.ledger,
        );
        // Write into the table whose job was just submitted: the commit
        // race plays out inside the rewrite's vulnerability window.
        let target = report
            .executed
            .first()
            .map(|j| TableId(j.id.table_uid))
            .unwrap_or(tables[cycle % tables.len()]);
        let spec = WriteSpec::insert(
            target,
            PartitionKey::unpartitioned(),
            8 * MB,
            FileSizePlan::trickle(),
            "query",
        );
        shared.borrow_mut().submit_write(&spec, now + 100).unwrap();
        now += 5_000;
    }
    shared.borrow_mut().drain_all();

    let env = shared.borrow();
    println!(
        "\nmaintenance log: {} succeeded, {} conflicted, {} failed",
        env.maintenance.count(lakesim_catalog::JobStatus::Succeeded),
        env.maintenance
            .count(lakesim_catalog::JobStatus::Conflicted),
        env.maintenance.count(lakesim_catalog::JobStatus::Failed),
    );
    println!(
        "auto-ingested feedback records: {} (reduction calibration {:.3}, cost calibration {:.3})",
        ac.feedback().records().len(),
        ac.feedback().reduction_calibration(),
        ac.feedback().cost_calibration(),
    );
    assert!(
        !ac.feedback().records().is_empty(),
        "the loop must close: settled successes feed calibration"
    );
}
