//! Auto-tuning compaction trigger thresholds (§6.3): a cost-frugal local
//! search over the small-file-count threshold of an optimize-after-write
//! hook, with full end-to-end workload runs as the objective.
//!
//! Run with: `cargo run --release --example autotune_thresholds`

use autocomp_bench::experiments::tuning::{
    run_fig9_panel, run_tuned_workload, TuneTrait, TuneWorkload,
};

fn main() {
    // Baseline: no compaction at all (threshold = infinity).
    let default_s = run_tuned_workload(
        TuneWorkload::TpcdsWp1,
        TuneTrait::SmallFileCount,
        f64::INFINITY,
        5,
    );
    println!("TPC-DS WP1, compaction disabled: {default_s:.1}s\n");

    // Tune the threshold with 15 CFO iterations.
    let panel = run_fig9_panel(TuneWorkload::TpcdsWp1, TuneTrait::SmallFileCount, 15, 5);
    println!("iter  threshold  duration(s)");
    for (i, threshold, duration) in &panel.trials {
        let marker = if *duration <= panel.best_duration_s + 1e-9 {
            "  <- best so far"
        } else {
            ""
        };
        println!("{i:>4}  {threshold:>9.1}  {duration:>10.1}{marker}");
    }
    println!(
        "\nbest tuned: {:.1}s vs default {:.1}s ({:+.1}%)",
        panel.best_duration_s,
        panel.default_duration_s,
        (panel.best_duration_s / panel.default_duration_s - 1.0) * 100.0
    );
    println!("\nthe paper's takeaway (§6.3): thresholds are workload-specific —");
    println!("the same search on TPC-H keeps compaction off (its rewrites are");
    println!("whole-table), while WP1/WP3 benefit from a tuned trigger.");
}
