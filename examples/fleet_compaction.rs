//! Fleet-scale compaction with quota-aware, budget-constrained selection —
//! the §7 production configuration: MOOP ranking with
//! `w1 = 0.5 × (1 + UsedQuota/TotalQuota)` and dynamic k under a GBHr
//! budget.
//!
//! Run with: `cargo run --release --example fleet_compaction`

use autocomp::RankingPolicy;
use autocomp_bench::experiments::production::{auto_cycle, production_pipeline};
use lakesim_catalog::JobStatus;
use lakesim_engine::AppKind;
use lakesim_storage::MB;
use lakesim_workload::fleet::{Fleet, FleetConfig};

fn main() {
    // Tenant databases with tight namespace quotas: quota pressure is the
    // §7 prioritization signal.
    let config = FleetConfig {
        databases: 6,
        tables_per_db: 15,
        quota_per_db: Some(60_000),
        initial_days: 4,
        seed: 77,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::build(&config);
    let policy = RankingPolicy::QuotaAwareMoop {
        benefit_trait: "file_count_reduction".to_string(),
        cost_trait: "compute_cost_gbhr".to_string(),
        k: None,
        budget: Some(15.0), // GBHr per daily cycle — the dynamic-k budget
    };
    let mut pipeline = production_pipeline(policy, true);

    println!("day  selected-k  jobs-ok  files-reduced  comp-GBHr  small-file-%  worst-quota-%");
    let mut last_reduced = 0i64;
    let mut last_gbhr = 0.0;
    for day in 0..7 {
        fleet.advance_day();
        let selected = auto_cycle(&fleet, &mut pipeline, true);
        let env = fleet.env.borrow();
        let reduced: i64 = env
            .maintenance
            .with_status(JobStatus::Succeeded)
            .map(|r| r.actual_reduction)
            .sum();
        let gbhr = env
            .cluster("compaction")
            .map(|c| c.total_gbhr(AppKind::Compaction))
            .unwrap_or(0.0);
        let worst_quota = env
            .fs
            .namespaces()
            .iter()
            .filter_map(|ns| env.fs.quota_usage(ns).ok())
            .map(|q| q.utilization())
            .fold(0.0f64, f64::max);
        println!(
            "{:>3}  {:>10}  {:>7}  {:>13}  {:>9.2}  {:>12.1}  {:>13.1}",
            day,
            selected,
            env.maintenance.count(JobStatus::Succeeded),
            reduced - last_reduced,
            gbhr - last_gbhr,
            env.fs
                .size_histogram(Some(lakesim_storage::FileKind::Data))
                .fraction_at_or_below(128 * MB)
                * 100.0,
            worst_quota * 100.0,
        );
        last_reduced = reduced;
        last_gbhr = gbhr;
    }
    let env = fleet.env.borrow();
    println!(
        "\nestimator accuracy over the week: ΔF bias {:+.1}%, cost bias {:+.1}% ({} jobs)",
        env.maintenance.accuracy().reduction_bias * 100.0,
        env.maintenance.accuracy().cost_bias * 100.0,
        env.maintenance.accuracy().jobs,
    );
    println!(
        "quota-breach write failures so far: {}",
        env.metrics.quota_failures
    );
}
