//! Quickstart: build a small simulated lake, fragment a table with a
//! misconfigured writer, run one AutoComp cycle, and inspect the
//! explainable decision report.
//!
//! Run with: `cargo run --release --example quickstart`

use autocomp::{
    AlreadyCompactFilter, AutoComp, AutoCompConfig, CompactionDisabledFilter, ComputeCostGbhr,
    FileCountReduction, RankingPolicy, ScopeStrategy, TraitWeight,
};
use autocomp_lakesim::{share, LakesimConnector, LakesimExecutor};
use lakesim_catalog::TablePolicy;
use lakesim_engine::{EnvConfig, FileSizePlan, SimEnv, WriteSpec, MS_PER_HOUR};
use lakesim_lst::{ColumnType, Field, PartitionKey, PartitionSpec, Schema, TableProperties};
use lakesim_storage::{FileKind, MB};

fn main() {
    // 1. A lake with one database and one table.
    let mut env = SimEnv::new(EnvConfig {
        seed: 42,
        ..EnvConfig::default()
    });
    env.create_database("demo", "quickstart-tenant", None)
        .expect("fresh database");
    let schema = Schema::new(vec![
        Field::new(1, "id", ColumnType::Int64, true),
        Field::new(2, "payload", ColumnType::Utf8 { avg_len: 64 }, false),
    ])
    .expect("valid schema");
    let table = env
        .create_table(
            "demo",
            "events",
            schema,
            PartitionSpec::unpartitioned(),
            TableProperties::default(),
            TablePolicy {
                min_age_ms: 0,
                ..TablePolicy::default()
            },
        )
        .expect("fresh table");

    // 2. A misconfigured writer floods it with small files (§2 of the
    //    paper: the root cause of small-file proliferation).
    for hour in 0..3u64 {
        let spec = WriteSpec::insert(
            table,
            PartitionKey::unpartitioned(),
            512 * MB,
            FileSizePlan::misconfigured(),
            "query",
        );
        env.submit_write(&spec, hour * MS_PER_HOUR)
            .expect("write accepted");
    }
    env.drain_all();
    println!(
        "before compaction: {} data files ({} small)",
        env.fs.total_files_of_kind(FileKind::Data),
        env.fs.small_file_count(512 * MB),
    );

    // 3. AutoComp: observe → orient → decide → act, exactly as §3.3.
    let mut pipeline = AutoComp::new(AutoCompConfig {
        scope: ScopeStrategy::Table,
        policy: RankingPolicy::Moop {
            weights: vec![
                TraitWeight::new("file_count_reduction", 0.7),
                TraitWeight::new("compute_cost_gbhr", 0.3),
            ],
            k: 5,
        },
        trigger_label: "quickstart".to_string(),
        calibrate: false,
    })
    .with_filter(Box::new(CompactionDisabledFilter))
    .with_filter(Box::new(AlreadyCompactFilter {
        min_small_files: 2,
        min_small_fraction: 0.0,
    }))
    .with_trait(Box::new(FileCountReduction::default()))
    .with_trait(Box::new(ComputeCostGbhr::default()));

    let shared = share(env);
    let connector = LakesimConnector::new(shared.clone());
    let mut executor = LakesimExecutor::new(shared.clone());
    let now = 4 * MS_PER_HOUR;
    let report = pipeline
        .run_cycle(&connector, &mut executor, now)
        .expect("cycle runs");
    drop(connector);
    drop(executor);

    // 4. The decision trail (NFR2 explainability).
    println!("\n{report}");

    // 5. Let the compaction job finish and compare.
    let mut env = std::rc::Rc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("no lingering refs"))
        .into_inner();
    env.drain_all();
    println!(
        "after compaction: {} data files ({} small)",
        env.fs.total_files_of_kind(FileKind::Data),
        env.fs.small_file_count(512 * MB),
    );
    let record = &env.maintenance.records()[0];
    println!(
        "job #{}: predicted ΔF={} actual ΔF={} | predicted {:.3} GBHr actual {:.3} GBHr",
        record.job_id,
        record.predicted_reduction,
        record.actual_reduction,
        record.predicted_gbhr,
        record.actual_gbhr,
    );
}
