//! Parameter spaces for trigger tuning.

use std::collections::BTreeMap;

/// One bounded continuous parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Inclusive lower bound.
    pub min: f64,
    /// Inclusive upper bound.
    pub max: f64,
}

impl Param {
    /// Creates a parameter; panics if the bounds are inverted.
    pub fn new(name: impl Into<String>, min: f64, max: f64) -> Self {
        assert!(min <= max, "inverted bounds for parameter");
        Param {
            name: name.into(),
            min,
            max,
        }
    }

    /// Clamps a value into the parameter's range.
    pub fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.min, self.max)
    }

    /// Range width.
    pub fn span(&self) -> f64 {
        self.max - self.min
    }
}

/// An ordered set of parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    params: Vec<Param>,
}

impl ParamSpace {
    /// Builds a space; panics on duplicate names.
    pub fn new(params: Vec<Param>) -> Self {
        for i in 0..params.len() {
            for j in (i + 1)..params.len() {
                assert_ne!(params[i].name, params[j].name, "duplicate parameter name");
            }
        }
        ParamSpace { params }
    }

    /// Parameters in declaration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The midpoint assignment (used as a deterministic starting point).
    pub fn midpoint(&self) -> Assignment {
        Assignment {
            values: self
                .params
                .iter()
                .map(|p| (p.name.clone(), (p.min + p.max) / 2.0))
                .collect(),
        }
    }

    /// The low-corner assignment (CFO starts from low-cost points).
    pub fn low_corner(&self) -> Assignment {
        Assignment {
            values: self
                .params
                .iter()
                .map(|p| (p.name.clone(), p.min))
                .collect(),
        }
    }

    /// Clamps every value of an assignment into range.
    pub fn clamp(&self, mut a: Assignment) -> Assignment {
        for p in &self.params {
            if let Some(v) = a.values.get_mut(&p.name) {
                *v = p.clamp(*v);
            }
        }
        a
    }
}

/// A concrete parameter assignment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Assignment {
    /// Values keyed by parameter name.
    pub values: BTreeMap<String, f64>,
}

impl Assignment {
    /// Reads one value.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Sets one value (builder style).
    pub fn with(mut self, name: &str, value: f64) -> Self {
        self.values.insert(name.to_string(), value);
        self
    }

    /// Compact display for logs: `name=value` pairs.
    pub fn describe(&self) -> String {
        self.values
            .iter()
            .map(|(k, v)| format!("{k}={v:.3}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_and_midpoints() {
        let s = ParamSpace::new(vec![Param::new("a", 0.0, 10.0), Param::new("b", -1.0, 1.0)]);
        assert_eq!(s.midpoint().get("a"), Some(5.0));
        assert_eq!(s.midpoint().get("b"), Some(0.0));
        assert_eq!(s.low_corner().get("a"), Some(0.0));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn clamping() {
        let s = ParamSpace::new(vec![Param::new("a", 0.0, 10.0)]);
        let a = Assignment::default().with("a", 99.0);
        assert_eq!(s.clamp(a).get("a"), Some(10.0));
        assert_eq!(Param::new("a", 0.0, 1.0).clamp(-5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let _ = ParamSpace::new(vec![Param::new("a", 0.0, 1.0), Param::new("a", 0.0, 2.0)]);
    }

    #[test]
    fn describe_is_sorted_and_stable() {
        let a = Assignment::default().with("b", 2.0).with("a", 1.0);
        assert_eq!(a.describe(), "a=1.000 b=2.000");
    }
}
