//! Optimizers: random search and cost-frugal local search.

use crate::space::{Assignment, ParamSpace};

/// Ask/tell optimizer interface.
pub trait Optimizer {
    /// Proposes the next assignment to evaluate.
    fn ask(&mut self) -> Assignment;
    /// Reports the objective value of an evaluated assignment
    /// (lower is better).
    fn tell(&mut self, assignment: &Assignment, value: f64);
}

/// Deterministic xorshift-based uniform sampler (self-contained so the
/// tuner has no dependencies; see DESIGN.md on pinned randomness).
#[derive(Debug, Clone)]
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Self {
        Prng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }
    fn next_f64(&mut self) -> f64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        let y = x.wrapping_mul(0x2545F4914F6CDD1D);
        (y >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform random search over the space.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    space: ParamSpace,
    rng: Prng,
}

impl RandomSearch {
    /// Creates a random searcher.
    pub fn new(space: ParamSpace, seed: u64) -> Self {
        RandomSearch {
            space,
            rng: Prng::new(seed),
        }
    }
}

impl Optimizer for RandomSearch {
    fn ask(&mut self) -> Assignment {
        let mut a = Assignment::default();
        for p in self.space.params() {
            let v = p.min + self.rng.next_f64() * p.span();
            a = a.with(&p.name, v);
        }
        a
    }
    fn tell(&mut self, _assignment: &Assignment, _value: f64) {}
}

/// Cost-frugal local search in the spirit of FLAML's CFO [Wang et al.,
/// MLSys'21], which the paper tunes with (§6.3):
///
/// * start from the low corner of the space (low-cost configurations
///   first),
/// * propose a random direction at the current step radius,
/// * move on improvement and grow the radius; on failure shrink it,
/// * restart from a random point when the radius collapses.
#[derive(Debug, Clone)]
pub struct CfoSearch {
    space: ParamSpace,
    rng: Prng,
    incumbent: Assignment,
    incumbent_value: Option<f64>,
    /// Step radius as a fraction of each parameter's span.
    radius: f64,
    pending: Option<Assignment>,
}

impl CfoSearch {
    /// Creates a CFO-style searcher.
    pub fn new(space: ParamSpace, seed: u64) -> Self {
        let incumbent = space.low_corner();
        CfoSearch {
            space,
            rng: Prng::new(seed ^ 0xC0FFEE),
            incumbent,
            incumbent_value: None,
            radius: 0.25,
            pending: None,
        }
    }

    fn propose_near(&mut self, base: &Assignment) -> Assignment {
        let mut a = Assignment::default();
        for p in self.space.params() {
            let current = base.get(&p.name).unwrap_or(p.min);
            let delta = (self.rng.next_f64() * 2.0 - 1.0) * self.radius * p.span();
            a = a.with(&p.name, p.clamp(current + delta));
        }
        a
    }

    fn random_point(&mut self) -> Assignment {
        let mut a = Assignment::default();
        for p in self.space.params() {
            a = a.with(&p.name, p.min + self.rng.next_f64() * p.span());
        }
        a
    }
}

impl Optimizer for CfoSearch {
    fn ask(&mut self) -> Assignment {
        let proposal = if self.incumbent_value.is_none() {
            self.incumbent.clone()
        } else {
            let base = self.incumbent.clone();
            self.propose_near(&base)
        };
        self.pending = Some(proposal.clone());
        proposal
    }

    fn tell(&mut self, assignment: &Assignment, value: f64) {
        let expected = self.pending.take();
        debug_assert!(
            expected.as_ref() == Some(assignment),
            "tell must report the last ask"
        );
        match self.incumbent_value {
            None => {
                self.incumbent = assignment.clone();
                self.incumbent_value = Some(value);
            }
            Some(best) if value < best => {
                self.incumbent = assignment.clone();
                self.incumbent_value = Some(value);
                self.radius = (self.radius * 1.6).min(0.5);
            }
            Some(_) => {
                self.radius *= 0.7;
                if self.radius < 0.01 {
                    // Restart: keep the incumbent but search elsewhere.
                    self.radius = 0.25;
                    let p = self.random_point();
                    self.incumbent = match self.incumbent_value {
                        Some(_) => self.incumbent.clone(),
                        None => p,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![Param::new("x", -10.0, 10.0)])
    }

    #[test]
    fn random_search_stays_in_bounds() {
        let mut rs = RandomSearch::new(space(), 1);
        for _ in 0..100 {
            let a = rs.ask();
            let x = a.get("x").unwrap();
            assert!((-10.0..=10.0).contains(&x));
            rs.tell(&a, x);
        }
    }

    #[test]
    fn cfo_first_ask_is_low_corner() {
        let mut cfo = CfoSearch::new(space(), 1);
        let a = cfo.ask();
        assert_eq!(a.get("x"), Some(-10.0));
        cfo.tell(&a, 100.0);
        let b = cfo.ask();
        assert!(b.get("x").unwrap() >= -10.0);
    }

    #[test]
    fn cfo_tracks_incumbent() {
        let mut cfo = CfoSearch::new(space(), 2);
        let mut best = f64::INFINITY;
        for _ in 0..50 {
            let a = cfo.ask();
            let x = a.get("x").unwrap();
            let v = (x - 3.0).powi(2);
            best = best.min(v);
            cfo.tell(&a, v);
        }
        // Incumbent value must equal the observed best.
        assert_eq!(cfo.incumbent_value.unwrap(), best);
        assert!(best < 5.0, "best {best}");
    }

    #[test]
    fn radius_shrinks_on_failures() {
        let mut cfo = CfoSearch::new(space(), 3);
        let a = cfo.ask();
        cfo.tell(&a, 0.0); // incumbent value 0 — unbeatable
        let r0 = cfo.radius;
        for _ in 0..5 {
            let a = cfo.ask();
            cfo.tell(&a, 1.0); // always worse
        }
        assert!(cfo.radius < r0);
    }
}
