//! # autocomp-tuner
//!
//! Auto-tuning of compaction triggers (§6.3 of the AutoComp paper).
//!
//! The paper couples AutoComp with MLOS running the FLAML optimizer to
//! "iteratively refine threshold values" for compaction triggers (small
//! file count and file entropy), measuring end-to-end workload duration
//! per iteration (Fig. 9). This crate provides that loop:
//!
//! * a [`space::ParamSpace`] of named bounded parameters,
//! * two optimizers — [`optimizer::RandomSearch`] and
//!   [`optimizer::CfoSearch`], a cost-frugal local search in the spirit of
//!   FLAML's CFO (start from a low-cost point, expand/shrink a step
//!   radius, keep the incumbent),
//! * a [`Tuner`] driving any `FnMut(&Assignment) -> f64` objective and
//!   recording a full [`TuningTrace`] for Fig.-9-style plots.
//!
//! Everything is deterministic given the seed (paper NFR2).

#![warn(missing_docs)]

pub mod optimizer;
pub mod space;

pub use optimizer::{CfoSearch, Optimizer, RandomSearch};
pub use space::{Assignment, Param, ParamSpace};

/// One evaluated trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Parameter assignment evaluated.
    pub assignment: Assignment,
    /// Objective value (lower is better, e.g. workload duration).
    pub value: f64,
}

/// Full optimization history.
#[derive(Debug, Clone, Default)]
pub struct TuningTrace {
    /// Trials in evaluation order.
    pub trials: Vec<Trial>,
}

impl TuningTrace {
    /// The best (lowest-value) trial, if any.
    pub fn best(&self) -> Option<&Trial> {
        self.trials
            .iter()
            .min_by(|a, b| a.value.partial_cmp(&b.value).expect("no NaN objectives"))
    }

    /// Objective values in iteration order (the Fig. 9 y-series).
    pub fn values(&self) -> Vec<f64> {
        self.trials.iter().map(|t| t.value).collect()
    }
}

/// Drives an optimizer against an objective for a fixed iteration budget.
pub struct Tuner<O: Optimizer> {
    optimizer: O,
    budget: usize,
}

impl<O: Optimizer> Tuner<O> {
    /// Creates a tuner with an iteration budget.
    pub fn new(optimizer: O, budget: usize) -> Self {
        Tuner { optimizer, budget }
    }

    /// Runs the loop: ask → evaluate → tell, `budget` times.
    pub fn run(&mut self, mut objective: impl FnMut(&Assignment) -> f64) -> TuningTrace {
        let mut trace = TuningTrace::default();
        for iteration in 0..self.budget {
            let assignment = self.optimizer.ask();
            let value = objective(&assignment);
            self.optimizer.tell(&assignment, value);
            trace.trials.push(Trial {
                iteration,
                assignment,
                value,
            });
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            Param::new("threshold", 0.0, 100.0),
            Param::new("entropy", 0.0, 1.0),
        ])
    }

    /// Quadratic bowl with minimum at (30, 0.4).
    fn bowl(a: &Assignment) -> f64 {
        let x = a.get("threshold").unwrap();
        let y = a.get("entropy").unwrap();
        (x - 30.0).powi(2) + 100.0 * (y - 0.4).powi(2)
    }

    #[test]
    fn random_search_improves_over_iterations() {
        let mut tuner = Tuner::new(RandomSearch::new(space(), 7), 60);
        let trace = tuner.run(bowl);
        assert_eq!(trace.trials.len(), 60);
        let best = trace.best().unwrap();
        let first = &trace.trials[0];
        assert!(best.value <= first.value);
        assert!(best.value < 400.0, "best {}", best.value);
    }

    #[test]
    fn cfo_converges_tighter_than_random_on_smooth_objective() {
        let mut random = Tuner::new(RandomSearch::new(space(), 11), 40);
        let r = random.run(bowl).best().unwrap().value;
        let mut cfo = Tuner::new(CfoSearch::new(space(), 11), 40);
        let c = cfo.run(bowl).best().unwrap().value;
        assert!(c <= r * 1.5, "cfo {c} vs random {r}");
        assert!(c < 100.0, "cfo best {c}");
    }

    #[test]
    fn traces_are_deterministic() {
        let run = |seed| {
            Tuner::new(CfoSearch::new(space(), seed), 25)
                .run(bowl)
                .values()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
