//! Transactions and the optimistic-concurrency conflict model.

use std::collections::BTreeSet;

use crate::datafile::DataFile;
use crate::types::{PartitionKey, SnapshotId};
use lakesim_storage::FileId;

/// The kind of operation a transaction performs, determining its conflict
/// validation rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Fast append of new files. Never conflicts (Iceberg's fast-append).
    Append,
    /// Replace the full contents of the touched partitions (INSERT
    /// OVERWRITE, CoW deletes). Conflicts with any concurrent commit that
    /// touched the same partitions.
    OverwritePartitions,
    /// Row-level delta (MoR update/delete adding delete files, possibly
    /// removing data files). Conflicts with concurrent commits that removed
    /// the files it depends on or rewrote its partitions.
    RowDelta,
    /// Compaction: replace a set of files with their merged equivalents.
    /// Validation depends on [`ConflictMode`].
    RewriteFiles,
}

impl OpKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Append => "append",
            OpKind::OverwritePartitions => "overwrite",
            OpKind::RowDelta => "row-delta",
            OpKind::RewriteFiles => "rewrite",
        }
    }
}

/// How strictly rewrites are validated against concurrent commits.
///
/// §4.4 of the paper: *"in our experiments with Apache Iceberg v1.2.0 and
/// OpenHouse, we observed that, counterintuitively, compaction operations
/// executed concurrently could result in conflicts when targeting distinct
/// partitions within a table."* [`ConflictMode::Strict`] reproduces that
/// behaviour; [`ConflictMode::PartitionAware`] models an implementation
/// with precise partition-level conflict filtering, used for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictMode {
    /// Iceberg v1.2.0-like: a rewrite fails if *any* commit landed on the
    /// table after its base snapshot, regardless of partition overlap.
    #[default]
    Strict,
    /// Precise validation: a rewrite fails only if a concurrent commit
    /// removed files it rewrites or touched the partitions it rewrites.
    PartitionAware,
}

/// A pending transaction against a table.
///
/// Captures the base snapshot at `begin` time; the table validates the
/// transaction against all commits that landed after the base when
/// `commit` is called (optimistic concurrency control).
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Base snapshot observed when the transaction began.
    pub(crate) base_snapshot: Option<SnapshotId>,
    /// Operation kind.
    pub(crate) kind: OpKind,
    /// Files to add.
    pub(crate) added: Vec<DataFile>,
    /// Files to remove (by id).
    pub(crate) removed: BTreeSet<FileId>,
    /// Partitions this transaction explicitly declares it touches, beyond
    /// those implied by added/removed files (used by overwrites of
    /// partitions that become empty).
    pub(crate) declared_partitions: BTreeSet<PartitionKey>,
}

impl Transaction {
    /// Creates a transaction; normally obtained via [`crate::Table::begin`].
    pub fn new(base_snapshot: Option<SnapshotId>, kind: OpKind) -> Self {
        Transaction {
            base_snapshot,
            kind,
            added: Vec::new(),
            removed: BTreeSet::new(),
            declared_partitions: BTreeSet::new(),
        }
    }

    /// The base snapshot this transaction reads from.
    pub fn base_snapshot(&self) -> Option<SnapshotId> {
        self.base_snapshot
    }

    /// The operation kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Stages a file addition.
    pub fn add_file(&mut self, file: DataFile) -> &mut Self {
        self.added.push(file);
        self
    }

    /// Stages a file removal.
    pub fn remove_file(&mut self, file: FileId) -> &mut Self {
        self.removed.insert(file);
        self
    }

    /// Declares a touched partition explicitly.
    pub fn declare_partition(&mut self, key: PartitionKey) -> &mut Self {
        self.declared_partitions.insert(key);
        self
    }

    /// Re-bases the transaction onto a fresh snapshot for a retry after a
    /// conflict. The staged file set is kept: for appends and row deltas
    /// the written files remain valid; rewrites must be re-planned by the
    /// caller instead (their inputs may be gone).
    pub fn rebase(&mut self, new_base: Option<SnapshotId>) {
        self.base_snapshot = new_base;
    }

    /// Files staged for addition.
    pub fn added(&self) -> &[DataFile] {
        &self.added
    }

    /// Files staged for removal.
    pub fn removed(&self) -> &BTreeSet<FileId> {
        &self.removed
    }

    /// Whether the transaction stages no changes.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// All partitions touched: declared plus those of added files.
    /// (Removed files' partitions are resolved by the table at commit.)
    pub fn staged_partitions(&self) -> BTreeSet<PartitionKey> {
        let mut set = self.declared_partitions.clone();
        for f in &self.added {
            set.insert(f.partition.clone());
        }
        set
    }

    /// Total bytes staged for addition.
    pub fn added_bytes(&self) -> u64 {
        self.added.iter().map(|f| f.file_size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PartitionValue;
    use lakesim_storage::MB;

    #[test]
    fn staged_partitions_union_declared_and_added() {
        let mut txn = Transaction::new(None, OpKind::OverwritePartitions);
        txn.declare_partition(PartitionKey::single(PartitionValue::Int(1)));
        txn.add_file(DataFile::data(
            FileId(1),
            PartitionKey::single(PartitionValue::Int(2)),
            10,
            MB,
        ));
        let parts = txn.staged_partitions();
        assert_eq!(parts.len(), 2);
        assert_eq!(txn.added_bytes(), MB);
    }

    #[test]
    fn rebase_updates_base_only() {
        let mut txn = Transaction::new(Some(SnapshotId(1)), OpKind::Append);
        txn.add_file(DataFile::data(
            FileId(1),
            PartitionKey::unpartitioned(),
            1,
            MB,
        ));
        txn.rebase(Some(SnapshotId(5)));
        assert_eq!(txn.base_snapshot(), Some(SnapshotId(5)));
        assert_eq!(txn.added().len(), 1);
    }

    #[test]
    fn emptiness() {
        let txn = Transaction::new(None, OpKind::Append);
        assert!(txn.is_empty());
        let mut txn2 = Transaction::new(None, OpKind::RewriteFiles);
        txn2.remove_file(FileId(4));
        assert!(!txn2.is_empty());
    }

    #[test]
    fn op_labels() {
        assert_eq!(OpKind::RewriteFiles.label(), "rewrite");
        assert_eq!(OpKind::Append.label(), "append");
    }
}
