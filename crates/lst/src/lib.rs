//! # lakesim-lst
//!
//! A log-structured table (LST) format in the style of Apache Iceberg,
//! built as the table substrate for the AutoComp reproduction.
//!
//! The AutoComp paper targets LSTs — Delta Lake, Apache Iceberg, Apache
//! Hudi — whose append-only write patterns and metadata-intensive commits
//! proliferate small files (§1). This crate implements the mechanisms the
//! paper's evaluation depends on:
//!
//! * **Immutable data files** grouped into **snapshots** via **manifests**
//!   and manifest lists; each commit grows the metadata layer (§2, cause
//!   *iv* of small-file existence).
//! * An **optimistic commit protocol** with configurable conflict
//!   semantics. [`ConflictMode::Strict`] reproduces the paper's observation
//!   (§4.4) that with Iceberg v1.2.0, "compaction operations executed
//!   concurrently could result in conflicts when targeting distinct
//!   partitions"; [`ConflictMode::PartitionAware`] models the fixed
//!   behaviour for ablations.
//! * **Copy-on-Write and Merge-on-Read** row-level operations (§2, cause
//!   *ii*): CoW rewrites files on delete, MoR accumulates delete files.
//! * **Scan planning** whose cost scales with manifest/file counts —
//!   the query-performance coupling of Figures 3 and 8.
//! * **Bin-packing compaction planning** (the `rewrite_data_files`
//!   equivalent) at table and partition scope, including the paper's ΔF
//!   file-count-reduction estimator and its partition-aware refinement
//!   (§7, "Model Accuracy and Estimation Errors").
//! * **Snapshot expiry** reclaiming metadata objects.
//!
//! The crate is storage-agnostic: data files reference
//! [`lakesim_storage::FileId`]s, but all filesystem interaction is done by
//! the engine layer.
//!
//! ## Example
//!
//! ```
//! use lakesim_lst::{
//!     OpKind, PartitionKey, Schema, Field, ColumnType,
//!     PartitionSpec, Table, TableId, TableProperties, DataFile,
//! };
//! use lakesim_storage::{FileId, MB};
//!
//! let schema = Schema::new(vec![
//!     Field::new(1, "id", ColumnType::Int64, true),
//!     Field::new(2, "ds", ColumnType::Date, true),
//! ]).unwrap();
//! let mut table = Table::new(
//!     TableId(1), "events", "db1", schema,
//!     PartitionSpec::unpartitioned(), TableProperties::default(), 0,
//! );
//! let mut txn = table.begin(OpKind::Append);
//! txn.add_file(DataFile::data(FileId(10), PartitionKey::unpartitioned(), 100, 8 * MB));
//! let outcome = table.commit(txn, 1_000).unwrap();
//! assert_eq!(table.file_count(), 1);
//! assert!(outcome.new_metadata_objects > 0);
//! ```

#![warn(missing_docs)]

pub mod compaction;
pub mod datafile;
pub mod error;
pub mod manifest;
pub mod scan;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod transaction;
pub mod types;

pub use compaction::{
    plan_partition_rewrite, plan_table_rewrite, synthesize_outputs, BinPackConfig, FileGroup,
    RewritePlan,
};
pub use datafile::{DataFile, FileContent};
pub use error::{CommitError, ConflictKind, LstError};
pub use manifest::{Manifest, ManifestId};
pub use scan::{PartitionFilter, ScanPlan};
pub use schema::{ColumnType, Field, Schema};
pub use snapshot::{Snapshot, SnapshotSummary};
pub use stats::TableStats;
pub use table::{CommitOutcome, ExpireResult, Table, TableProperties};
pub use transaction::{ConflictMode, OpKind, Transaction};
pub use types::{PartitionKey, PartitionSpec, PartitionValue, SnapshotId, TableId, Transform};

/// Crate-level result alias for commit operations.
pub type CommitResult<T> = std::result::Result<T, CommitError>;
