//! Table schemas: typed columns with estimated physical widths.
//!
//! The simulator never materializes rows; schemas exist so that tables can
//! estimate row counts from byte sizes (and vice versa), mirror the paper's
//! TPC-H/TPC-DS setups faithfully, and validate partition specs.

use crate::error::LstError;
use crate::types::{PartitionSpec, Transform};

/// Column types, with estimated encoded width in a columnar file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Boolean (1 byte estimated after encoding).
    Bool,
    /// 32-bit integer.
    Int32,
    /// 64-bit integer.
    Int64,
    /// 64-bit float.
    Float64,
    /// Decimal with precision/scale (stored as 16 bytes).
    Decimal(u8, u8),
    /// Days-since-epoch date.
    Date,
    /// Microsecond timestamp.
    Timestamp,
    /// Variable-length string with an assumed average length.
    Utf8 {
        /// Assumed average encoded length in bytes.
        avg_len: u32,
    },
}

impl ColumnType {
    /// Estimated encoded bytes per value. Columnar encodings compress well;
    /// these are deliberately conservative post-encoding estimates.
    pub fn estimated_width(&self) -> u64 {
        match self {
            ColumnType::Bool => 1,
            ColumnType::Int32 | ColumnType::Date => 4,
            ColumnType::Int64 | ColumnType::Float64 | ColumnType::Timestamp => 8,
            ColumnType::Decimal(_, _) => 16,
            ColumnType::Utf8 { avg_len } => u64::from(*avg_len),
        }
    }
}

/// One schema field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Unique field id within the schema.
    pub id: u32,
    /// Field name, unique within the schema.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// Whether the field is required (non-null).
    pub required: bool,
}

impl Field {
    /// Creates a field.
    pub fn new(id: u32, name: impl Into<String>, ty: ColumnType, required: bool) -> Self {
        Field {
            id,
            name: name.into(),
            ty,
            required,
        }
    }
}

/// A validated table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema, validating that field ids and names are unique.
    pub fn new(fields: Vec<Field>) -> Result<Self, LstError> {
        if fields.is_empty() {
            return Err(LstError::InvalidSchema("schema has no fields".into()));
        }
        for i in 0..fields.len() {
            for j in (i + 1)..fields.len() {
                if fields[i].id == fields[j].id {
                    return Err(LstError::InvalidSchema(format!(
                        "duplicate field id {}",
                        fields[i].id
                    )));
                }
                if fields[i].name == fields[j].name {
                    return Err(LstError::InvalidSchema(format!(
                        "duplicate field name '{}'",
                        fields[i].name
                    )));
                }
            }
        }
        Ok(Schema { fields })
    }

    /// All fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Looks up a field by name.
    pub fn field_by_name(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Looks up a field by id.
    pub fn field_by_id(&self, id: u32) -> Option<&Field> {
        self.fields.iter().find(|f| f.id == id)
    }

    /// Estimated encoded row width in bytes (≥ 1).
    pub fn estimated_row_width(&self) -> u64 {
        self.fields
            .iter()
            .map(|f| f.ty.estimated_width())
            .sum::<u64>()
            .max(1)
    }

    /// Estimated rows in a file of `bytes` size.
    pub fn estimate_rows(&self, bytes: u64) -> u64 {
        bytes / self.estimated_row_width()
    }

    /// Validates a partition spec against this schema: every source column
    /// must exist, and `Month`/`Day` transforms require `Date`/`Timestamp`
    /// sources.
    pub fn validate_spec(&self, spec: &PartitionSpec) -> Result<(), LstError> {
        for pf in &spec.fields {
            let field = self.field_by_id(pf.source_column).ok_or_else(|| {
                LstError::InvalidSpec(format!(
                    "partition field '{}' references unknown column id {}",
                    pf.name, pf.source_column
                ))
            })?;
            let temporal = matches!(field.ty, ColumnType::Date | ColumnType::Timestamp);
            if matches!(pf.transform, Transform::Month | Transform::Day) && !temporal {
                return Err(LstError::InvalidSpec(format!(
                    "transform {} on non-temporal column '{}'",
                    pf.transform.name(),
                    field.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PartitionSpec;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new(1, "orderkey", ColumnType::Int64, true),
            Field::new(2, "shipdate", ColumnType::Date, true),
            Field::new(3, "comment", ColumnType::Utf8 { avg_len: 27 }, false),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert!(Schema::new(vec![]).is_err());
        let dup_id = Schema::new(vec![
            Field::new(1, "a", ColumnType::Bool, true),
            Field::new(1, "b", ColumnType::Bool, true),
        ]);
        assert!(dup_id.is_err());
        let dup_name = Schema::new(vec![
            Field::new(1, "a", ColumnType::Bool, true),
            Field::new(2, "a", ColumnType::Bool, true),
        ]);
        assert!(dup_name.is_err());
    }

    #[test]
    fn lookups_work() {
        let s = schema();
        assert_eq!(s.field_by_name("shipdate").unwrap().id, 2);
        assert_eq!(s.field_by_id(3).unwrap().name, "comment");
        assert!(s.field_by_name("nope").is_none());
    }

    #[test]
    fn row_width_and_row_estimates() {
        let s = schema();
        assert_eq!(s.estimated_row_width(), 8 + 4 + 27);
        assert_eq!(s.estimate_rows(390), 10);
    }

    #[test]
    fn spec_validation() {
        let s = schema();
        assert!(s
            .validate_spec(&PartitionSpec::single(2, Transform::Month, "m"))
            .is_ok());
        // Month of an int column is invalid.
        assert!(s
            .validate_spec(&PartitionSpec::single(1, Transform::Month, "m"))
            .is_err());
        // Unknown column.
        assert!(s
            .validate_spec(&PartitionSpec::single(9, Transform::Identity, "x"))
            .is_err());
        // Bucket of anything is fine.
        assert!(s
            .validate_spec(&PartitionSpec::single(1, Transform::Bucket(16), "b"))
            .is_ok());
    }
}
