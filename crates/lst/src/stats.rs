//! Table statistics: the standardized observe-phase payload.
//!
//! §4.1 of the paper proposes "a standardized layout for statistics that
//! accommodates both generic and custom metrics"; generic statistics
//! include "the number of files in a candidate as well as their
//! corresponding file sizes". [`TableStats`] is that generic layout,
//! computable for a whole table or any partition subset.

use std::collections::BTreeSet;

use crate::table::Table;
use crate::types::PartitionKey;
use lakesim_storage::SizeHistogram;

/// Generic statistics over a candidate's files.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Live file count (data + delete files).
    pub file_count: u64,
    /// Data files strictly smaller than the target size.
    pub small_file_count: u64,
    /// Bytes in those small data files (what a rewrite would process).
    pub small_bytes: u64,
    /// Total live bytes.
    pub total_bytes: u64,
    /// Live delete files (MoR debt).
    pub delete_file_count: u64,
    /// Number of live partitions in scope.
    pub partition_count: u64,
    /// Manifests in the current snapshot (planning cost driver).
    pub manifest_count: u64,
    /// Snapshots retained in the log.
    pub snapshot_count: u64,
    /// Size histogram of data files in scope.
    pub histogram: SizeHistogram,
    /// The target size the small-file metrics were computed against.
    pub target_file_size: u64,
    /// Bytes in data files not sorted by the table's sort column
    /// (candidates for a sort-embedding rewrite).
    pub unsorted_data_bytes: u64,
    /// Bytes in the largest partition in scope (skew signal for
    /// partition relayout).
    pub max_partition_bytes: u64,
}

impl TableStats {
    /// Average data-file size in bytes; 0 when empty.
    pub fn avg_file_size(&self) -> u64 {
        let data_files = self.histogram.total();
        self.histogram
            .total_bytes()
            .checked_div(data_files)
            .unwrap_or(0)
    }

    /// Fraction of data files that are small; 0.0 when empty.
    pub fn small_file_fraction(&self) -> f64 {
        let data_files = self.histogram.total();
        if data_files == 0 {
            0.0
        } else {
            self.small_file_count as f64 / data_files as f64
        }
    }
}

impl Table {
    /// Computes statistics over the whole table, with small-file metrics
    /// relative to `target_file_size`.
    pub fn stats(&self, target_file_size: u64) -> TableStats {
        self.stats_inner(target_file_size, None)
    }

    /// Computes statistics over one partition.
    pub fn partition_stats(&self, key: &PartitionKey, target_file_size: u64) -> TableStats {
        let keys: BTreeSet<PartitionKey> = [key.clone()].into_iter().collect();
        self.stats_inner(target_file_size, Some(&keys))
    }

    fn stats_inner(
        &self,
        target_file_size: u64,
        scope: Option<&BTreeSet<PartitionKey>>,
    ) -> TableStats {
        let mut histogram = SizeHistogram::new();
        let mut file_count = 0;
        let mut small_file_count = 0;
        let mut small_bytes = 0;
        let mut total_bytes = 0;
        let mut delete_file_count = 0;
        let mut unsorted_data_bytes = 0;
        let mut partition_bytes: std::collections::BTreeMap<&PartitionKey, u64> =
            Default::default();
        for f in self.live_files() {
            if let Some(keys) = scope {
                if !keys.contains(&f.partition) {
                    continue;
                }
            }
            file_count += 1;
            total_bytes += f.file_size_bytes;
            *partition_bytes.entry(&f.partition).or_insert(0) += f.file_size_bytes;
            if f.content.is_deletes() {
                delete_file_count += 1;
            } else {
                histogram.record(f.file_size_bytes);
                if f.is_small(target_file_size) {
                    small_file_count += 1;
                    small_bytes += f.file_size_bytes;
                }
                if !f.sorted {
                    unsorted_data_bytes += f.file_size_bytes;
                }
            }
        }
        TableStats {
            file_count,
            small_file_count,
            small_bytes,
            total_bytes,
            delete_file_count,
            partition_count: partition_bytes.len() as u64,
            manifest_count: self.manifests().len() as u64,
            snapshot_count: self.snapshots().len() as u64,
            histogram,
            target_file_size,
            unsorted_data_bytes,
            max_partition_bytes: partition_bytes.values().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datafile::DataFile;
    use crate::schema::{ColumnType, Field, Schema};
    use crate::table::TableProperties;
    use crate::transaction::OpKind;
    use crate::types::{PartitionSpec, PartitionValue, TableId, Transform};
    use lakesim_storage::{FileId, MB};

    fn pkey(i: i32) -> PartitionKey {
        PartitionKey::single(PartitionValue::Date(i))
    }

    fn build() -> Table {
        let schema = Schema::new(vec![
            Field::new(1, "k", ColumnType::Int64, true),
            Field::new(2, "ds", ColumnType::Date, true),
        ])
        .unwrap();
        let mut t = Table::new(
            TableId(1),
            "t",
            "db",
            schema,
            PartitionSpec::single(2, Transform::Month, "m"),
            TableProperties::default(),
            0,
        );
        let mut txn = t.begin(OpKind::Append);
        txn.add_file(DataFile::data(FileId(1), pkey(1), 10, 64 * MB));
        txn.add_file(DataFile::data(FileId(2), pkey(1), 10, 600 * MB));
        txn.add_file(DataFile::data(FileId(3), pkey(2), 10, 32 * MB));
        t.commit(txn, 0).unwrap();
        let mut delta = t.begin(OpKind::RowDelta);
        delta.add_file(DataFile::position_deletes(FileId(4), pkey(2), 2, MB));
        t.commit(delta, 1).unwrap();
        t
    }

    #[test]
    fn table_stats_cover_all_dimensions() {
        let t = build();
        let s = t.stats(512 * MB);
        assert_eq!(s.file_count, 4);
        assert_eq!(s.small_file_count, 2);
        assert_eq!(s.small_bytes, 96 * MB);
        assert_eq!(s.delete_file_count, 1);
        assert_eq!(s.partition_count, 2);
        assert_eq!(s.snapshot_count, 2);
        assert_eq!(s.histogram.total(), 3); // data files only
        assert!((s.small_file_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.avg_file_size(), (64 + 600 + 32) * MB / 3);
        // Ingest writes are unsorted; partition 1 holds the most bytes.
        assert_eq!(s.unsorted_data_bytes, (64 + 600 + 32) * MB);
        assert_eq!(s.max_partition_bytes, (64 + 600) * MB);
    }

    #[test]
    fn sorted_files_leave_the_unsorted_pool() {
        let mut t = build();
        let mut txn = t.begin(OpKind::Append);
        txn.add_file(DataFile::data_sorted(FileId(9), pkey(3), 10, 128 * MB));
        t.commit(txn, 2).unwrap();
        let s = t.stats(512 * MB);
        assert_eq!(s.unsorted_data_bytes, (64 + 600 + 32) * MB);
        assert_eq!(s.total_bytes, (64 + 600 + 32 + 128) * MB + MB);
    }

    #[test]
    fn partition_stats_scope_correctly() {
        let t = build();
        let s = t.partition_stats(&pkey(2), 512 * MB);
        assert_eq!(s.file_count, 2); // one data + one delete
        assert_eq!(s.small_file_count, 1);
        assert_eq!(s.delete_file_count, 1);
        assert_eq!(s.partition_count, 1);
    }

    #[test]
    fn empty_scope_yields_zeroes() {
        let t = build();
        let s = t.partition_stats(&pkey(99), 512 * MB);
        assert_eq!(s.file_count, 0);
        assert_eq!(s.avg_file_size(), 0);
        assert_eq!(s.small_file_fraction(), 0.0);
    }
}
