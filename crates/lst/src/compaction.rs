//! Bin-packing compaction planning, with the paper's ΔF estimator.
//!
//! §4.2: *"For a given compaction candidate c, we estimate file count
//! reduction after compaction as ΔF_c = Σ 1\[FileSize_i \< TargetFileSize\]"*.
//! §7 then observes that table-level estimates "may overestimate the number
//! of small files that can be merged, since compaction does not cross
//! partitions". Both the naive and the partition-aware estimators live
//! here, so the feedback loop can quantify exactly that error.

use std::collections::BTreeSet;

use crate::datafile::DataFile;
use crate::table::Table;
use crate::types::{PartitionKey, TableId};
use lakesim_storage::{FileId, MB};

/// Configuration for bin-pack rewrite planning, mirroring Iceberg's
/// `rewrite_data_files` knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinPackConfig {
    /// Desired output file size.
    pub target_file_size: u64,
    /// Files at or above `small_file_fraction * target` are left alone.
    /// Iceberg's default min-file-size threshold is 75% of the target.
    pub small_file_fraction: f64,
    /// Minimum number of qualifying input files before a group is worth
    /// rewriting (avoids churning nearly-compact partitions).
    pub min_input_files: usize,
}

impl Default for BinPackConfig {
    fn default() -> Self {
        BinPackConfig {
            target_file_size: 512 * MB,
            small_file_fraction: 0.75,
            min_input_files: 2,
        }
    }
}

impl BinPackConfig {
    /// The size below which a file qualifies as rewrite input.
    pub fn small_threshold(&self) -> u64 {
        (self.target_file_size as f64 * self.small_file_fraction) as u64
    }
}

/// One group of files rewritten together (never crosses partitions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileGroup {
    /// Partition the group belongs to.
    pub partition: PartitionKey,
    /// Input file ids.
    pub inputs: Vec<FileId>,
    /// Delete files removed alongside (MoR debt cleared by the rewrite).
    pub delete_inputs: Vec<FileId>,
    /// Total input bytes (data files only).
    pub input_bytes: u64,
    /// Expected output file count: `ceil(input_bytes / target)`.
    pub expected_outputs: u64,
}

impl FileGroup {
    /// Expected file-count reduction for this group (inputs − outputs,
    /// including cleared delete files).
    pub fn expected_reduction(&self) -> i64 {
        (self.inputs.len() + self.delete_inputs.len()) as i64 - self.expected_outputs as i64
    }
}

/// A complete rewrite plan for a candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewritePlan {
    /// Table being rewritten.
    pub table: TableId,
    /// Groups, in partition order (deterministic).
    pub groups: Vec<FileGroup>,
}

impl RewritePlan {
    /// Total input bytes across groups.
    pub fn input_bytes(&self) -> u64 {
        self.groups.iter().map(|g| g.input_bytes).sum()
    }

    /// Total input files across groups.
    pub fn input_files(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| (g.inputs.len() + g.delete_inputs.len()) as u64)
            .sum()
    }

    /// Expected file-count reduction across groups — the *partition-aware*
    /// ΔF estimator (§7's suggested refinement).
    pub fn expected_reduction(&self) -> i64 {
        self.groups.iter().map(FileGroup::expected_reduction).sum()
    }

    /// Whether there is anything to do.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Plans a bin-pack rewrite of every partition in the table.
pub fn plan_table_rewrite(table: &Table, config: &BinPackConfig) -> RewritePlan {
    let groups = table
        .partition_keys()
        .into_iter()
        .filter_map(|key| plan_group(table, &key, config))
        .collect();
    RewritePlan {
        table: table.id(),
        groups,
    }
}

/// Plans a bin-pack rewrite of one partition; `None` when the partition
/// does not meet the rewrite criteria.
pub fn plan_partition_rewrite(
    table: &Table,
    partition: &PartitionKey,
    config: &BinPackConfig,
) -> RewritePlan {
    RewritePlan {
        table: table.id(),
        groups: plan_group(table, partition, config).into_iter().collect(),
    }
}

fn plan_group(table: &Table, key: &PartitionKey, config: &BinPackConfig) -> Option<FileGroup> {
    let ids: &BTreeSet<FileId> = table.files_in_partition(key)?;
    let threshold = config.small_threshold();
    let mut inputs = Vec::new();
    let mut delete_inputs = Vec::new();
    let mut input_bytes = 0;
    let mut has_deletes = false;
    for id in ids {
        let f: &DataFile = table.file(*id).expect("index consistent");
        if f.content.is_deletes() {
            delete_inputs.push(*id);
            has_deletes = true;
        } else if f.file_size_bytes < threshold {
            inputs.push(*id);
            input_bytes += f.file_size_bytes;
        }
    }
    // Delete files force their partition's data files into the rewrite so
    // the merged output is delete-free (MoR compaction semantics).
    if has_deletes {
        for id in ids {
            let f = table.file(*id).expect("index consistent");
            if !f.content.is_deletes() && f.file_size_bytes >= threshold {
                inputs.push(*id);
                input_bytes += f.file_size_bytes;
            }
        }
        inputs.sort();
    }
    if inputs.len() < config.min_input_files.max(1) {
        return None;
    }
    let expected_outputs = input_bytes.div_ceil(config.target_file_size).max(1);
    // Rewriting is only useful if it reduces the file count.
    let group = FileGroup {
        partition: key.clone(),
        inputs,
        delete_inputs,
        input_bytes,
        expected_outputs,
    };
    if group.expected_reduction() <= 0 {
        return None;
    }
    Some(group)
}

/// Sizes of the output files a rewrite of `input_bytes` produces: full
/// target-size files plus one remainder.
pub fn synthesize_outputs(input_bytes: u64, target_file_size: u64) -> Vec<u64> {
    let target = target_file_size.max(1);
    let full = input_bytes / target;
    let rem = input_bytes % target;
    let mut out = vec![target; full as usize];
    if rem > 0 {
        out.push(rem);
    }
    if out.is_empty() {
        out.push(input_bytes.max(1));
    }
    out
}

/// The paper's *table-level* ΔF estimator: number of live data files
/// smaller than the target (§4.2). Over-estimates when small files are
/// spread one-per-partition (§7) — compare with
/// [`RewritePlan::expected_reduction`].
pub fn naive_delta_f(table: &Table, target_file_size: u64) -> u64 {
    table
        .live_files()
        .filter(|f| !f.content.is_deletes() && f.is_small(target_file_size))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Field, Schema};
    use crate::table::TableProperties;
    use crate::transaction::OpKind;
    use crate::types::{PartitionSpec, PartitionValue, Transform};
    use proptest::prelude::*;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new(1, "k", ColumnType::Int64, true),
            Field::new(2, "ds", ColumnType::Date, true),
        ])
        .unwrap();
        Table::new(
            TableId(7),
            "t",
            "db",
            schema,
            PartitionSpec::single(2, Transform::Month, "m"),
            TableProperties::default(),
            0,
        )
    }

    fn pkey(i: i32) -> PartitionKey {
        PartitionKey::single(PartitionValue::Date(i))
    }

    fn with_files(sizes_mb_per_partition: &[(i32, &[u64])]) -> Table {
        let mut t = table();
        let mut next = 1;
        for (p, sizes) in sizes_mb_per_partition {
            let mut txn = t.begin(OpKind::Append);
            for mb in *sizes {
                txn.add_file(DataFile::data(FileId(next), pkey(*p), 100, mb * MB));
                next += 1;
            }
            t.commit(txn, 0).unwrap();
        }
        t
    }

    #[test]
    fn packs_small_files_per_partition() {
        let t = with_files(&[(1, &[64, 64, 64, 64]), (2, &[600])]);
        let cfg = BinPackConfig::default();
        let plan = plan_table_rewrite(&t, &cfg);
        assert_eq!(plan.groups.len(), 1); // partition 2 already compact
        let g = &plan.groups[0];
        assert_eq!(g.inputs.len(), 4);
        assert_eq!(g.input_bytes, 256 * MB);
        assert_eq!(g.expected_outputs, 1);
        assert_eq!(g.expected_reduction(), 3);
    }

    #[test]
    fn respects_min_input_files() {
        let t = with_files(&[(1, &[64])]);
        let plan = plan_table_rewrite(&t, &BinPackConfig::default());
        assert!(plan.is_empty());
    }

    #[test]
    fn skips_groups_without_reduction() {
        // Two 500MB files bin into two outputs (ceil(1000/512)=2): no win.
        let t = with_files(&[(1, &[300, 300])]);
        let plan = plan_table_rewrite(
            &t,
            &BinPackConfig {
                target_file_size: 512 * MB,
                small_file_fraction: 1.0,
                min_input_files: 2,
            },
        );
        assert!(plan.is_empty(), "{plan:?}");
    }

    #[test]
    fn naive_estimator_overestimates_across_partitions() {
        // One small file per partition: naive ΔF counts them all, but no
        // partition has enough inputs to rewrite — the §7 estimation error.
        let t = with_files(&[(1, &[64]), (2, &[64]), (3, &[64])]);
        let cfg = BinPackConfig::default();
        assert_eq!(naive_delta_f(&t, cfg.target_file_size), 3);
        let plan = plan_table_rewrite(&t, &cfg);
        assert_eq!(plan.expected_reduction(), 0);
    }

    #[test]
    fn delete_files_pull_in_large_data_files() {
        let mut t = with_files(&[(1, &[600, 64, 64])]);
        let mut delta = t.begin(OpKind::RowDelta);
        delta.add_file(DataFile::position_deletes(FileId(50), pkey(1), 5, MB));
        t.commit(delta, 1).unwrap();
        let plan = plan_table_rewrite(&t, &BinPackConfig::default());
        let g = &plan.groups[0];
        assert_eq!(g.delete_inputs, vec![FileId(50)]);
        // All three data files rewritten because deletes must be applied.
        assert_eq!(g.inputs.len(), 3);
    }

    #[test]
    fn partition_scope_planning() {
        let t = with_files(&[(1, &[64, 64]), (2, &[64, 64])]);
        let plan = plan_partition_rewrite(&t, &pkey(1), &BinPackConfig::default());
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].partition, pkey(1));
        let missing = plan_partition_rewrite(&t, &pkey(9), &BinPackConfig::default());
        assert!(missing.is_empty());
    }

    proptest! {
        /// Output synthesis conserves bytes and caps file sizes at target.
        #[test]
        fn outputs_conserve_bytes(input in 1u64..50_000_000_000u64, target_mb in 1u64..2048) {
            let target = target_mb * MB;
            let outs = synthesize_outputs(input, target);
            prop_assert_eq!(outs.iter().sum::<u64>(), input);
            prop_assert!(outs.iter().all(|&s| s <= target));
            // Only the last file may be a remainder.
            for s in &outs[..outs.len().saturating_sub(1)] {
                prop_assert_eq!(*s, target);
            }
        }

        /// The partition-aware estimator never exceeds the naive one
        /// (it is the refinement §7 calls for).
        #[test]
        fn partition_aware_bounded_by_naive(
            layout in proptest::collection::vec(
                (0i32..6, proptest::collection::vec(1u64..700, 1..8)),
                1..6,
            )
        ) {
            let rows: Vec<(i32, &[u64])> = layout
                .iter()
                .map(|(p, sizes)| (*p, sizes.as_slice()))
                .collect();
            let t = with_files(&rows);
            let cfg = BinPackConfig::default();
            let plan = plan_table_rewrite(&t, &cfg);
            let naive = naive_delta_f(&t, cfg.target_file_size) as i64;
            prop_assert!(plan.expected_reduction() <= naive,
                "plan {} > naive {}", plan.expected_reduction(), naive);
        }
    }
}
