//! Error types: commit conflicts and structural errors.

use std::fmt;

use crate::types::{PartitionKey, SnapshotId};
use lakesim_storage::FileId;

/// Why a commit conflicted with concurrent activity.
///
/// §4.4 and Table 1 of the paper distinguish *client-side* conflicts
/// (user transactions aborted and retried) from *cluster-side* conflicts
/// (compaction jobs dropped). Both surface here as [`CommitError::Conflict`];
/// the engine layer attributes them to a side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictKind {
    /// Strict-mode rewrite: some other commit (any kind, any partition)
    /// landed since the rewrite's base snapshot. This is the Iceberg
    /// v1.2.0 behaviour the paper observed: concurrent compactions of
    /// *distinct* partitions still fail (§4.4).
    StaleTableForRewrite {
        /// The intervening snapshot that invalidated the rewrite.
        intervening: SnapshotId,
    },
    /// Files this transaction intended to remove were already removed by a
    /// concurrent commit (e.g. another compaction rewrote them).
    RemovedFilesMissing {
        /// Example missing file (first detected).
        file: FileId,
    },
    /// A concurrent commit touched a partition this transaction overwrites
    /// or deletes from.
    PartitionOverlap {
        /// Example overlapping partition (first detected).
        partition: PartitionKey,
        /// The intervening snapshot.
        intervening: SnapshotId,
    },
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictKind::StaleTableForRewrite { intervening } => {
                write!(f, "rewrite base is stale (intervening {intervening})")
            }
            ConflictKind::RemovedFilesMissing { file } => {
                write!(f, "file to remove is gone ({file})")
            }
            ConflictKind::PartitionOverlap {
                partition,
                intervening,
            } => write!(
                f,
                "concurrent commit {intervening} touched partition {partition}"
            ),
        }
    }
}

/// Errors returned by [`crate::Table::commit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// Optimistic concurrency conflict; the transaction must be retried
    /// from a fresh base snapshot.
    Conflict(ConflictKind),
    /// The transaction's base snapshot id is unknown to the table.
    UnknownBaseSnapshot(SnapshotId),
    /// The transaction removes a file the table has never contained.
    UnknownFile(FileId),
    /// The transaction adds a file id that is already live in the table.
    DuplicateFile(FileId),
    /// Empty transaction: nothing to commit.
    EmptyTransaction,
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Conflict(kind) => write!(f, "commit conflict: {kind}"),
            CommitError::UnknownBaseSnapshot(id) => write!(f, "unknown base snapshot {id}"),
            CommitError::UnknownFile(id) => write!(f, "unknown file {id}"),
            CommitError::DuplicateFile(id) => write!(f, "duplicate file {id}"),
            CommitError::EmptyTransaction => write!(f, "empty transaction"),
        }
    }
}

impl std::error::Error for CommitError {}

impl CommitError {
    /// Whether retrying from a refreshed base snapshot may succeed.
    ///
    /// Conflicts are retryable (the paper's clients retry, §6.2); the
    /// structural errors are not.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CommitError::Conflict(_))
    }
}

/// Structural errors outside the commit path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LstError {
    /// Schema construction failed.
    InvalidSchema(String),
    /// Partition spec validation failed.
    InvalidSpec(String),
}

impl fmt::Display for LstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LstError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            LstError::InvalidSpec(msg) => write!(f, "invalid partition spec: {msg}"),
        }
    }
}

impl std::error::Error for LstError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicts_are_retryable_structural_errors_are_not() {
        let c = CommitError::Conflict(ConflictKind::StaleTableForRewrite {
            intervening: SnapshotId(3),
        });
        assert!(c.is_retryable());
        assert!(!CommitError::EmptyTransaction.is_retryable());
        assert!(!CommitError::UnknownFile(FileId(1)).is_retryable());
    }

    #[test]
    fn displays_mention_cause() {
        let c = CommitError::Conflict(ConflictKind::PartitionOverlap {
            partition: PartitionKey::unpartitioned(),
            intervening: SnapshotId(9),
        });
        let s = c.to_string();
        assert!(s.contains("conflict"));
        assert!(s.contains("snap#9"));
    }
}
