//! Scan planning: which files a query reads, and what planning costs.
//!
//! The paper's query-performance results (Fig. 3, Fig. 8, Fig. 11a) hinge
//! on two effects of small files: more per-file open overhead at execution
//! time, and more manifest entries to process at planning time. A
//! [`ScanPlan`] carries exactly those quantities; the engine layer turns
//! them into latency via its cost model.

use std::collections::BTreeSet;

use crate::datafile::DataFile;
use crate::table::Table;
use crate::types::PartitionKey;

/// Which partitions a scan targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionFilter {
    /// Full table scan.
    All,
    /// An explicit set of partitions.
    In(BTreeSet<PartitionKey>),
    /// The `count` most recent partitions in key order — models the
    /// freshness-skewed access of dashboard workloads (§4.1: snapshot
    /// scope for "reasonably fresh data needs more frequent access").
    Recent {
        /// How many trailing partitions to scan.
        count: usize,
    },
    /// A deterministic pseudo-random subset: partition `p` is selected when
    /// `p.stable_hash(salt) % den < num`. Stable across runs (NFR2).
    Sample {
        /// Selected numerator.
        num: u32,
        /// Denominator.
        den: u32,
        /// Hash salt, varied per query for diversity.
        salt: u64,
    },
}

impl PartitionFilter {
    /// Resolves the filter to a concrete partition set for a table.
    pub fn resolve(&self, table: &Table) -> BTreeSet<PartitionKey> {
        let all = table.partition_keys();
        match self {
            PartitionFilter::All => all.into_iter().collect(),
            PartitionFilter::In(keys) => keys.clone(),
            PartitionFilter::Recent { count } => {
                let skip = all.len().saturating_sub(*count);
                all.into_iter().skip(skip).collect()
            }
            PartitionFilter::Sample { num, den, salt } => {
                let den = (*den).max(1);
                all.into_iter()
                    .filter(|k| (k.stable_hash(*salt) % u64::from(den)) < u64::from(*num))
                    .collect()
            }
        }
    }
}

/// The result of planning a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanPlan {
    /// Data files to read.
    pub files: Vec<DataFile>,
    /// Delete files that must be merged at read time (MoR read
    /// amplification).
    pub delete_files: u64,
    /// Total data bytes to read.
    pub bytes: u64,
    /// Manifests opened during planning.
    pub manifests_opened: u64,
    /// Manifest entries processed during planning (metadata bloat cost).
    pub manifest_entries: u64,
    /// Partitions matched.
    pub partitions: u64,
}

impl ScanPlan {
    /// Number of data files in the plan.
    pub fn file_count(&self) -> u64 {
        self.files.len() as u64
    }
}

impl Table {
    /// Plans a scan over the partitions selected by `filter`.
    pub fn plan_scan(&self, filter: &PartitionFilter) -> ScanPlan {
        let wanted = filter.resolve(self);
        // Manifest-level pruning: open only manifests whose partition
        // summary intersects the wanted set; pay per entry in each.
        let mut manifests_opened = 0;
        let mut manifest_entries = 0;
        for m in self.manifests() {
            if m.overlaps(&wanted) {
                manifests_opened += 1;
                manifest_entries += m.entry_count;
            }
        }
        let mut files = Vec::new();
        let mut delete_files = 0;
        let mut bytes = 0;
        for key in &wanted {
            if let Some(ids) = self.files_in_partition(key) {
                for id in ids {
                    let f = self.file(*id).expect("partition index consistent");
                    if f.content.is_deletes() {
                        delete_files += 1;
                    } else {
                        bytes += f.file_size_bytes;
                        files.push(f.clone());
                    }
                }
            }
        }
        ScanPlan {
            files,
            delete_files,
            bytes,
            manifests_opened,
            manifest_entries,
            partitions: wanted.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datafile::DataFile;
    use crate::schema::{ColumnType, Field, Schema};
    use crate::table::TableProperties;
    use crate::transaction::OpKind;
    use crate::types::{PartitionSpec, PartitionValue, TableId, Transform};
    use lakesim_storage::{FileId, MB};

    fn table_with_partitions(n: i32, files_per: u64) -> Table {
        let schema = Schema::new(vec![
            Field::new(1, "k", ColumnType::Int64, true),
            Field::new(2, "ds", ColumnType::Date, true),
        ])
        .unwrap();
        let mut t = Table::new(
            TableId(1),
            "t",
            "db",
            schema,
            PartitionSpec::single(2, Transform::Month, "m"),
            TableProperties::default(),
            0,
        );
        let mut next = 1;
        for p in 0..n {
            let mut txn = t.begin(OpKind::Append);
            for _ in 0..files_per {
                txn.add_file(DataFile::data(
                    FileId(next),
                    PartitionKey::single(PartitionValue::Date(p)),
                    100,
                    16 * MB,
                ));
                next += 1;
            }
            t.commit(txn, u64::from(p as u32)).unwrap();
        }
        t
    }

    #[test]
    fn full_scan_reads_everything() {
        let t = table_with_partitions(4, 3);
        let plan = t.plan_scan(&PartitionFilter::All);
        assert_eq!(plan.file_count(), 12);
        assert_eq!(plan.partitions, 4);
        assert_eq!(plan.bytes, 12 * 16 * MB);
        assert_eq!(plan.manifests_opened, 4);
        assert_eq!(plan.manifest_entries, 12);
    }

    #[test]
    fn recent_filter_takes_trailing_partitions() {
        let t = table_with_partitions(6, 2);
        let plan = t.plan_scan(&PartitionFilter::Recent { count: 2 });
        assert_eq!(plan.partitions, 2);
        assert_eq!(plan.file_count(), 4);
        // Only the manifests covering those partitions open.
        assert_eq!(plan.manifests_opened, 2);
    }

    #[test]
    fn in_filter_is_exact() {
        let t = table_with_partitions(5, 1);
        let wanted: BTreeSet<_> = [PartitionKey::single(PartitionValue::Date(2))]
            .into_iter()
            .collect();
        let plan = t.plan_scan(&PartitionFilter::In(wanted));
        assert_eq!(plan.partitions, 1);
        assert_eq!(plan.file_count(), 1);
    }

    #[test]
    fn sample_filter_is_deterministic_and_proportional() {
        let t = table_with_partitions(64, 1);
        let f = PartitionFilter::Sample {
            num: 1,
            den: 4,
            salt: 7,
        };
        let a = t.plan_scan(&f);
        let b = t.plan_scan(&f);
        assert_eq!(a.partitions, b.partitions);
        // Roughly a quarter; allow generous slack for hash variance.
        assert!(a.partitions >= 4 && a.partitions <= 32, "{}", a.partitions);
        // Different salt gives a (very likely) different subset.
        let c = t.plan_scan(&PartitionFilter::Sample {
            num: 1,
            den: 4,
            salt: 8,
        });
        assert!(c.partitions >= 1);
    }

    #[test]
    fn delete_files_counted_separately() {
        let mut t = table_with_partitions(1, 2);
        let mut delta = t.begin(OpKind::RowDelta);
        delta.add_file(DataFile::position_deletes(
            FileId(1000),
            PartitionKey::single(PartitionValue::Date(0)),
            5,
            MB,
        ));
        t.commit(delta, 10).unwrap();
        let plan = t.plan_scan(&PartitionFilter::All);
        assert_eq!(plan.file_count(), 2);
        assert_eq!(plan.delete_files, 1);
        assert_eq!(plan.bytes, 2 * 16 * MB); // delete file bytes not data bytes
    }
}
