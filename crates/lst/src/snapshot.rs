//! Table snapshots: the versioned commit log.

use std::collections::BTreeSet;

use crate::manifest::ManifestId;
use crate::transaction::OpKind;
use crate::types::{PartitionKey, SnapshotId};
use lakesim_storage::FileId;

/// Aggregate statistics of one commit, mirroring Iceberg's snapshot
/// summary map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotSummary {
    /// Data/delete files added by the commit.
    pub added_files: u64,
    /// Files logically removed by the commit.
    pub removed_files: u64,
    /// Bytes added.
    pub added_bytes: u64,
    /// Bytes removed.
    pub removed_bytes: u64,
}

/// One committed table version.
///
/// Snapshots retain their change sets (`added`, `removed`,
/// `touched_partitions`) because the optimistic commit protocol validates
/// a transaction against every snapshot that landed after its base
/// (§4.4 of the paper; see [`crate::transaction`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Snapshot id (monotonically increasing per table).
    pub id: SnapshotId,
    /// Parent snapshot, `None` for the first commit.
    pub parent: Option<SnapshotId>,
    /// Monotonic sequence number.
    pub sequence_number: u64,
    /// Commit timestamp (simulation ms).
    pub timestamp_ms: u64,
    /// The operation that produced this snapshot.
    pub operation: OpKind,
    /// Files added by this commit.
    pub added: Vec<FileId>,
    /// Files removed by this commit.
    pub removed: Vec<FileId>,
    /// Partitions touched by this commit.
    pub touched_partitions: BTreeSet<PartitionKey>,
    /// Manifest written by this commit.
    pub manifest: ManifestId,
    /// Aggregate statistics.
    pub summary: SnapshotSummary,
}

impl Snapshot {
    /// Whether this snapshot removed the given file.
    pub fn removed_file(&self, file: FileId) -> bool {
        self.removed.contains(&file)
    }

    /// Whether this snapshot touched any of the given partitions.
    pub fn touches_any(&self, partitions: &BTreeSet<PartitionKey>) -> bool {
        // Unpartitioned commits (empty key) are encoded as the empty key in
        // the set, so plain intersection is correct for both cases.
        self.touched_partitions
            .iter()
            .any(|p| partitions.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PartitionValue;

    fn snap(removed: Vec<FileId>, parts: Vec<i64>) -> Snapshot {
        Snapshot {
            id: SnapshotId(1),
            parent: None,
            sequence_number: 1,
            timestamp_ms: 0,
            operation: OpKind::Append,
            added: vec![],
            removed,
            touched_partitions: parts
                .into_iter()
                .map(|i| PartitionKey::single(PartitionValue::Int(i)))
                .collect(),
            manifest: ManifestId(1),
            summary: SnapshotSummary::default(),
        }
    }

    #[test]
    fn removed_file_lookup() {
        let s = snap(vec![FileId(5)], vec![]);
        assert!(s.removed_file(FileId(5)));
        assert!(!s.removed_file(FileId(6)));
    }

    #[test]
    fn partition_touch_intersection() {
        let s = snap(vec![], vec![1, 2]);
        let probe: BTreeSet<_> = [PartitionKey::single(PartitionValue::Int(2))]
            .into_iter()
            .collect();
        assert!(s.touches_any(&probe));
        let miss: BTreeSet<_> = [PartitionKey::single(PartitionValue::Int(7))]
            .into_iter()
            .collect();
        assert!(!s.touches_any(&miss));
    }
}
