//! Manifest summaries: the metadata layer whose growth the paper tracks.
//!
//! Real Iceberg manifests list file entries; the simulator keeps per-
//! manifest *summaries* (entry count + partition coverage) because scan
//! planning cost and metadata bloat depend only on those aggregates. The
//! live file set itself is materialized on [`crate::Table`].

use std::collections::BTreeSet;

use crate::types::{PartitionKey, SnapshotId};

/// Identifier of a manifest within a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ManifestId(pub u64);

/// Summary of one manifest file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Manifest id.
    pub id: ManifestId,
    /// Snapshot that added this manifest.
    pub added_snapshot: SnapshotId,
    /// Number of file entries tracked by the manifest.
    pub entry_count: u64,
    /// Partitions covered, used for manifest-level pruning during planning.
    pub partitions: BTreeSet<PartitionKey>,
}

impl Manifest {
    /// Whether a scan restricted to `keys` must open this manifest.
    ///
    /// An empty coverage set means the manifest covers the implicit
    /// unpartitioned partition and must always be opened.
    pub fn overlaps(&self, keys: &BTreeSet<PartitionKey>) -> bool {
        if self.partitions.is_empty() {
            return true;
        }
        self.partitions.iter().any(|p| keys.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PartitionValue;

    fn key(i: i64) -> PartitionKey {
        PartitionKey::single(PartitionValue::Int(i))
    }

    #[test]
    fn pruning_by_partition_overlap() {
        let m = Manifest {
            id: ManifestId(1),
            added_snapshot: SnapshotId(1),
            entry_count: 10,
            partitions: [key(1), key(2)].into_iter().collect(),
        };
        let want: BTreeSet<_> = [key(2), key(3)].into_iter().collect();
        assert!(m.overlaps(&want));
        let miss: BTreeSet<_> = [key(9)].into_iter().collect();
        assert!(!m.overlaps(&miss));
    }

    #[test]
    fn unpartitioned_manifest_always_opened() {
        let m = Manifest {
            id: ManifestId(1),
            added_snapshot: SnapshotId(1),
            entry_count: 3,
            partitions: BTreeSet::new(),
        };
        let want: BTreeSet<_> = [key(1)].into_iter().collect();
        assert!(m.overlaps(&want));
        assert!(m.overlaps(&BTreeSet::new()));
    }
}
