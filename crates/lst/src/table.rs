//! The table: materialized live state plus the snapshot log and the
//! optimistic commit protocol.

use std::collections::{BTreeMap, BTreeSet};

use crate::datafile::DataFile;
use crate::error::{CommitError, ConflictKind};
use crate::manifest::{Manifest, ManifestId};
use crate::schema::Schema;
use crate::snapshot::{Snapshot, SnapshotSummary};
use crate::transaction::{ConflictMode, OpKind, Transaction};
use crate::types::{PartitionKey, PartitionSpec, SnapshotId, TableId};
use lakesim_storage::{FileId, MB};

/// Number of LST metadata objects written per commit: one manifest, one
/// manifest list, one metadata JSON (§2, cause *iv* of small-file
/// proliferation).
pub const METADATA_OBJECTS_PER_COMMIT: u32 = 3;

/// Table-level configuration properties.
#[derive(Debug, Clone, PartialEq)]
pub struct TableProperties {
    /// Target data file size; 512MB at LinkedIn (§2).
    pub target_file_size: u64,
    /// Conflict validation mode (see [`ConflictMode`]).
    pub conflict_mode: ConflictMode,
    /// File entries per manifest when manifests are consolidated after a
    /// rewrite; controls scan-planning cost.
    pub entries_per_manifest: u64,
}

impl Default for TableProperties {
    fn default() -> Self {
        TableProperties {
            target_file_size: 512 * MB,
            conflict_mode: ConflictMode::Strict,
            entries_per_manifest: 1000,
        }
    }
}

/// Result of a successful commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// The newly created snapshot.
    pub snapshot_id: SnapshotId,
    /// Metadata objects (manifests, manifest list, metadata JSON) written
    /// by this commit; the engine materializes them in storage.
    pub new_metadata_objects: u32,
    /// Files added.
    pub files_added: u64,
    /// Files removed.
    pub files_removed: u64,
}

/// Result of snapshot expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpireResult {
    /// Snapshots dropped from the log.
    pub snapshots_removed: u64,
    /// Estimated metadata objects freed (the engine deletes that many
    /// metadata files from storage).
    pub metadata_objects_freed: u64,
}

/// A log-structured table.
#[derive(Debug, Clone)]
pub struct Table {
    id: TableId,
    name: String,
    database: String,
    schema: Schema,
    spec: PartitionSpec,
    properties: TableProperties,
    created_at_ms: u64,

    snapshots: Vec<Snapshot>,
    current: Option<SnapshotId>,
    next_snapshot: u64,
    next_manifest: u64,
    sequence: u64,

    live: BTreeMap<FileId, DataFile>,
    partition_index: BTreeMap<PartitionKey, BTreeSet<FileId>>,
    manifests: Vec<Manifest>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: TableId,
        name: impl Into<String>,
        database: impl Into<String>,
        schema: Schema,
        spec: PartitionSpec,
        properties: TableProperties,
        created_at_ms: u64,
    ) -> Self {
        Table {
            id,
            name: name.into(),
            database: database.into(),
            schema,
            spec,
            properties,
            created_at_ms,
            snapshots: Vec::new(),
            current: None,
            next_snapshot: 1,
            next_manifest: 1,
            sequence: 0,
            live: BTreeMap::new(),
            partition_index: BTreeMap::new(),
            manifests: Vec::new(),
        }
    }

    /// Table id.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Owning database (namespace).
    pub fn database(&self) -> &str {
        &self.database
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Partition spec.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// Table properties.
    pub fn properties(&self) -> &TableProperties {
        &self.properties
    }

    /// Mutable properties (policy changes at runtime).
    pub fn properties_mut(&mut self) -> &mut TableProperties {
        &mut self.properties
    }

    /// Creation timestamp.
    pub fn created_at_ms(&self) -> u64 {
        self.created_at_ms
    }

    /// Current snapshot id, if any commit has landed.
    pub fn current_snapshot_id(&self) -> Option<SnapshotId> {
        self.current
    }

    /// The snapshot log, oldest first.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Looks up a snapshot by id.
    pub fn snapshot(&self, id: SnapshotId) -> Option<&Snapshot> {
        self.snapshots.iter().find(|s| s.id == id)
    }

    /// Live manifests (summaries).
    pub fn manifests(&self) -> &[Manifest] {
        &self.manifests
    }

    /// Live files, in `FileId` order.
    pub fn live_files(&self) -> impl Iterator<Item = &DataFile> {
        self.live.values()
    }

    /// Number of live files (data + delete).
    pub fn file_count(&self) -> u64 {
        self.live.len() as u64
    }

    /// Number of live delete files (MoR debt).
    pub fn delete_file_count(&self) -> u64 {
        self.live
            .values()
            .filter(|f| f.content.is_deletes())
            .count() as u64
    }

    /// Total live bytes.
    pub fn total_bytes(&self) -> u64 {
        self.live.values().map(|f| f.file_size_bytes).sum()
    }

    /// Live partition keys, sorted.
    pub fn partition_keys(&self) -> Vec<PartitionKey> {
        self.partition_index.keys().cloned().collect()
    }

    /// File ids in one partition, if the partition exists.
    pub fn files_in_partition(&self, key: &PartitionKey) -> Option<&BTreeSet<FileId>> {
        self.partition_index.get(key)
    }

    /// Looks up one live file.
    pub fn file(&self, id: FileId) -> Option<&DataFile> {
        self.live.get(&id)
    }

    /// Begins a transaction of the given kind at the current snapshot.
    pub fn begin(&self, kind: OpKind) -> Transaction {
        Transaction::new(self.current, kind)
    }

    /// Commits a transaction at simulation time `now_ms`.
    ///
    /// Performs optimistic conflict validation against every snapshot that
    /// landed after the transaction's base (see [`ConflictMode`] and §4.4
    /// of the paper), then applies the change set atomically.
    pub fn commit(&mut self, txn: Transaction, now_ms: u64) -> Result<CommitOutcome, CommitError> {
        if txn.is_empty() {
            return Err(CommitError::EmptyTransaction);
        }
        let intermediates = self.snapshots_after(txn.base_snapshot())?;
        self.validate_conflicts(&txn, &intermediates)?;

        // Structural validation after conflict checks so that concurrent
        // removals surface as conflicts, not as unknown files.
        for id in txn.removed() {
            if !self.live.contains_key(id) {
                return Err(CommitError::UnknownFile(*id));
            }
        }
        for f in txn.added() {
            if self.live.contains_key(&f.file_id) {
                return Err(CommitError::DuplicateFile(f.file_id));
            }
        }

        // Apply: removals first (a rewrite may re-add to the same partition).
        let mut touched = txn.staged_partitions();
        let mut removed_bytes = 0;
        for id in txn.removed().clone() {
            let file = self.live.remove(&id).expect("validated above");
            removed_bytes += file.file_size_bytes;
            touched.insert(file.partition.clone());
            if let Some(set) = self.partition_index.get_mut(&file.partition) {
                set.remove(&id);
                if set.is_empty() {
                    self.partition_index.remove(&file.partition);
                }
            }
        }
        let added_bytes = txn.added_bytes();
        let added_ids: Vec<FileId> = txn.added().iter().map(|f| f.file_id).collect();
        let mut manifest_partitions = BTreeSet::new();
        for f in txn.added() {
            manifest_partitions.insert(f.partition.clone());
            self.partition_index
                .entry(f.partition.clone())
                .or_default()
                .insert(f.file_id);
            self.live.insert(f.file_id, f.clone());
        }

        let snapshot_id = SnapshotId(self.next_snapshot);
        self.next_snapshot += 1;
        self.sequence += 1;
        let manifest_id = ManifestId(self.next_manifest);
        self.next_manifest += 1;

        let summary = SnapshotSummary {
            added_files: added_ids.len() as u64,
            removed_files: txn.removed().len() as u64,
            added_bytes,
            removed_bytes,
        };
        self.snapshots.push(Snapshot {
            id: snapshot_id,
            parent: self.current,
            sequence_number: self.sequence,
            timestamp_ms: now_ms,
            operation: txn.kind(),
            added: added_ids,
            removed: txn.removed().iter().copied().collect(),
            touched_partitions: touched,
            manifest: manifest_id,
            summary,
        });
        self.current = Some(snapshot_id);

        if txn.kind() == OpKind::RewriteFiles {
            // Rewrites also rewrite the manifest layer (Iceberg's
            // rewrite_manifests happens as part of maintenance); model this
            // as consolidation down to `entries_per_manifest`-sized chunks.
            self.rebuild_manifests(snapshot_id);
        } else {
            self.manifests.push(Manifest {
                id: manifest_id,
                added_snapshot: snapshot_id,
                entry_count: summary.added_files,
                partitions: manifest_partitions,
            });
        }

        Ok(CommitOutcome {
            snapshot_id,
            new_metadata_objects: METADATA_OBJECTS_PER_COMMIT,
            files_added: summary.added_files,
            files_removed: summary.removed_files,
        })
    }

    /// Expires snapshots with `timestamp_ms < older_than_ms`, always
    /// retaining the current snapshot. Returns how many metadata objects
    /// the engine should reclaim from storage.
    pub fn expire_snapshots(&mut self, older_than_ms: u64) -> ExpireResult {
        let current = self.current;
        let before = self.snapshots.len();
        self.snapshots
            .retain(|s| Some(s.id) == current || s.timestamp_ms >= older_than_ms);
        let removed = (before - self.snapshots.len()) as u64;
        ExpireResult {
            snapshots_removed: removed,
            metadata_objects_freed: removed * u64::from(METADATA_OBJECTS_PER_COMMIT),
        }
    }

    /// Snapshots that landed strictly after `base`. `None` base means the
    /// table was empty at begin time, so every snapshot is intermediate.
    fn snapshots_after(&self, base: Option<SnapshotId>) -> Result<Vec<&Snapshot>, CommitError> {
        match base {
            None => Ok(self.snapshots.iter().collect()),
            Some(id) => {
                let base_seq = self
                    .snapshot(id)
                    .map(|s| s.sequence_number)
                    .ok_or(CommitError::UnknownBaseSnapshot(id))?;
                Ok(self
                    .snapshots
                    .iter()
                    .filter(|s| s.sequence_number > base_seq)
                    .collect())
            }
        }
    }

    fn validate_conflicts(
        &self,
        txn: &Transaction,
        intermediates: &[&Snapshot],
    ) -> Result<(), CommitError> {
        if intermediates.is_empty() {
            return Ok(());
        }
        match txn.kind() {
            OpKind::Append => Ok(()),
            OpKind::OverwritePartitions => {
                let mine = self.partitions_of(txn);
                for s in intermediates {
                    if s.touches_any(&mine) {
                        let partition = s
                            .touched_partitions
                            .iter()
                            .find(|p| mine.contains(*p))
                            .cloned()
                            .unwrap_or_default();
                        return Err(CommitError::Conflict(ConflictKind::PartitionOverlap {
                            partition,
                            intervening: s.id,
                        }));
                    }
                }
                Ok(())
            }
            OpKind::RowDelta => {
                let mine = self.partitions_of(txn);
                for s in intermediates {
                    for id in txn.removed() {
                        if s.removed_file(*id) {
                            return Err(CommitError::Conflict(ConflictKind::RemovedFilesMissing {
                                file: *id,
                            }));
                        }
                    }
                    let rewriting = matches!(
                        s.operation,
                        OpKind::RewriteFiles | OpKind::OverwritePartitions
                    );
                    if rewriting && s.touches_any(&mine) {
                        let partition = s
                            .touched_partitions
                            .iter()
                            .find(|p| mine.contains(*p))
                            .cloned()
                            .unwrap_or_default();
                        return Err(CommitError::Conflict(ConflictKind::PartitionOverlap {
                            partition,
                            intervening: s.id,
                        }));
                    }
                }
                Ok(())
            }
            OpKind::RewriteFiles => match self.properties.conflict_mode {
                ConflictMode::Strict => {
                    Err(CommitError::Conflict(ConflictKind::StaleTableForRewrite {
                        intervening: intermediates[0].id,
                    }))
                }
                ConflictMode::PartitionAware => {
                    let mine = self.partitions_of(txn);
                    for s in intermediates {
                        for id in txn.removed() {
                            if s.removed_file(*id) {
                                return Err(CommitError::Conflict(
                                    ConflictKind::RemovedFilesMissing { file: *id },
                                ));
                            }
                        }
                        // Row-level deltas against partitions being
                        // rewritten reference positions in the replaced
                        // files, so they invalidate the rewrite.
                        if s.operation == OpKind::RowDelta && s.touches_any(&mine) {
                            let partition = s
                                .touched_partitions
                                .iter()
                                .find(|p| mine.contains(*p))
                                .cloned()
                                .unwrap_or_default();
                            return Err(CommitError::Conflict(ConflictKind::PartitionOverlap {
                                partition,
                                intervening: s.id,
                            }));
                        }
                    }
                    Ok(())
                }
            },
        }
    }

    /// Partitions a transaction touches, resolving removed files against
    /// the live set (files already removed by others are skipped here —
    /// the conflict checks handle them).
    fn partitions_of(&self, txn: &Transaction) -> BTreeSet<PartitionKey> {
        let mut set = txn.staged_partitions();
        for id in txn.removed() {
            if let Some(f) = self.live.get(id) {
                set.insert(f.partition.clone());
            }
        }
        set
    }

    fn rebuild_manifests(&mut self, snapshot: SnapshotId) {
        let chunk = self.properties.entries_per_manifest.max(1) as usize;
        self.manifests.clear();
        // Chunk live files in partition order so manifest partition
        // summaries stay tight (good pruning).
        let mut files: Vec<&DataFile> = self.live.values().collect();
        files.sort_by(|a, b| (&a.partition, a.file_id).cmp(&(&b.partition, b.file_id)));
        for group in files.chunks(chunk) {
            let id = ManifestId(self.next_manifest);
            self.next_manifest += 1;
            self.manifests.push(Manifest {
                id,
                added_snapshot: snapshot,
                entry_count: group.len() as u64,
                partitions: group.iter().map(|f| f.partition.clone()).collect(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Field};
    use crate::types::{PartitionValue, Transform};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new(1, "k", ColumnType::Int64, true),
            Field::new(2, "ds", ColumnType::Date, true),
        ])
        .unwrap()
    }

    fn partitioned_table(mode: ConflictMode) -> Table {
        let props = TableProperties {
            conflict_mode: mode,
            ..TableProperties::default()
        };
        Table::new(
            TableId(1),
            "t",
            "db",
            schema(),
            PartitionSpec::single(2, Transform::Month, "month"),
            props,
            0,
        )
    }

    fn pkey(i: i32) -> PartitionKey {
        PartitionKey::single(PartitionValue::Date(i))
    }

    fn add(table: &mut Table, id: u64, part: i32, size_mb: u64) -> SnapshotId {
        let mut txn = table.begin(OpKind::Append);
        txn.add_file(DataFile::data(FileId(id), pkey(part), 100, size_mb * MB));
        table.commit(txn, 0).unwrap().snapshot_id
    }

    #[test]
    fn append_builds_live_state() {
        let mut t = partitioned_table(ConflictMode::Strict);
        add(&mut t, 1, 1, 64);
        add(&mut t, 2, 1, 64);
        add(&mut t, 3, 2, 64);
        assert_eq!(t.file_count(), 3);
        assert_eq!(t.partition_keys().len(), 2);
        assert_eq!(t.files_in_partition(&pkey(1)).unwrap().len(), 2);
        assert_eq!(t.total_bytes(), 192 * MB);
        assert_eq!(t.snapshots().len(), 3);
        assert_eq!(t.manifests().len(), 3);
    }

    #[test]
    fn concurrent_appends_never_conflict() {
        let mut t = partitioned_table(ConflictMode::Strict);
        let base = t.current_snapshot_id();
        let mut a = Transaction::new(base, OpKind::Append);
        a.add_file(DataFile::data(FileId(1), pkey(1), 1, MB));
        let mut b = Transaction::new(base, OpKind::Append);
        b.add_file(DataFile::data(FileId(2), pkey(1), 1, MB));
        t.commit(a, 1).unwrap();
        t.commit(b, 2).unwrap(); // same base, same partition: still fine
        assert_eq!(t.file_count(), 2);
    }

    #[test]
    fn strict_rewrite_conflicts_with_any_concurrent_commit() {
        let mut t = partitioned_table(ConflictMode::Strict);
        add(&mut t, 1, 1, 10);
        add(&mut t, 2, 2, 10);
        // Rewrite partition 1 begun at current base…
        let mut rw = t.begin(OpKind::RewriteFiles);
        rw.remove_file(FileId(1));
        rw.add_file(DataFile::data(FileId(10), pkey(1), 100, 20 * MB));
        // …but a user append to a *different* partition lands first.
        add(&mut t, 3, 2, 10);
        let err = t.commit(rw, 5).unwrap_err();
        assert!(matches!(
            err,
            CommitError::Conflict(ConflictKind::StaleTableForRewrite { .. })
        ));
    }

    #[test]
    fn partition_aware_rewrite_tolerates_disjoint_commits() {
        let mut t = partitioned_table(ConflictMode::PartitionAware);
        add(&mut t, 1, 1, 10);
        add(&mut t, 2, 2, 10);
        let mut rw = t.begin(OpKind::RewriteFiles);
        rw.remove_file(FileId(1));
        rw.add_file(DataFile::data(FileId(10), pkey(1), 100, 20 * MB));
        add(&mut t, 3, 2, 10); // disjoint partition — no conflict
        let out = t.commit(rw, 5).unwrap();
        assert_eq!(out.files_removed, 1);
        assert!(t.file(FileId(10)).is_some());
        assert!(t.file(FileId(1)).is_none());
    }

    #[test]
    fn partition_aware_rewrite_conflicts_when_inputs_vanish() {
        let mut t = partitioned_table(ConflictMode::PartitionAware);
        add(&mut t, 1, 1, 10);
        let mut rw = t.begin(OpKind::RewriteFiles);
        rw.remove_file(FileId(1));
        rw.add_file(DataFile::data(FileId(10), pkey(1), 100, 20 * MB));
        // A concurrent CoW overwrite replaces the input file.
        let mut ow = t.begin(OpKind::OverwritePartitions);
        ow.remove_file(FileId(1));
        ow.add_file(DataFile::data(FileId(5), pkey(1), 100, 10 * MB));
        t.commit(ow, 3).unwrap();
        let err = t.commit(rw, 5).unwrap_err();
        assert!(matches!(
            err,
            CommitError::Conflict(ConflictKind::RemovedFilesMissing { .. })
        ));
    }

    #[test]
    fn row_delta_conflicts_with_rewrite_on_same_partition() {
        let mut t = partitioned_table(ConflictMode::PartitionAware);
        add(&mut t, 1, 1, 10);
        // User starts a MoR delete against partition 1.
        let mut delta = t.begin(OpKind::RowDelta);
        delta.add_file(DataFile::position_deletes(FileId(20), pkey(1), 5, MB));
        // Compaction rewrites partition 1 first.
        let mut rw = t.begin(OpKind::RewriteFiles);
        rw.remove_file(FileId(1));
        rw.add_file(DataFile::data(FileId(10), pkey(1), 100, 10 * MB));
        t.commit(rw, 2).unwrap();
        let err = t.commit(delta, 3).unwrap_err();
        assert!(err.is_retryable());
    }

    #[test]
    fn overwrite_conflicts_with_concurrent_append_same_partition() {
        let mut t = partitioned_table(ConflictMode::Strict);
        add(&mut t, 1, 1, 10);
        let mut ow = t.begin(OpKind::OverwritePartitions);
        ow.remove_file(FileId(1));
        ow.add_file(DataFile::data(FileId(5), pkey(1), 10, MB));
        add(&mut t, 2, 1, 10); // concurrent append, same partition
        let err = t.commit(ow, 4).unwrap_err();
        assert!(matches!(
            err,
            CommitError::Conflict(ConflictKind::PartitionOverlap { .. })
        ));
    }

    #[test]
    fn rewrite_consolidates_manifests() {
        let mut t = partitioned_table(ConflictMode::PartitionAware);
        for i in 0..20 {
            add(&mut t, i + 1, (i % 3) as i32, 8);
        }
        assert_eq!(t.manifests().len(), 20);
        let mut rw = t.begin(OpKind::RewriteFiles);
        for i in 0..20 {
            rw.remove_file(FileId(i + 1));
        }
        rw.add_file(DataFile::data(FileId(100), pkey(0), 100, 160 * MB));
        t.commit(rw, 10).unwrap();
        assert_eq!(t.manifests().len(), 1);
        assert_eq!(t.manifests()[0].entry_count, 1);
    }

    #[test]
    fn structural_errors() {
        let mut t = partitioned_table(ConflictMode::Strict);
        add(&mut t, 1, 1, 10);
        // Empty transaction.
        let txn = t.begin(OpKind::Append);
        assert_eq!(t.commit(txn, 0).unwrap_err(), CommitError::EmptyTransaction);
        // Unknown file removal.
        let mut txn = t.begin(OpKind::RowDelta);
        txn.remove_file(FileId(99));
        assert_eq!(
            t.commit(txn, 0).unwrap_err(),
            CommitError::UnknownFile(FileId(99))
        );
        // Duplicate add.
        let mut txn = t.begin(OpKind::Append);
        txn.add_file(DataFile::data(FileId(1), pkey(1), 1, MB));
        assert_eq!(
            t.commit(txn, 0).unwrap_err(),
            CommitError::DuplicateFile(FileId(1))
        );
    }

    #[test]
    fn expiry_keeps_current_and_reports_freed_objects() {
        let mut t = partitioned_table(ConflictMode::Strict);
        for i in 0..5 {
            let mut txn = t.begin(OpKind::Append);
            txn.add_file(DataFile::data(FileId(i + 1), pkey(1), 1, MB));
            t.commit(txn, i * 100).unwrap();
        }
        let res = t.expire_snapshots(350);
        assert_eq!(res.snapshots_removed, 4);
        assert_eq!(res.metadata_objects_freed, 12);
        assert_eq!(t.snapshots().len(), 1);
        // Committing from an expired base is an explicit error → refresh.
        let stale = Transaction::new(Some(SnapshotId(1)), OpKind::Append);
        let mut stale = stale;
        stale.add_file(DataFile::data(FileId(50), pkey(1), 1, MB));
        assert!(matches!(
            t.commit(stale, 600),
            Err(CommitError::UnknownBaseSnapshot(_))
        ));
    }

    #[test]
    fn delete_file_count_tracks_mor_debt() {
        let mut t = partitioned_table(ConflictMode::Strict);
        add(&mut t, 1, 1, 10);
        let mut delta = t.begin(OpKind::RowDelta);
        delta.add_file(DataFile::position_deletes(FileId(2), pkey(1), 5, MB));
        t.commit(delta, 1).unwrap();
        assert_eq!(t.delete_file_count(), 1);
        assert_eq!(t.file_count(), 2);
    }
}
