//! Identifier and partition value types.

use std::fmt;

/// Stable identifier of a table within the lake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u64);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

/// Identifier of a table snapshot (version).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotId(pub u64);

impl fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snap#{}", self.0)
    }
}

/// A single partition value.
///
/// Only totally ordered values are representable so that
/// [`PartitionKey`] can key `BTreeMap`s — deterministic iteration order is
/// required by the paper's NFR2 (consistent decisions under identical
/// inputs).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PartitionValue {
    /// Null partition value.
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value (also used for bucket numbers).
    Int(i64),
    /// Date as days since epoch; month transforms store `year*12 + month`.
    Date(i32),
    /// String value.
    Str(String),
}

impl fmt::Display for PartitionValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionValue::Null => write!(f, "null"),
            PartitionValue::Bool(b) => write!(f, "{b}"),
            PartitionValue::Int(i) => write!(f, "{i}"),
            PartitionValue::Date(d) => write!(f, "d{d}"),
            PartitionValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A tuple of partition values identifying one partition of a table.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartitionKey(pub Vec<PartitionValue>);

impl PartitionKey {
    /// The key of the single implicit partition of an unpartitioned table.
    pub fn unpartitioned() -> Self {
        PartitionKey(Vec::new())
    }

    /// A single-value key, the common case.
    pub fn single(v: PartitionValue) -> Self {
        PartitionKey(vec![v])
    }

    /// True for the implicit partition of an unpartitioned table.
    pub fn is_unpartitioned(&self) -> bool {
        self.0.is_empty()
    }

    /// Deterministic 64-bit hash (FNV-1a over the display form), used for
    /// pseudo-random-but-stable partition sampling in scans.
    pub fn stable_hash(&self, salt: u64) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325 ^ salt;
        let s = self.to_string();
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

impl fmt::Display for PartitionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "()");
        }
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Transformation applied to a source column to derive a partition value,
/// mirroring Iceberg's partition transforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transform {
    /// Use the value unchanged.
    Identity,
    /// Months since epoch from a `Date` value (`days / 30` approximation
    /// documented for the simulator — real Iceberg uses calendar months).
    Month,
    /// Days (identity on `Date`).
    Day,
    /// Hash-bucket into `n` buckets.
    Bucket(u32),
}

impl Transform {
    /// Applies the transform to a source value.
    pub fn apply(&self, value: &PartitionValue) -> PartitionValue {
        match (self, value) {
            (Transform::Identity, v) => v.clone(),
            (Transform::Month, PartitionValue::Date(d)) => PartitionValue::Date(d / 30),
            (Transform::Day, PartitionValue::Date(d)) => PartitionValue::Date(*d),
            (Transform::Bucket(n), v) => {
                let h = PartitionKey::single(v.clone()).stable_hash(0);
                PartitionValue::Int((h % u64::from((*n).max(1))) as i64)
            }
            // Month/Day on non-dates degrade to identity; the schema layer
            // validates specs so this is unreachable in checked use.
            (_, v) => v.clone(),
        }
    }

    /// Short name used in spec descriptions.
    pub fn name(&self) -> String {
        match self {
            Transform::Identity => "identity".to_string(),
            Transform::Month => "month".to_string(),
            Transform::Day => "day".to_string(),
            Transform::Bucket(n) => format!("bucket[{n}]"),
        }
    }
}

/// One field of a partition spec: a source column and a transform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionField {
    /// Id of the source column in the table schema.
    pub source_column: u32,
    /// Transform applied to the source value.
    pub transform: Transform,
    /// Name of the derived partition field.
    pub name: String,
}

/// Partition spec: how rows map to partitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionSpec {
    /// Ordered partition fields; empty = unpartitioned.
    pub fields: Vec<PartitionField>,
}

impl PartitionSpec {
    /// Spec of an unpartitioned table.
    pub fn unpartitioned() -> Self {
        PartitionSpec { fields: Vec::new() }
    }

    /// Single-field spec, the common case (e.g. `lineitem` partitioned
    /// monthly by `shipdate` in the paper's CAB setup).
    pub fn single(source_column: u32, transform: Transform, name: impl Into<String>) -> Self {
        PartitionSpec {
            fields: vec![PartitionField {
                source_column,
                transform,
                name: name.into(),
            }],
        }
    }

    /// Whether the spec partitions the table at all.
    pub fn is_partitioned(&self) -> bool {
        !self.fields.is_empty()
    }

    /// Derives the partition key for a row given source values aligned
    /// with `fields`.
    pub fn key_for(&self, source_values: &[PartitionValue]) -> PartitionKey {
        debug_assert_eq!(source_values.len(), self.fields.len());
        PartitionKey(
            self.fields
                .iter()
                .zip(source_values)
                .map(|(f, v)| f.transform.apply(v))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_values_order_totally() {
        let mut vals = [
            PartitionValue::Str("b".into()),
            PartitionValue::Int(3),
            PartitionValue::Null,
            PartitionValue::Int(1),
        ];

        vals.sort();
        assert_eq!(vals[0], PartitionValue::Null);
        assert_eq!(vals[1], PartitionValue::Int(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PartitionKey::unpartitioned().to_string(), "()");
        let k = PartitionKey(vec![
            PartitionValue::Date(400),
            PartitionValue::Str("us".into()),
        ]);
        assert_eq!(k.to_string(), "(d400,us)");
    }

    #[test]
    fn stable_hash_is_stable_and_salted() {
        let k = PartitionKey::single(PartitionValue::Int(42));
        assert_eq!(k.stable_hash(1), k.stable_hash(1));
        assert_ne!(k.stable_hash(1), k.stable_hash(2));
    }

    #[test]
    fn month_transform_buckets_days() {
        let t = Transform::Month;
        assert_eq!(t.apply(&PartitionValue::Date(59)), PartitionValue::Date(1));
        assert_eq!(t.apply(&PartitionValue::Date(60)), PartitionValue::Date(2));
    }

    #[test]
    fn bucket_transform_is_bounded() {
        let t = Transform::Bucket(8);
        for i in 0..100 {
            match t.apply(&PartitionValue::Int(i)) {
                PartitionValue::Int(b) => assert!((0..8).contains(&b)),
                other => panic!("unexpected value {other:?}"),
            }
        }
    }

    #[test]
    fn spec_derives_keys() {
        let spec = PartitionSpec::single(2, Transform::Month, "ship_month");
        let key = spec.key_for(&[PartitionValue::Date(90)]);
        assert_eq!(key, PartitionKey::single(PartitionValue::Date(3)));
        assert!(spec.is_partitioned());
        assert!(!PartitionSpec::unpartitioned().is_partitioned());
    }

    #[test]
    fn transform_names() {
        assert_eq!(Transform::Bucket(4).name(), "bucket[4]");
        assert_eq!(Transform::Identity.name(), "identity");
    }
}
