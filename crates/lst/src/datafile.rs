//! Data and delete files tracked by the table format.

use crate::types::PartitionKey;
use lakesim_storage::FileId;

/// What a tracked file contains, mirroring Iceberg's content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FileContent {
    /// Row data.
    Data,
    /// Merge-on-Read positional delete file (§2, cause *ii*: "MoR
    /// configurations generate delta files that accumulate over time").
    PositionDeletes,
    /// Merge-on-Read equality delete file.
    EqualityDeletes,
}

impl FileContent {
    /// True for either delete-file variant.
    pub fn is_deletes(self) -> bool {
        !matches!(self, FileContent::Data)
    }
}

/// An immutable file registered in a table snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFile {
    /// Storage-layer id of the physical file.
    pub file_id: FileId,
    /// Content type.
    pub content: FileContent,
    /// Partition the file belongs to.
    pub partition: PartitionKey,
    /// Estimated record count.
    pub record_count: u64,
    /// Physical size in bytes.
    pub file_size_bytes: u64,
    /// Whether the rows are sorted by the table's sort column. Only a
    /// sort-embedding rewrite produces sorted files; ordinary ingest
    /// writes land unsorted.
    pub sorted: bool,
}

impl DataFile {
    /// Convenience constructor for a row-data file.
    pub fn data(
        file_id: FileId,
        partition: PartitionKey,
        record_count: u64,
        file_size_bytes: u64,
    ) -> Self {
        DataFile {
            file_id,
            content: FileContent::Data,
            partition,
            record_count,
            file_size_bytes,
            sorted: false,
        }
    }

    /// Convenience constructor for a row-data file whose rows are sorted
    /// by the table's sort column (the product of a sort-embedding
    /// rewrite).
    pub fn data_sorted(
        file_id: FileId,
        partition: PartitionKey,
        record_count: u64,
        file_size_bytes: u64,
    ) -> Self {
        DataFile {
            sorted: true,
            ..DataFile::data(file_id, partition, record_count, file_size_bytes)
        }
    }

    /// Convenience constructor for a positional-delete file.
    pub fn position_deletes(
        file_id: FileId,
        partition: PartitionKey,
        record_count: u64,
        file_size_bytes: u64,
    ) -> Self {
        DataFile {
            file_id,
            content: FileContent::PositionDeletes,
            partition,
            record_count,
            file_size_bytes,
            sorted: false,
        }
    }

    /// Whether the file is smaller than the given target size — the
    /// indicator inside the paper's ΔF estimator (§4.2).
    pub fn is_small(&self, target_file_size: u64) -> bool {
        self.file_size_bytes < target_file_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakesim_storage::MB;

    #[test]
    fn small_file_indicator_matches_paper_definition() {
        let f = DataFile::data(FileId(1), PartitionKey::unpartitioned(), 10, 100 * MB);
        assert!(f.is_small(512 * MB));
        assert!(!f.is_small(100 * MB)); // strict inequality
        assert!(!f.is_small(64 * MB));
    }

    #[test]
    fn delete_files_flagged() {
        let d = DataFile::position_deletes(FileId(2), PartitionKey::unpartitioned(), 5, MB);
        assert!(d.content.is_deletes());
        assert!(!FileContent::Data.is_deletes());
        assert!(FileContent::EqualityDeletes.is_deletes());
    }
}
