//! The simulated distributed file system.

use std::collections::BTreeMap;

use crate::error::StorageError;
use crate::file::{FileId, FileKind, FileMeta};
use crate::histogram::SizeHistogram;
use crate::metrics::StorageMetrics;
use crate::namenode::{NameNode, NameNodeConfig, RpcKind, RpcTicket};
use crate::namespace::{Namespace, QuotaUsage};
use crate::units::MB;
use crate::Result;

/// File-system configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsConfig {
    /// HDFS block size; files occupy `ceil(size / block_size)` block objects.
    /// LinkedIn's deployment uses 128MB blocks with a 512MB target file size.
    pub block_size: u64,
    /// NameNode model parameters.
    pub namenode: NameNodeConfig,
}

impl Default for FsConfig {
    fn default() -> Self {
        Self {
            block_size: 128 * MB,
            namenode: NameNodeConfig::default(),
        }
    }
}

/// In-memory simulation of an HDFS-like file system.
///
/// Tracks file metadata, per-namespace quotas, and NameNode RPC load.
/// All operations are deterministic; see the crate docs for the modelled
/// failure modes.
#[derive(Debug, Clone)]
pub struct SimFileSystem {
    config: FsConfig,
    next_file_id: u64,
    files: BTreeMap<FileId, FileMeta>,
    namespaces: BTreeMap<String, Namespace>,
    namenode: NameNode,
    /// Cumulative count of deleted files (objects reclaimed).
    deleted_files: u64,
    /// Bumped on namespace-configuration changes (create/set_quota) so
    /// quota-signal caches can fold config edits into their epoch.
    config_epoch: u64,
}

impl SimFileSystem {
    /// Creates an empty file system.
    pub fn new(config: FsConfig) -> Self {
        let namenode = NameNode::new(config.namenode);
        Self {
            config,
            next_file_id: 1,
            files: BTreeMap::new(),
            namespaces: BTreeMap::new(),
            namenode,
            deleted_files: 0,
            config_epoch: 0,
        }
    }

    /// The configured block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.config.block_size
    }

    /// Registers a namespace (database). `quota = None` means unlimited.
    pub fn create_namespace(&mut self, name: &str, quota: Option<u64>) -> Result<()> {
        if self.namespaces.contains_key(name) {
            return Err(StorageError::NamespaceExists(name.to_string()));
        }
        self.namespaces
            .insert(name.to_string(), Namespace::new(name, quota));
        self.config_epoch += 1;
        Ok(())
    }

    /// Updates the object quota of an existing namespace.
    pub fn set_quota(&mut self, name: &str, quota: Option<u64>) -> Result<()> {
        let ns = self
            .namespaces
            .get_mut(name)
            .ok_or_else(|| StorageError::NamespaceNotFound(name.to_string()))?;
        ns.object_quota = quota.unwrap_or(u64::MAX);
        self.config_epoch += 1;
        Ok(())
    }

    /// Monotone counter of namespace-configuration changes (namespace
    /// creation, quota edits). Fold into cache epochs alongside the RPC
    /// create/delete counters to invalidate on any quota-relevant event.
    pub fn config_epoch(&self) -> u64 {
        self.config_epoch
    }

    /// Creates a file of `size_bytes` in `namespace` at time `now_ms`.
    ///
    /// Fails with [`StorageError::QuotaExceeded`] when the namespace cannot
    /// absorb the new objects — the quota-breach failure users hit before
    /// compaction was deployed (§7).
    pub fn create_file(
        &mut self,
        namespace: &str,
        kind: FileKind,
        size_bytes: u64,
        now_ms: u64,
    ) -> Result<FileId> {
        if size_bytes == 0 {
            return Err(StorageError::EmptyFile);
        }
        let block_size = self.config.block_size;
        let blocks = size_bytes.div_ceil(block_size);
        let ns = self
            .namespaces
            .get_mut(namespace)
            .ok_or_else(|| StorageError::NamespaceNotFound(namespace.to_string()))?;
        ns.check_quota(1 + blocks)?;
        ns.add_file(blocks, size_bytes);

        let id = FileId(self.next_file_id);
        self.next_file_id += 1;
        let meta = FileMeta {
            id,
            namespace: namespace.to_string(),
            kind,
            size_bytes,
            block_count: blocks,
            created_at_ms: now_ms,
        };
        self.files.insert(id, meta);
        let objects = self.total_objects();
        self.namenode.record(RpcKind::Create, now_ms, objects);
        Ok(id)
    }

    /// Opens a file for reading, recording `open` + block-location RPCs.
    ///
    /// Returns the RPC ticket (latency factor, timeout flag) along with the
    /// metadata; callers that model retries re-issue the open, which lands
    /// in a later RPC window.
    pub fn open_file(&mut self, id: FileId, now_ms: u64) -> Result<(FileMeta, RpcTicket)> {
        let meta = self
            .files
            .get(&id)
            .cloned()
            .ok_or(StorageError::FileNotFound(id))?;
        let objects = self.total_objects();
        let ticket = self.namenode.record(RpcKind::Open, now_ms, objects);
        self.namenode
            .record(RpcKind::GetBlockLocations, now_ms, objects);
        if ticket.timed_out {
            return Err(StorageError::ReadTimeout {
                file: id,
                window_ops: ticket.window_ops,
                capacity: self.namenode.config().ops_capacity_per_window,
            });
        }
        Ok((meta, ticket))
    }

    /// Convenience wrapper over [`Self::open_file`] that ignores RPC effects.
    /// Useful for metadata inspection in tests and reports.
    pub fn file(&self, id: FileId) -> Option<&FileMeta> {
        self.files.get(&id)
    }

    /// Batch-records the RPC load of opening `count` files at `now_ms`
    /// (one `open` + one `getBlockLocations` each) without touching file
    /// metadata — the fast path used by the query engine for large scans.
    ///
    /// Returns `(latency_factor, timeouts)`: the congestion-derived latency
    /// multiplier and how many opens timed out in the current window.
    pub fn open_files_batch(&mut self, count: u64, now_ms: u64) -> (f64, u64) {
        let objects = self.total_objects();
        let (factor, timeouts) = self
            .namenode
            .record_batch(RpcKind::Open, count, now_ms, objects);
        self.namenode
            .record_batch(RpcKind::GetBlockLocations, count, now_ms, objects);
        (factor, timeouts)
    }

    /// Deletes a file, releasing its quota objects.
    pub fn delete_file(&mut self, id: FileId, now_ms: u64) -> Result<FileMeta> {
        let meta = self
            .files
            .remove(&id)
            .ok_or(StorageError::FileNotFound(id))?;
        if let Some(ns) = self.namespaces.get_mut(&meta.namespace) {
            ns.remove_file(meta.block_count, meta.size_bytes);
        }
        self.deleted_files += 1;
        let objects = self.total_objects();
        self.namenode.record(RpcKind::Delete, now_ms, objects);
        Ok(meta)
    }

    /// Lists live file ids in a namespace (creation order), recording a
    /// `List` RPC.
    pub fn list_namespace(&mut self, namespace: &str, now_ms: u64) -> Result<Vec<FileId>> {
        if !self.namespaces.contains_key(namespace) {
            return Err(StorageError::NamespaceNotFound(namespace.to_string()));
        }
        let objects = self.total_objects();
        self.namenode.record(RpcKind::List, now_ms, objects);
        Ok(self
            .files
            .values()
            .filter(|m| m.namespace == namespace)
            .map(|m| m.id)
            .collect())
    }

    /// Quota usage for a namespace.
    pub fn quota_usage(&self, namespace: &str) -> Result<QuotaUsage> {
        self.namespaces
            .get(namespace)
            .map(|ns| ns.quota_usage())
            .ok_or_else(|| StorageError::NamespaceNotFound(namespace.to_string()))
    }

    /// Registered namespace names, sorted.
    pub fn namespaces(&self) -> Vec<&str> {
        self.namespaces.keys().map(String::as_str).collect()
    }

    /// Total live files.
    pub fn total_files(&self) -> u64 {
        self.files.len() as u64
    }

    /// Total live files of a given kind.
    pub fn total_files_of_kind(&self, kind: FileKind) -> u64 {
        self.files.values().filter(|m| m.kind == kind).count() as u64
    }

    /// Total live namespace objects (files + blocks) across all namespaces.
    pub fn total_objects(&self) -> u64 {
        self.namespaces.values().map(|ns| ns.used_objects()).sum()
    }

    /// Total live bytes.
    pub fn total_bytes(&self) -> u64 {
        self.namespaces.values().map(|ns| ns.bytes).sum()
    }

    /// Size histogram over live files, optionally filtered to one kind.
    pub fn size_histogram(&self, kind: Option<FileKind>) -> SizeHistogram {
        let mut h = SizeHistogram::new();
        for meta in self.files.values() {
            if kind.is_none_or(|k| meta.kind == k) {
                h.record(meta.size_bytes);
            }
        }
        h
    }

    /// Number of live data files strictly smaller than `threshold` bytes.
    /// This is the §7 "files smaller than 128MB" metric.
    pub fn small_file_count(&self, threshold: u64) -> u64 {
        self.files
            .values()
            .filter(|m| m.kind == FileKind::Data && m.size_bytes < threshold)
            .count() as u64
    }

    /// Current congestion factor (see [`NameNode::congestion_factor`]).
    pub fn congestion_factor(&self) -> f64 {
        self.namenode.congestion_factor(self.total_objects())
    }

    /// Mutable access to the NameNode (window queries in experiments).
    pub fn namenode_mut(&mut self) -> &mut NameNode {
        &mut self.namenode
    }

    /// Cumulative RPC counters alone — an O(1) accessor for callers that
    /// need a cheap change epoch (e.g. quota-signal caches keyed on
    /// `creates + deletes`) without paying for a full metrics snapshot.
    pub fn rpc_counters(&self) -> crate::namenode::RpcCounters {
        self.namenode.counters()
    }

    /// Snapshot of storage metrics.
    pub fn metrics(&self) -> StorageMetrics {
        StorageMetrics {
            total_files: self.total_files(),
            total_objects: self.total_objects(),
            total_bytes: self.total_bytes(),
            deleted_files: self.deleted_files,
            rpc: self.namenode.counters(),
            congestion_factor: self.congestion_factor(),
        }
    }
}

impl Default for SimFileSystem {
    fn default() -> Self {
        Self::new(FsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fs() -> SimFileSystem {
        let mut fs = SimFileSystem::new(FsConfig::default());
        fs.create_namespace("db", None).unwrap();
        fs
    }

    #[test]
    fn create_open_delete_lifecycle() {
        let mut fs = fs();
        let id = fs.create_file("db", FileKind::Data, 300 * MB, 5).unwrap();
        let (meta, ticket) = fs.open_file(id, 10).unwrap();
        assert_eq!(meta.size_bytes, 300 * MB);
        assert_eq!(meta.block_count, 3); // ceil(300/128)
        assert!(ticket.latency_factor >= 1.0);
        let removed = fs.delete_file(id, 20).unwrap();
        assert_eq!(removed.id, id);
        assert_eq!(fs.total_files(), 0);
        assert_eq!(fs.total_objects(), 0);
        assert!(matches!(
            fs.open_file(id, 30),
            Err(StorageError::FileNotFound(_))
        ));
    }

    #[test]
    fn quota_blocks_small_file_floods() {
        let mut fs = SimFileSystem::new(FsConfig::default());
        // Room for exactly 5 small files (1 file + 1 block object each).
        fs.create_namespace("tenant", Some(10)).unwrap();
        for _ in 0..5 {
            fs.create_file("tenant", FileKind::Data, MB, 0).unwrap();
        }
        let err = fs.create_file("tenant", FileKind::Data, MB, 0).unwrap_err();
        assert!(matches!(err, StorageError::QuotaExceeded { .. }));
        // Deleting one frees room again.
        let ids = fs.list_namespace("tenant", 0).unwrap();
        fs.delete_file(ids[0], 0).unwrap();
        assert!(fs.create_file("tenant", FileKind::Data, MB, 0).is_ok());
    }

    #[test]
    fn large_files_use_fewer_objects_per_byte() {
        let mut fs = fs();
        // 4 × 128MB small files: 4 files + 4 blocks = 8 objects.
        for _ in 0..4 {
            fs.create_file("db", FileKind::Data, 128 * MB, 0).unwrap();
        }
        let small_objects = fs.total_objects();
        let mut fs2 = SimFileSystem::new(FsConfig::default());
        fs2.create_namespace("db", None).unwrap();
        // Same bytes in one 512MB file: 1 file + 4 blocks = 5 objects.
        fs2.create_file("db", FileKind::Data, 512 * MB, 0).unwrap();
        assert!(fs2.total_objects() < small_objects);
    }

    #[test]
    fn duplicate_namespace_rejected() {
        let mut fs = fs();
        assert!(matches!(
            fs.create_namespace("db", None),
            Err(StorageError::NamespaceExists(_))
        ));
    }

    #[test]
    fn histogram_and_small_file_metrics() {
        let mut fs = fs();
        fs.create_file("db", FileKind::Data, 10 * MB, 0).unwrap();
        fs.create_file("db", FileKind::Data, 600 * MB, 0).unwrap();
        fs.create_file("db", FileKind::Metadata, 64 * 1024, 0)
            .unwrap();
        assert_eq!(fs.small_file_count(128 * MB), 1); // metadata excluded
        let all = fs.size_histogram(None);
        assert_eq!(all.total(), 3);
        let data = fs.size_histogram(Some(FileKind::Data));
        assert_eq!(data.total(), 2);
    }

    #[test]
    fn read_timeouts_under_rpc_pressure() {
        let mut fs = SimFileSystem::new(FsConfig {
            block_size: 128 * MB,
            namenode: NameNodeConfig {
                object_capacity: 1000,
                window_ms: 1000,
                ops_capacity_per_window: 3,
                congestion_alpha: 3.0,
            },
        });
        fs.create_namespace("db", None).unwrap();
        let id = fs.create_file("db", FileKind::Data, MB, 0).unwrap();
        // The create consumed one window op; each open consumes two
        // (open + block locations), so the second open is op 4 > capacity 3.
        assert!(fs.open_file(id, 100).is_ok());
        let err = fs.open_file(id, 150).unwrap_err();
        assert!(matches!(err, StorageError::ReadTimeout { .. }));
        // Retrying in the next window succeeds (herd drains).
        assert!(fs.open_file(id, 1200).is_ok());
    }

    #[test]
    fn batch_open_accounts_rpcs_and_timeouts() {
        let mut fs = SimFileSystem::new(FsConfig {
            block_size: 128 * MB,
            namenode: NameNodeConfig {
                object_capacity: 1000,
                window_ms: 1000,
                ops_capacity_per_window: 10,
                congestion_alpha: 3.0,
            },
        });
        fs.create_namespace("db", None).unwrap();
        let (factor, timeouts) = fs.open_files_batch(8, 100);
        assert!(factor >= 1.0);
        assert_eq!(timeouts, 0);
        // Window already has 16 ops (8 opens + 8 blocklocs); 6 more opens
        // overflow the 10-op capacity entirely.
        let (_, timeouts) = fs.open_files_batch(6, 200);
        assert_eq!(timeouts, 6);
        assert_eq!(fs.metrics().rpc.opens, 14);
        assert_eq!(fs.metrics().rpc.timeouts, 6);
        // Next window is clean.
        let (_, timeouts) = fs.open_files_batch(5, 1500);
        assert_eq!(timeouts, 0);
    }

    #[test]
    fn metrics_snapshot_consistent() {
        let mut fs = fs();
        fs.create_file("db", FileKind::Data, 100 * MB, 0).unwrap();
        let id = fs.create_file("db", FileKind::Data, 100 * MB, 0).unwrap();
        fs.delete_file(id, 1).unwrap();
        let m = fs.metrics();
        assert_eq!(m.total_files, 1);
        assert_eq!(m.deleted_files, 1);
        assert_eq!(m.rpc.creates, 2);
        assert_eq!(m.rpc.deletes, 1);
        assert!(m.congestion_factor >= 1.0);
    }

    proptest! {
        /// Object accounting is conserved across arbitrary create/delete
        /// interleavings: total_objects == Σ (1 + blocks) over live files.
        #[test]
        fn object_accounting_conserved(ops in proptest::collection::vec((1u64..2048, any::<bool>()), 1..100)) {
            let mut fs = fs();
            let mut live: Vec<FileId> = Vec::new();
            for (mb, delete) in ops {
                if delete && !live.is_empty() {
                    let id = live.remove(0);
                    fs.delete_file(id, 0).unwrap();
                } else {
                    let id = fs.create_file("db", FileKind::Data, mb * MB, 0).unwrap();
                    live.push(id);
                }
                let expected: u64 = live
                    .iter()
                    .map(|id| fs.file(*id).unwrap().object_count())
                    .sum();
                prop_assert_eq!(fs.total_objects(), expected);
                prop_assert_eq!(fs.total_files(), live.len() as u64);
            }
        }
    }
}
