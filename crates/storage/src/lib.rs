//! # lakesim-storage
//!
//! A deterministic, in-process simulation of an HDFS-like distributed file
//! system, built as the storage substrate for the AutoComp reproduction.
//!
//! The AutoComp paper (SIGMOD 2025) motivates automatic compaction with the
//! operational pressure that *small files* put on the storage layer:
//!
//! * the NameNode tracks every filesystem **object** (files, directories and
//!   blocks) and can only manage a bounded number of them (§2 of the paper),
//! * elevated **RPC traffic** (`open()`, `getBlockLocations()`) degrades read
//!   latency and eventually causes read timeouts and thundering-herd retries
//!   (§7, Fig. 11b),
//! * tenants are subject to **namespace quotas** counted in objects, which
//!   small files exhaust quickly (§7).
//!
//! This crate models exactly those mechanisms and nothing more: there is no
//! actual data, only metadata with byte sizes. All behaviour is a pure
//! function of the call sequence — no wall-clock time, no global RNG — which
//! is what the paper's NFR2 (explainability / determinism) demands of the
//! surrounding system.
//!
//! ## Example
//!
//! ```
//! use lakesim_storage::{FsConfig, SimFileSystem, FileKind, MB};
//!
//! let mut fs = SimFileSystem::new(FsConfig::default());
//! fs.create_namespace("db_sales", Some(10_000)).unwrap();
//! let id = fs.create_file("db_sales", FileKind::Data, 4 * MB, 0).unwrap();
//! let (meta, _rpc) = fs.open_file(id, 0).unwrap();
//! assert_eq!(meta.size_bytes, 4 * MB);
//! assert!(fs.quota_usage("db_sales").unwrap().used > 0);
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod file;
pub mod fs;
pub mod histogram;
pub mod metrics;
pub mod namenode;
pub mod namespace;
pub mod snapshot;
pub mod units;

pub use codec::{
    fnv1a64, frame_checksum64, open_frame, seal_frame, CodecError, Decoder, Encoder, Frame,
};
pub use error::StorageError;
pub use file::{FileId, FileKind, FileMeta};
pub use fs::{FsConfig, SimFileSystem};
pub use histogram::SizeHistogram;
pub use metrics::StorageMetrics;
pub use namenode::{NameNode, RpcCounters, RpcKind, RpcTicket};
pub use namespace::QuotaUsage;
pub use snapshot::{DirSnapshotMedium, Journal, MemSnapshotMedium, SnapshotMedium, SnapshotStore};
pub use units::{GB, KB, MB, TB};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
