//! Dual-slot durable snapshot store with torn-write fallback.
//!
//! A snapshot that is overwritten in place can be destroyed by the very
//! crash it exists to survive: a process killed mid-write leaves neither
//! the old nor the new state readable. The store therefore keeps **two
//! slots** and alternates between them:
//!
//! * every save is sealed into a checksummed frame
//!   ([`crate::codec::seal_frame`]) carrying a monotonically increasing
//!   sequence number, and written to the slot *not* holding the latest
//!   valid snapshot;
//! * every load validates both slots and picks the highest-sequence one
//!   that passes checksum validation.
//!
//! A torn or corrupted write therefore costs exactly one snapshot
//! generation: the previous slot still validates and wins the load. Only
//! when both slots are unreadable does [`SnapshotStore::load`] report
//! nothing, and the caller falls back to a cold start.
//!
//! The byte sink behind the slots is abstracted as [`SnapshotMedium`] so
//! tests can interpose deterministic torn-write faults, and services can
//! choose between the in-memory medium (crash-simulation harnesses) and
//! the directory medium (real files).

use std::path::PathBuf;

use crate::codec::{fnv1a64, open_frame, seal_frame, CodecError, Decoder, Encoder};

/// Frame kind tag of snapshot-store frames.
pub const SNAPSHOT_FRAME_KIND: u16 = 1;

/// Newest snapshot-store frame version this build reads and writes.
pub const SNAPSHOT_FRAME_VERSION: u32 = 1;

/// Byte sink with two addressable slots. Implementations must make
/// `read_slot` return whatever bytes the last `write_slot` left behind
/// (torn writes included — the store's framing detects them); they need
/// not make writes atomic.
pub trait SnapshotMedium {
    /// Reads the raw bytes of `slot` (0 or 1), or `None` if the slot has
    /// never been written / does not exist.
    fn read_slot(&self, slot: usize) -> Option<Vec<u8>>;
    /// Replaces the raw bytes of `slot` (0 or 1).
    fn write_slot(&mut self, slot: usize, bytes: &[u8]) -> std::io::Result<()>;
}

/// Volatile in-memory medium — the crash-simulation harness's "disk"
/// (it outlives the simulated process, not the real one).
#[derive(Debug, Default, Clone)]
pub struct MemSnapshotMedium {
    slots: [Option<Vec<u8>>; 2],
}

impl MemSnapshotMedium {
    /// A fresh medium with both slots empty.
    pub fn new() -> Self {
        MemSnapshotMedium::default()
    }
}

impl SnapshotMedium for MemSnapshotMedium {
    fn read_slot(&self, slot: usize) -> Option<Vec<u8>> {
        self.slots.get(slot)?.clone()
    }
    fn write_slot(&mut self, slot: usize, bytes: &[u8]) -> std::io::Result<()> {
        self.slots[slot] = Some(bytes.to_vec());
        Ok(())
    }
}

/// File-backed medium: slots are `snap.a` / `snap.b` inside a directory.
/// Writes go straight to the slot file (no rename dance) — the dual-slot
/// protocol above is what provides crash safety, so a torn file is
/// acceptable by design.
#[derive(Debug, Clone)]
pub struct DirSnapshotMedium {
    dir: PathBuf,
}

impl DirSnapshotMedium {
    /// A medium storing its slots in `dir` (created if missing).
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DirSnapshotMedium { dir })
    }

    fn slot_path(&self, slot: usize) -> PathBuf {
        self.dir.join(if slot == 0 { "snap.a" } else { "snap.b" })
    }
}

impl SnapshotMedium for DirSnapshotMedium {
    fn read_slot(&self, slot: usize) -> Option<Vec<u8>> {
        std::fs::read(self.slot_path(slot)).ok()
    }
    fn write_slot(&mut self, slot: usize, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::write(self.slot_path(slot), bytes)
    }
}

/// Alternating dual-slot snapshot store over a [`SnapshotMedium`].
#[derive(Debug)]
pub struct SnapshotStore<M> {
    medium: M,
}

impl<M: SnapshotMedium> SnapshotStore<M> {
    /// A store over `medium`; existing slot contents are picked up as-is.
    pub fn new(medium: M) -> Self {
        SnapshotStore { medium }
    }

    /// Shared access to the underlying medium.
    pub fn medium(&self) -> &M {
        &self.medium
    }

    /// Mutable access to the underlying medium (used by fault-injecting
    /// test wrappers to tear a just-written slot).
    pub fn medium_mut(&mut self) -> &mut M {
        &mut self.medium
    }

    /// Validated `(sequence, payload)` of one slot, or `None` when the
    /// slot is missing, torn or corrupt.
    fn valid_slot(&self, slot: usize) -> Option<(u64, Vec<u8>)> {
        let bytes = self.medium.read_slot(slot)?;
        let frame = open_frame(&bytes, SNAPSHOT_FRAME_KIND, SNAPSHOT_FRAME_VERSION).ok()?;
        let mut dec = Decoder::new(frame.payload);
        let seq = dec.take_u64("snapshot sequence").ok()?;
        let payload = dec.take_bytes("snapshot payload").ok()?;
        dec.finish().ok()?;
        Some((seq, payload.to_vec()))
    }

    /// Loads the newest valid snapshot as `(sequence, payload)`, or
    /// `None` when neither slot validates (cold start).
    pub fn load(&self) -> Option<(u64, Vec<u8>)> {
        match (self.valid_slot(0), self.valid_slot(1)) {
            (Some(a), Some(b)) => Some(if a.0 >= b.0 { a } else { b }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Saves `payload` as the next snapshot generation and returns its
    /// sequence number. The write targets the slot *not* holding the
    /// newest valid snapshot, so a crash mid-write cannot lose the prior
    /// generation.
    pub fn save(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        let (seq, target) = match (self.valid_slot(0), self.valid_slot(1)) {
            (Some((a, _)), Some((b, _))) => (a.max(b) + 1, if a >= b { 1 } else { 0 }),
            (Some((a, _)), None) => (a + 1, 1),
            (None, Some((b, _))) => (b + 1, 0),
            (None, None) => (1, 0),
        };
        let mut enc = Encoder::new();
        enc.put_u64(seq);
        enc.put_bytes(payload);
        let frame = seal_frame(
            SNAPSHOT_FRAME_KIND,
            SNAPSHOT_FRAME_VERSION,
            &enc.into_bytes(),
        );
        self.medium.write_slot(target, &frame)?;
        Ok(seq)
    }
}

/// Append-only record journal with per-record framing and a tolerant
/// reader.
///
/// Each record is stored as `len:u32 | fnv64:u64 | payload`, checksummed
/// individually, so the journal degrades like a write-ahead log: a crash
/// mid-append tears at most the final record, and
/// [`Journal::from_bytes`] recovers every record up to (not including)
/// the first torn or corrupt frame — it never panics and never yields a
/// record whose checksum does not match.
#[derive(Debug, Default, Clone)]
pub struct Journal {
    bytes: Vec<u8>,
    /// Byte offset where each record's frame begins (index = record id).
    offsets: Vec<usize>,
}

impl Journal {
    /// A fresh, empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Recovers a journal from raw bytes, keeping the longest valid
    /// record prefix and dropping everything from the first torn record
    /// on.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut journal = Journal::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= 12 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let stored = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
            let Some(end) = pos.checked_add(12).and_then(|s| s.checked_add(len)) else {
                break;
            };
            if end > bytes.len() {
                break;
            }
            let payload = &bytes[pos + 12..end];
            if fnv1a64(payload) != stored {
                break;
            }
            journal.offsets.push(journal.bytes.len());
            journal.bytes.extend_from_slice(&bytes[pos..end]);
            pos = end;
        }
        journal
    }

    /// Appends one record, returning its index.
    pub fn append(&mut self, payload: &[u8]) -> u64 {
        let index = self.offsets.len() as u64;
        self.offsets.push(self.bytes.len());
        self.bytes
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.bytes
            .extend_from_slice(&fnv1a64(payload).to_le_bytes());
        self.bytes.extend_from_slice(payload);
        index
    }

    /// Number of (valid) records.
    pub fn records(&self) -> u64 {
        self.offsets.len() as u64
    }

    /// The raw journal bytes (what a service would persist).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Record payload at `index`, if present.
    pub fn record(&self, index: u64) -> Option<&[u8]> {
        let start = *self.offsets.get(index as usize)?;
        let len = u32::from_le_bytes(self.bytes[start..start + 4].try_into().unwrap()) as usize;
        Some(&self.bytes[start + 12..start + 12 + len])
    }

    /// Iterates record payloads starting at record `from` — the replay
    /// entry point (`from` is typically a snapshot's journal watermark).
    pub fn iter_from(&self, from: u64) -> impl Iterator<Item = &[u8]> + '_ {
        (from..self.records()).filter_map(move |i| self.record(i))
    }
}

/// Errors from interpreting journal payloads (re-exported convenience).
pub type JournalDecodeError = CodecError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_alternates_slots_and_survives_a_torn_write() {
        let mut store = SnapshotStore::new(MemSnapshotMedium::new());
        assert!(store.load().is_none());
        assert_eq!(store.save(b"one").unwrap(), 1);
        assert_eq!(store.load().unwrap(), (1, b"one".to_vec()));
        assert_eq!(store.save(b"two").unwrap(), 2);
        assert_eq!(store.load().unwrap(), (2, b"two".to_vec()));

        // Tear the newest slot mid-write: load falls back to "one"… no,
        // to the surviving prior generation.
        let newest = if store.medium().read_slot(0).unwrap().len()
            >= store.medium().read_slot(1).unwrap().len()
        {
            // both frames same size; find which slot holds seq 2
            let s0 = store.valid_slot(0).unwrap().0;
            if s0 == 2 {
                0
            } else {
                1
            }
        } else {
            0
        };
        let torn: Vec<u8> = store.medium().read_slot(newest).unwrap()[..10].to_vec();
        store.medium_mut().write_slot(newest, &torn).unwrap();
        assert_eq!(store.load().unwrap(), (1, b"one".to_vec()));

        // The next save reuses the torn slot and moves on.
        assert_eq!(store.save(b"three").unwrap(), 2);
        assert_eq!(store.load().unwrap(), (2, b"three".to_vec()));
    }

    #[test]
    fn dir_medium_round_trips() {
        let dir = std::env::temp_dir().join(format!("lakesim-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = SnapshotStore::new(DirSnapshotMedium::new(&dir).unwrap());
        store.save(b"alpha").unwrap();
        store.save(b"beta").unwrap();
        let reopened = SnapshotStore::new(DirSnapshotMedium::new(&dir).unwrap());
        assert_eq!(reopened.load().unwrap(), (2, b"beta".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_replays_and_tolerates_torn_tail() {
        let mut journal = Journal::new();
        journal.append(b"a");
        journal.append(b"bb");
        journal.append(b"ccc");
        assert_eq!(journal.records(), 3);
        assert_eq!(
            journal.iter_from(1).collect::<Vec<_>>(),
            vec![b"bb".as_slice(), b"ccc".as_slice()]
        );

        // Torn tail: drop the last 2 bytes — final record is discarded,
        // the prefix survives.
        let torn = &journal.bytes()[..journal.bytes().len() - 2];
        let recovered = Journal::from_bytes(torn);
        assert_eq!(recovered.records(), 2);
        assert_eq!(recovered.record(1), Some(b"bb".as_slice()));

        // Bit flip inside a record: that record and everything after it
        // is discarded.
        let mut flipped = journal.bytes().to_vec();
        flipped[12] ^= 0x40; // record 0's payload byte
        let recovered = Journal::from_bytes(&flipped);
        assert_eq!(recovered.records(), 0);

        // Appending to a recovered journal continues the chain.
        let mut recovered = Journal::from_bytes(journal.bytes());
        assert_eq!(recovered.append(b"dddd"), 3);
        assert_eq!(recovered.record(3), Some(b"dddd".as_slice()));
    }

    #[test]
    fn journal_from_garbage_never_panics() {
        for len in 0..64usize {
            let garbage: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let j = Journal::from_bytes(&garbage);
            assert_eq!(j.records(), 0);
        }
    }
}
