//! Hand-rolled binary codec for durable snapshots and journals.
//!
//! The build environment has no registry access, so durability cannot
//! lean on `serde`/`bincode`; this module provides the minimal
//! little-endian primitive layer the snapshot and journal formats are
//! built from, plus the sealed-frame envelope that makes a persisted
//! blob self-validating:
//!
//! ```text
//! frame := magic:u32 | version:u32 | kind:u16 | len:u64 | payload | check64:u64
//! ```
//!
//! The trailing checksum ([`frame_checksum64`]) covers everything
//! before it (header included), so a torn write, a truncation, or a bit
//! flip anywhere in the frame is detected before a single payload byte
//! is interpreted.
//! Decoding never panics on malformed input: every read is
//! bounds-checked and returns a [`CodecError`], which the restore layer
//! maps to a clean cold-start fallback.
//!
//! Versioning policy: `version` is bumped whenever the payload layout
//! changes incompatibly. Readers accept frames whose version is at most
//! their own and reject newer ones ([`CodecError::UnsupportedVersion`]) —
//! an old binary never misinterprets a new snapshot, and a new binary
//! may add explicit migration arms for old versions when needed.

use std::fmt;

/// Magic number opening every sealed frame (`"ACSN"` little-endian).
pub const FRAME_MAGIC: u32 = 0x4e53_4341;

/// Fixed bytes of a sealed frame surrounding the payload:
/// magic + version + kind + length header, plus the trailing checksum.
pub const FRAME_OVERHEAD: usize = 4 + 4 + 2 + 8 + 8;

/// Decode-side failure. Carries enough context to explain a rejected
/// restore without interpreting any unverified payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the expected value.
    UnexpectedEof {
        /// What was being decoded.
        what: &'static str,
    },
    /// Frame does not begin with [`FRAME_MAGIC`].
    BadMagic,
    /// Frame kind differs from what the reader expected.
    WrongKind {
        /// Kind found in the frame header.
        found: u16,
        /// Kind the reader expected.
        expected: u16,
    },
    /// Frame version is newer than this reader understands.
    UnsupportedVersion {
        /// Version found in the frame header.
        found: u32,
        /// Newest version the reader accepts.
        supported: u32,
    },
    /// Checksum over the frame bytes does not match the trailer.
    ChecksumMismatch,
    /// Structurally invalid payload (bad tag, impossible length, …).
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { what } => write!(f, "unexpected end of input at {what}"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::WrongKind { found, expected } => {
                write!(f, "frame kind {found} where {expected} was expected")
            }
            CodecError::UnsupportedVersion { found, supported } => {
                write!(f, "frame version {found} newer than supported {supported}")
            }
            CodecError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            CodecError::Invalid(what) => write!(f, "invalid payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash over `bytes`. Byte-serial, so it is kept for
/// short keys (configuration fingerprints); frames use the word-wise
/// [`frame_checksum64`], which runs ~20x faster on multi-megabyte
/// snapshots.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The frame/slot checksum: four independent multiply-xor lanes over
/// little-endian 64-bit words (zero-padded tail), folded through
/// distinct odd multipliers with the input length. Each lane step is an
/// invertible map, so any single-word change — a bit flip, a torn tail,
/// a truncation — changes the digest. Word-parallel lanes break the
/// byte-at-a-time multiply dependency chain that made FNV the dominant
/// cost of opening a fleet-scale snapshot; like FNV this is a
/// corruption detector, not a cryptographic seal.
pub fn frame_checksum64(bytes: &[u8]) -> u64 {
    const M0: u64 = 0x9e37_79b9_7f4a_7c15;
    const M1: u64 = 0xc2b2_ae3d_27d4_eb4f;
    const M2: u64 = 0x1656_67b1_9e37_79f9;
    const M3: u64 = 0x27d4_eb2f_1656_67c5;
    let mut lanes = [
        0xcbf2_9ce4_8422_2325u64,
        0x8422_2325_cbf2_9ce4,
        0x9ce4_8422_2325_cbf2,
        0x2325_cbf2_9ce4_8422,
    ];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            let v = u64::from_le_bytes(word.try_into().unwrap());
            *lane = (*lane ^ v).wrapping_mul(M0);
        }
    }
    let rem = blocks.remainder();
    let mut words = rem.chunks_exact(8);
    let mut next = 0usize;
    for word in &mut words {
        let v = u64::from_le_bytes(word.try_into().unwrap());
        lanes[next] = (lanes[next] ^ v).wrapping_mul(M0);
        next += 1;
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut pad = [0u8; 8];
        pad[..tail.len()].copy_from_slice(tail);
        lanes[next] = (lanes[next] ^ u64::from_le_bytes(pad)).wrapping_mul(M0);
    }
    // The length is folded in so zero padding cannot alias a shorter
    // input, then the lanes avalanche together.
    let mut hash = (bytes.len() as u64).wrapping_mul(M1)
        ^ lanes[0].wrapping_mul(M0)
        ^ lanes[1].wrapping_mul(M1)
        ^ lanes[2].wrapping_mul(M2)
        ^ lanes[3].wrapping_mul(M3);
    hash ^= hash >> 29;
    hash = hash.wrapping_mul(M0);
    hash ^ (hash >> 32)
}

/// Little-endian append-only byte encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` little-endian (two's complement).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern, so values
    /// (NaN payloads included) round-trip bit-identically.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends an optional `u64` (presence byte + value).
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.put_bool(true);
                self.put_u64(v);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian decoder over a byte slice. Every read
/// fails softly with a [`CodecError`] instead of panicking — the
/// property the snapshot corruption tests pin.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { what });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a bool byte; any value other than 0/1 is invalid.
    pub fn take_bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        match self.take_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid(what)),
        }
    }

    /// Reads a `u16` little-endian.
    pub fn take_u16(&mut self, what: &'static str) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    /// Reads a `u32` little-endian.
    pub fn take_u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads a `u64` little-endian.
    pub fn take_u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads an `i64` little-endian.
    pub fn take_i64(&mut self, what: &'static str) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn take_f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    /// Reads an optional `u64` (presence byte + value).
    pub fn take_opt_u64(&mut self, what: &'static str) -> Result<Option<u64>, CodecError> {
        if self.take_bool(what)? {
            Ok(Some(self.take_u64(what)?))
        } else {
            Ok(None)
        }
    }

    /// Reads `n` raw bytes with a single bounds check — the fast path
    /// for fixed-layout blocks whose fields the caller slices out
    /// itself (e.g. the packed per-table stats records, where a
    /// field-by-field decode would pay one check per value across
    /// hundreds of thousands of entries).
    pub fn take_raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        self.take(n, what)
    }

    /// Reads a length-prefixed byte slice. The length is validated
    /// against the remaining input before any allocation, so a corrupt
    /// length cannot trigger an out-of-memory allocation attempt.
    pub fn take_bytes(&mut self, what: &'static str) -> Result<&'a [u8], CodecError> {
        let len = self.take_u64(what)?;
        if len > self.remaining() as u64 {
            return Err(CodecError::UnexpectedEof { what });
        }
        self.take(len as usize, what)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self, what: &'static str) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.take_bytes(what)?).map_err(|_| CodecError::Invalid(what))
    }

    /// Reads a length prefix for a sequence whose elements occupy at
    /// least `min_element_bytes` each, rejecting lengths the remaining
    /// input cannot possibly hold (corruption guard for `Vec` reads).
    pub fn take_len(
        &mut self,
        min_element_bytes: usize,
        what: &'static str,
    ) -> Result<usize, CodecError> {
        let len = self.take_u64(what)?;
        let cap = self.remaining() / min_element_bytes.max(1);
        if len > cap as u64 {
            return Err(CodecError::UnexpectedEof { what });
        }
        Ok(len as usize)
    }

    /// Fails unless every byte has been consumed — trailing garbage in a
    /// checksum-valid frame still indicates a layout mismatch.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Invalid("trailing bytes after payload"))
        }
    }
}

/// Seals `payload` into a self-validating frame (see module docs for the
/// layout).
pub fn seal_frame(kind: u16, version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = frame_checksum64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// A validated frame: header fields plus a borrowed payload whose
/// checksum has already been verified.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    /// Format version the payload was written under.
    pub version: u32,
    /// Frame kind tag.
    pub kind: u16,
    /// Checksum-verified payload bytes.
    pub payload: &'a [u8],
}

/// Opens and validates a sealed frame: magic, kind, version ceiling,
/// declared length and checksum are all checked before the payload is
/// exposed. Any violation — including a frame truncated mid-header —
/// returns an error rather than panicking.
pub fn open_frame(
    bytes: &[u8],
    expected_kind: u16,
    max_version: u32,
) -> Result<Frame<'_>, CodecError> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(CodecError::UnexpectedEof {
            what: "frame header",
        });
    }
    let mut dec = Decoder::new(bytes);
    let magic = dec.take_u32("frame magic")?;
    if magic != FRAME_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = dec.take_u32("frame version")?;
    let kind = dec.take_u16("frame kind")?;
    let len = dec.take_u64("frame length")?;
    if kind != expected_kind {
        return Err(CodecError::WrongKind {
            found: kind,
            expected: expected_kind,
        });
    }
    if version > max_version {
        return Err(CodecError::UnsupportedVersion {
            found: version,
            supported: max_version,
        });
    }
    let header = 4 + 4 + 2 + 8;
    if len != (bytes.len() - FRAME_OVERHEAD) as u64 {
        return Err(CodecError::UnexpectedEof {
            what: "frame payload",
        });
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    if frame_checksum64(&bytes[..body_end]) != stored {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(Frame {
        version,
        kind,
        payload: &bytes[header..body_end],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_bool(true);
        enc.put_u16(513);
        enc.put_u32(70_000);
        enc.put_u64(1 << 40);
        enc.put_i64(-42);
        enc.put_f64(f64::from_bits(0x7ff8_0000_0000_0001)); // NaN payload
        enc.put_opt_u64(Some(9));
        enc.put_opt_u64(None);
        enc.put_str("héllo");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.take_u8("a").unwrap(), 7);
        assert!(dec.take_bool("b").unwrap());
        assert_eq!(dec.take_u16("c").unwrap(), 513);
        assert_eq!(dec.take_u32("d").unwrap(), 70_000);
        assert_eq!(dec.take_u64("e").unwrap(), 1 << 40);
        assert_eq!(dec.take_i64("f").unwrap(), -42);
        assert_eq!(dec.take_f64("g").unwrap().to_bits(), 0x7ff8_0000_0000_0001);
        assert_eq!(dec.take_opt_u64("h").unwrap(), Some(9));
        assert_eq!(dec.take_opt_u64("i").unwrap(), None);
        assert_eq!(dec.take_str("j").unwrap(), "héllo");
        dec.finish().unwrap();
    }

    #[test]
    fn decoder_fails_softly_on_truncation() {
        let mut enc = Encoder::new();
        enc.put_u64(1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..5]);
        assert!(matches!(
            dec.take_u64("v"),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn corrupt_length_prefix_cannot_over_allocate() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX); // absurd length prefix
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.take_bytes("blob").is_err());
        let mut dec = Decoder::new(&bytes);
        assert!(dec.take_len(8, "vec").is_err());
    }

    #[test]
    fn frames_validate_and_round_trip() {
        let sealed = seal_frame(3, 1, b"payload");
        let frame = open_frame(&sealed, 3, 1).unwrap();
        assert_eq!(frame.version, 1);
        assert_eq!(frame.kind, 3);
        assert_eq!(frame.payload, b"payload");

        assert!(matches!(
            open_frame(&sealed, 4, 1),
            Err(CodecError::WrongKind { .. })
        ));
        assert!(matches!(
            open_frame(&sealed, 3, 0),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            open_frame(&sealed[..sealed.len() - 1], 3, 1),
            Err(CodecError::UnexpectedEof { .. })
        ));
        let mut flipped = sealed.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(open_frame(&flipped, 3, 1).is_err());
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let sealed = seal_frame(1, 1, b"abcdefgh");
        for i in 0..sealed.len() {
            for bit in [1u8, 0x80] {
                let mut bytes = sealed.clone();
                bytes[i] ^= bit;
                assert!(open_frame(&bytes, 1, 1).is_err(), "byte {i} bit {bit}");
            }
        }
    }
}
