//! Namespaces (databases) with object quotas.
//!
//! LinkedIn's OpenHouse deployment maps each database (tenant) to an HDFS
//! namespace with an object quota; §7 of the paper folds the quota
//! utilization into the MOOP weight `w1 = 0.5 × (1 + Used/Total)`. This
//! module tracks per-namespace object/byte usage and exposes
//! [`QuotaUsage`], the signal that weight formula consumes.

use crate::error::StorageError;

/// Quota utilization snapshot for a namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaUsage {
    /// Objects (files + blocks) currently in use.
    pub used: u64,
    /// Configured quota; `u64::MAX` when unlimited.
    pub quota: u64,
}

impl QuotaUsage {
    /// Utilization in `[0, 1]`-ish (can exceed 1.0 if the quota was lowered
    /// after files were created). Unlimited quotas report 0.0 so that the
    /// quota-aware weight degrades to the paper's base weight.
    pub fn utilization(&self) -> f64 {
        if self.quota == u64::MAX || self.quota == 0 {
            return 0.0;
        }
        self.used as f64 / self.quota as f64
    }
}

/// Per-namespace bookkeeping.
#[derive(Debug, Clone)]
pub struct Namespace {
    /// Namespace (database) name.
    pub name: String,
    /// Object quota (files + blocks); `u64::MAX` = unlimited.
    pub object_quota: u64,
    /// Live file count.
    pub file_count: u64,
    /// Live block count.
    pub block_count: u64,
    /// Live bytes.
    pub bytes: u64,
}

impl Namespace {
    /// Creates an empty namespace. `quota = None` means unlimited.
    pub fn new(name: impl Into<String>, quota: Option<u64>) -> Self {
        Self {
            name: name.into(),
            object_quota: quota.unwrap_or(u64::MAX),
            file_count: 0,
            block_count: 0,
            bytes: 0,
        }
    }

    /// Objects currently used (files + blocks).
    pub fn used_objects(&self) -> u64 {
        self.file_count + self.block_count
    }

    /// Current quota usage snapshot.
    pub fn quota_usage(&self) -> QuotaUsage {
        QuotaUsage {
            used: self.used_objects(),
            quota: self.object_quota,
        }
    }

    /// Checks whether `additional_objects` more objects fit under the quota.
    pub fn check_quota(&self, additional_objects: u64) -> Result<(), StorageError> {
        let used = self.used_objects();
        if self.object_quota != u64::MAX && used + additional_objects > self.object_quota {
            return Err(StorageError::QuotaExceeded {
                namespace: self.name.clone(),
                used,
                quota: self.object_quota,
                requested: additional_objects,
            });
        }
        Ok(())
    }

    /// Accounts a created file.
    pub fn add_file(&mut self, blocks: u64, bytes: u64) {
        self.file_count += 1;
        self.block_count += blocks;
        self.bytes += bytes;
    }

    /// Accounts a deleted file.
    pub fn remove_file(&mut self, blocks: u64, bytes: u64) {
        self.file_count = self.file_count.saturating_sub(1);
        self.block_count = self.block_count.saturating_sub(blocks);
        self.bytes = self.bytes.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_enforced_on_check() {
        let mut ns = Namespace::new("db", Some(10));
        ns.add_file(4, 100); // 5 objects
        assert!(ns.check_quota(5).is_ok());
        let err = ns.check_quota(6).unwrap_err();
        match err {
            StorageError::QuotaExceeded { used, quota, .. } => {
                assert_eq!(used, 5);
                assert_eq!(quota, 10);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn unlimited_namespace_never_rejects() {
        let ns = Namespace::new("db", None);
        assert!(ns.check_quota(u64::MAX / 2).is_ok());
        assert_eq!(ns.quota_usage().utilization(), 0.0);
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut ns = Namespace::new("db", Some(100));
        ns.add_file(49, 0); // 50 objects
        assert!((ns.quota_usage().utilization() - 0.5).abs() < 1e-12);
        ns.remove_file(49, 0);
        assert_eq!(ns.used_objects(), 0);
    }

    #[test]
    fn remove_saturates() {
        let mut ns = Namespace::new("db", Some(100));
        ns.remove_file(10, 10);
        assert_eq!(ns.used_objects(), 0);
        assert_eq!(ns.bytes, 0);
    }
}
