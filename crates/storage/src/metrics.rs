//! Storage-layer metric snapshots.

use std::fmt;

use crate::namenode::RpcCounters;

/// Point-in-time snapshot of storage health, as sampled by experiments
/// (e.g. the monthly series of Fig. 10c / Fig. 11b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageMetrics {
    /// Live file count.
    pub total_files: u64,
    /// Live namespace objects (files + blocks).
    pub total_objects: u64,
    /// Live bytes.
    pub total_bytes: u64,
    /// Cumulative deleted files.
    pub deleted_files: u64,
    /// Cumulative RPC counters.
    pub rpc: RpcCounters,
    /// Current NameNode congestion factor (≥ 1.0).
    pub congestion_factor: f64,
}

impl fmt::Display for StorageMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "files={} objects={} bytes={} deleted={} congestion={:.3} rpc[{}]",
            self.total_files,
            self.total_objects,
            self.total_bytes,
            self.deleted_files,
            self.congestion_factor,
            self.rpc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_all_fields() {
        let m = StorageMetrics {
            total_files: 3,
            total_objects: 7,
            total_bytes: 1024,
            deleted_files: 1,
            rpc: RpcCounters::default(),
            congestion_factor: 1.25,
        };
        let s = m.to_string();
        assert!(s.contains("files=3"));
        assert!(s.contains("objects=7"));
        assert!(s.contains("congestion=1.250"));
    }
}
