//! File identifiers and metadata records.

use std::fmt;

/// Stable identifier for a file within one [`crate::SimFileSystem`].
///
/// Ids are assigned by a monotonically increasing counter, so iteration
/// ordered by `FileId` is creation order — a property the deterministic
/// decision pipeline (paper NFR2) relies on for stable tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Broad classification of what a file stores.
///
/// The paper distinguishes data files from the LST *metadata* files
/// (manifests, manifest lists, metadata JSON) that themselves contribute to
/// small-file proliferation (§2, cause *iv*), and from short-lived
/// checkpoint files written by the ingestion pipeline (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FileKind {
    /// Columnar data file (Parquet/ORC in the real system).
    Data,
    /// LST metadata object: manifest, manifest list, or metadata JSON.
    Metadata,
    /// Ingestion checkpoint file, expired after a retention window.
    Checkpoint,
}

impl FileKind {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FileKind::Data => "data",
            FileKind::Metadata => "meta",
            FileKind::Checkpoint => "ckpt",
        }
    }
}

/// Metadata the simulated NameNode keeps for each file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Unique file id.
    pub id: FileId,
    /// Owning namespace (database).
    pub namespace: String,
    /// What the file stores.
    pub kind: FileKind,
    /// Logical size in bytes.
    pub size_bytes: u64,
    /// Number of HDFS blocks the file occupies (`ceil(size / block_size)`).
    pub block_count: u64,
    /// Simulation timestamp (ms) at which the file was created.
    pub created_at_ms: u64,
}

impl FileMeta {
    /// Number of namespace objects this file accounts for: the file entry
    /// itself plus one object per block, matching how HDFS namespace quotas
    /// count inodes + blocks.
    pub fn object_count(&self) -> u64 {
        1 + self.block_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_orders_by_creation() {
        assert!(FileId(1) < FileId(2));
        assert_eq!(FileId(3).to_string(), "file#3");
    }

    #[test]
    fn object_count_includes_blocks() {
        let meta = FileMeta {
            id: FileId(1),
            namespace: "db".into(),
            kind: FileKind::Data,
            size_bytes: 1,
            block_count: 4,
            created_at_ms: 0,
        };
        assert_eq!(meta.object_count(), 5);
    }

    #[test]
    fn kind_labels_are_distinct() {
        let labels = [
            FileKind::Data.label(),
            FileKind::Metadata.label(),
            FileKind::Checkpoint.label(),
        ];
        assert_eq!(
            labels.len(),
            labels
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
    }
}
