//! Error type for the simulated storage layer.

use std::fmt;

use crate::file::FileId;

/// Errors surfaced by the simulated file system.
///
/// These mirror the failure modes the paper attributes to small-file
/// proliferation: quota breaches and RPC read timeouts (§2, §7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The namespace object quota would be exceeded by the operation.
    QuotaExceeded {
        /// Namespace (database) whose quota was hit.
        namespace: String,
        /// Objects currently in use.
        used: u64,
        /// Configured object quota.
        quota: u64,
        /// Objects the rejected operation would have added.
        requested: u64,
    },
    /// The namespace does not exist.
    NamespaceNotFound(String),
    /// A namespace with this name already exists.
    NamespaceExists(String),
    /// The file id is unknown (possibly already deleted).
    FileNotFound(FileId),
    /// The NameNode was overloaded and the read RPC timed out.
    ///
    /// The paper reports HDFS read timeouts under excessive RPC traffic that
    /// trigger client retries and a thundering-herd effect (§7).
    ReadTimeout {
        /// File whose open timed out.
        file: FileId,
        /// RPC operations observed in the current window when the call was
        /// rejected (for diagnostics).
        window_ops: u64,
        /// The window capacity that was exceeded.
        capacity: u64,
    },
    /// A file of size zero was requested; the simulator requires positive sizes.
    EmptyFile,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::QuotaExceeded {
                namespace,
                used,
                quota,
                requested,
            } => write!(
                f,
                "namespace quota exceeded in '{namespace}': used {used} + requested {requested} > quota {quota}"
            ),
            StorageError::NamespaceNotFound(ns) => write!(f, "namespace not found: '{ns}'"),
            StorageError::NamespaceExists(ns) => write!(f, "namespace already exists: '{ns}'"),
            StorageError::FileNotFound(id) => write!(f, "file not found: {id}"),
            StorageError::ReadTimeout {
                file,
                window_ops,
                capacity,
            } => write!(
                f,
                "read timeout opening {file}: namenode window ops {window_ops} exceeded capacity {capacity}"
            ),
            StorageError::EmptyFile => write!(f, "cannot create a zero-byte file"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::QuotaExceeded {
            namespace: "db1".into(),
            used: 90,
            quota: 100,
            requested: 20,
        };
        let s = e.to_string();
        assert!(s.contains("db1"));
        assert!(s.contains("90"));
        assert!(s.contains("100"));

        let e = StorageError::ReadTimeout {
            file: FileId(7),
            window_ops: 1000,
            capacity: 800,
        };
        assert!(e.to_string().contains("timeout"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::NamespaceNotFound("a".into()),
            StorageError::NamespaceNotFound("a".into())
        );
        assert_ne!(
            StorageError::NamespaceNotFound("a".into()),
            StorageError::NamespaceExists("a".into())
        );
    }
}
