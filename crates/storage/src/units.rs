//! Byte-size units and formatting helpers shared across the workspace.

/// One kibibyte (2^10 bytes).
pub const KB: u64 = 1 << 10;
/// One mebibyte (2^20 bytes).
pub const MB: u64 = 1 << 20;
/// One gibibyte (2^30 bytes).
pub const GB: u64 = 1 << 30;
/// One tebibyte (2^40 bytes).
pub const TB: u64 = 1 << 40;

/// Formats a byte count with a binary-unit suffix, e.g. `512.0MB`.
///
/// Used by decision reports and experiment output; one decimal place keeps
/// output deterministic and diff-friendly.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= TB {
        format!("{:.1}TB", b / TB as f64)
    } else if bytes >= GB {
        format!("{:.1}GB", b / GB as f64)
    } else if bytes >= MB {
        format!("{:.1}MB", b / MB as f64)
    } else if bytes >= KB {
        format!("{:.1}KB", b / KB as f64)
    } else {
        format!("{bytes}B")
    }
}

/// Converts a byte count to fractional gigabytes.
pub fn bytes_to_gb(bytes: u64) -> f64 {
    bytes as f64 / GB as f64
}

/// Converts a byte count to fractional terabytes.
pub fn bytes_to_tb(bytes: u64) -> f64 {
    bytes as f64 / TB as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_powers_of_two() {
        assert_eq!(KB, 1024);
        assert_eq!(MB, 1024 * KB);
        assert_eq!(GB, 1024 * MB);
        assert_eq!(TB, 1024 * GB);
    }

    #[test]
    fn formats_each_magnitude() {
        assert_eq!(fmt_bytes(17), "17B");
        assert_eq!(fmt_bytes(2 * KB), "2.0KB");
        assert_eq!(fmt_bytes(512 * MB), "512.0MB");
        assert_eq!(fmt_bytes(3 * GB + GB / 2), "3.5GB");
        assert_eq!(fmt_bytes(2 * TB), "2.0TB");
    }

    #[test]
    fn conversions_round_trip() {
        assert!((bytes_to_gb(GB) - 1.0).abs() < 1e-12);
        assert!((bytes_to_tb(TB) - 1.0).abs() < 1e-12);
        assert!((bytes_to_gb(512 * MB) - 0.5).abs() < 1e-12);
    }
}
