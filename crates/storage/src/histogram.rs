//! File-size histograms.
//!
//! Figures 1 and 2 of the paper report file-size *distributions* over bucket
//! boundaries (…, 64MB, 128MB, 256MB, 512MB, …); the production metric of
//! §7 is "the percentage of files smaller than 128MB". [`SizeHistogram`]
//! provides both views with fixed, deterministic bucket edges.

use crate::units::MB;

/// Default bucket upper edges, in bytes. The final bucket is unbounded.
///
/// These match the x-axis of the paper's Figures 1–2: ≤8MB through >1GB.
pub const DEFAULT_EDGES_MB: [u64; 8] = [8, 16, 32, 64, 128, 256, 512, 1024];

/// A fixed-bucket histogram over file sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeHistogram {
    /// Upper (inclusive) edge of each bounded bucket, in bytes, ascending.
    edges: Vec<u64>,
    /// Counts per bucket; `counts.len() == edges.len() + 1` (last = overflow).
    counts: Vec<u64>,
    /// Total number of recorded files.
    total: u64,
    /// Total recorded bytes.
    total_bytes: u64,
}

impl Default for SizeHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl SizeHistogram {
    /// Creates a histogram with the paper-aligned default edges.
    pub fn new() -> Self {
        Self::with_edges(DEFAULT_EDGES_MB.iter().map(|mb| mb * MB).collect())
    }

    /// Creates a histogram with custom bucket edges (bytes, ascending).
    ///
    /// # Panics
    /// Panics if `edges` is empty or not strictly ascending.
    pub fn with_edges(edges: Vec<u64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let buckets = edges.len() + 1;
        Self {
            edges,
            counts: vec![0; buckets],
            total: 0,
            total_bytes: 0,
        }
    }

    /// Records one file of the given size.
    pub fn record(&mut self, size_bytes: u64) {
        let idx = self
            .edges
            .iter()
            .position(|&edge| size_bytes <= edge)
            .unwrap_or(self.edges.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.total_bytes += size_bytes;
    }

    /// Removes one previously recorded file (used when files are deleted).
    ///
    /// Saturates rather than panics if the bucket is already empty, so the
    /// histogram stays usable even if callers re-derive it lazily.
    pub fn unrecord(&mut self, size_bytes: u64) {
        let idx = self
            .edges
            .iter()
            .position(|&edge| size_bytes <= edge)
            .unwrap_or(self.edges.len());
        self.counts[idx] = self.counts[idx].saturating_sub(1);
        self.total = self.total.saturating_sub(1);
        self.total_bytes = self.total_bytes.saturating_sub(size_bytes);
    }

    /// Merges another histogram with identical edges into this one.
    ///
    /// # Panics
    /// Panics if the edge vectors differ.
    pub fn merge(&mut self, other: &SizeHistogram) {
        assert_eq!(
            self.edges, other.edges,
            "cannot merge mismatched histograms"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.total_bytes += other.total_bytes;
    }

    /// Total number of recorded files.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total recorded bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Raw per-bucket counts (`edges().len() + 1` entries).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket edges in bytes.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Number of files with `size <= threshold_bytes`.
    ///
    /// `threshold_bytes` must be one of the bucket edges for an exact
    /// answer; otherwise the nearest lower edge is used (documented
    /// approximation, deterministic).
    pub fn count_at_or_below(&self, threshold_bytes: u64) -> u64 {
        let mut acc = 0;
        for (i, &edge) in self.edges.iter().enumerate() {
            if edge <= threshold_bytes {
                acc += self.counts[i];
            }
        }
        acc
    }

    /// Fraction of files with `size <= threshold_bytes`; 0.0 when empty.
    ///
    /// This is the paper's §7 headline metric with `threshold = 128MB`.
    pub fn fraction_at_or_below(&self, threshold_bytes: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count_at_or_below(threshold_bytes) as f64 / self.total as f64
    }

    /// Human-readable label for bucket `i`, e.g. `"64-128MB"` or `">1024MB"`.
    pub fn bucket_label(&self, i: usize) -> String {
        let to_mb = |b: u64| b / MB;
        if i == 0 {
            format!("<={}MB", to_mb(self.edges[0]))
        } else if i < self.edges.len() {
            format!("{}-{}MB", to_mb(self.edges[i - 1]), to_mb(self.edges[i]))
        } else {
            format!(">{}MB", to_mb(*self.edges.last().expect("non-empty edges")))
        }
    }

    /// Per-bucket fractions (sums to 1.0 when non-empty).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = SizeHistogram::new();
        h.record(4 * MB); // <=8MB
        h.record(8 * MB); // <=8MB (inclusive edge)
        h.record(100 * MB); // 64-128MB
        h.record(2048 * MB); // >1024MB
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.count_at_or_below(128 * MB), 3);
        assert!((h.fraction_at_or_below(128 * MB) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unrecord_reverses_record() {
        let mut h = SizeHistogram::new();
        h.record(100 * MB);
        h.record(700 * MB);
        h.unrecord(100 * MB);
        assert_eq!(h.total(), 1);
        assert_eq!(h.total_bytes(), 700 * MB);
        assert_eq!(h.count_at_or_below(128 * MB), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = SizeHistogram::new();
        let mut b = SizeHistogram::new();
        a.record(10 * MB);
        b.record(10 * MB);
        b.record(600 * MB);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_at_or_below(16 * MB), 2);
    }

    #[test]
    fn labels_cover_all_buckets() {
        let h = SizeHistogram::new();
        assert_eq!(h.bucket_label(0), "<=8MB");
        assert_eq!(h.bucket_label(4), "64-128MB");
        assert_eq!(h.bucket_label(8), ">1024MB");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_edges() {
        let _ = SizeHistogram::with_edges(vec![2 * MB, MB]);
    }

    proptest! {
        /// Total always equals the sum of bucket counts, and fractions sum
        /// to ~1 for non-empty histograms.
        #[test]
        fn invariants_hold(sizes in proptest::collection::vec(1u64..5_000_000_000u64, 1..200)) {
            let mut h = SizeHistogram::new();
            for s in &sizes {
                h.record(*s);
            }
            prop_assert_eq!(h.total(), sizes.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), h.total());
            let fsum: f64 = h.fractions().iter().sum();
            prop_assert!((fsum - 1.0).abs() < 1e-9);
            prop_assert_eq!(h.total_bytes(), sizes.iter().sum::<u64>());
        }

        /// `count_at_or_below` is monotone in the threshold.
        #[test]
        fn cumulative_is_monotone(sizes in proptest::collection::vec(1u64..2_000_000_000u64, 0..100)) {
            let mut h = SizeHistogram::new();
            for s in &sizes {
                h.record(*s);
            }
            let mut prev = 0;
            for edge in h.edges().to_vec() {
                let c = h.count_at_or_below(edge);
                prop_assert!(c >= prev);
                prev = c;
            }
        }
    }
}
