//! Cluster model: executors, queueing, and GB·hr accounting.
//!
//! Mirrors the paper's §6 setup: a query-processing cluster (1 driver + 15
//! executors) and a compaction cluster (1 driver + 3 executors), each node
//! an E8s v3 (8 cores, 64GB). The model keeps one availability horizon per
//! executor: submitting a task splits its work across the least-loaded
//! executors and pushes their horizons forward, which produces queueing
//! delay under contention — the effect behind the no-compaction baseline's
//! "additional 25 minutes of overhead" (§6.2).

use crate::clock::MS_PER_HOUR;

/// What an application does, for per-kind accounting (Fig. 7 reports the
/// mean GBHr of compaction applications).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AppKind {
    /// Read-only query.
    Query,
    /// User write job.
    Write,
    /// Compaction (rewrite) job.
    Compaction,
    /// Other maintenance (snapshot expiry, orphan cleanup).
    Maintenance,
}

/// Static cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Cluster name, referenced by workloads and the scheduler.
    pub name: String,
    /// Number of executors.
    pub executors: usize,
    /// Memory per executor in GB (the paper's `ExecutorMemoryGB`).
    pub executor_memory_gb: f64,
}

impl ClusterConfig {
    /// The paper's 15-executor query cluster of 64GB nodes.
    pub fn query_default(name: impl Into<String>) -> Self {
        ClusterConfig {
            name: name.into(),
            executors: 15,
            executor_memory_gb: 64.0,
        }
    }

    /// The paper's 3-executor compaction cluster.
    pub fn compaction_default(name: impl Into<String>) -> Self {
        ClusterConfig {
            name: name.into(),
            executors: 3,
            executor_memory_gb: 64.0,
        }
    }
}

/// Completed-application record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppMetrics {
    /// Application id (unique per environment).
    pub app_id: u64,
    /// Application kind.
    pub kind: AppKind,
    /// Submission time.
    pub submitted_ms: u64,
    /// Start of execution (after queueing).
    pub started_ms: u64,
    /// Completion time.
    pub finished_ms: u64,
    /// GB·hours consumed (executor-ms × memory).
    pub gbhr: f64,
}

impl AppMetrics {
    /// Queueing delay experienced before execution started.
    pub fn queue_ms(&self) -> u64 {
        self.started_ms - self.submitted_ms
    }

    /// End-to-end latency.
    pub fn latency_ms(&self) -> u64 {
        self.finished_ms - self.submitted_ms
    }
}

/// Outcome of submitting one task to a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskOutcome {
    /// When execution began (≥ submission time).
    pub started_ms: u64,
    /// When execution finished.
    pub finished_ms: u64,
    /// GB·hours consumed.
    pub gbhr: f64,
}

/// A simulated compute cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    /// Per-executor availability horizon (ms).
    available_at: Vec<u64>,
    apps: Vec<AppMetrics>,
    next_app: u64,
}

impl Cluster {
    /// Creates an idle cluster.
    pub fn new(config: ClusterConfig) -> Self {
        let executors = config.executors.max(1);
        Cluster {
            config,
            available_at: vec![0; executors],
            apps: Vec::new(),
            next_app: 1,
        }
    }

    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Submits a task of `work_ms` total single-executor work, splittable
    /// across up to `parallelism` executors. Returns when it starts and
    /// finishes and what it costs.
    ///
    /// Scheduling picks the `p` least-loaded executors (deterministic:
    /// ties broken by executor index), gives each an equal slice, and
    /// moves their availability horizons to their slice end.
    pub fn submit(
        &mut self,
        now_ms: u64,
        work_ms: f64,
        parallelism: usize,
        kind: AppKind,
    ) -> TaskOutcome {
        let p = parallelism.clamp(1, self.available_at.len());
        // Least-loaded executors first; stable tie-break on index.
        let mut order: Vec<usize> = (0..self.available_at.len()).collect();
        order.sort_by_key(|&i| (self.available_at[i], i));
        let chosen = &order[..p];
        let slice_ms = (work_ms / p as f64).max(0.0);
        let mut started = u64::MAX;
        let mut finished = 0u64;
        for &i in chosen {
            let start = self.available_at[i].max(now_ms);
            let end = start + slice_ms.ceil() as u64;
            self.available_at[i] = end;
            started = started.min(start);
            finished = finished.max(end);
        }
        if started == u64::MAX {
            started = now_ms;
            finished = now_ms;
        }
        let gbhr = self.config.executor_memory_gb * (work_ms / MS_PER_HOUR as f64);
        let app_id = self.next_app;
        self.next_app += 1;
        self.apps.push(AppMetrics {
            app_id,
            kind,
            submitted_ms: now_ms,
            started_ms: started,
            finished_ms: finished,
            gbhr,
        });
        TaskOutcome {
            started_ms: started,
            finished_ms: finished,
            gbhr,
        }
    }

    /// Earliest time any executor is free at or after `now_ms`.
    pub fn earliest_available(&self, now_ms: u64) -> u64 {
        self.available_at
            .iter()
            .map(|&a| a.max(now_ms))
            .min()
            .unwrap_or(now_ms)
    }

    /// All completed application records.
    pub fn apps(&self) -> &[AppMetrics] {
        &self.apps
    }

    /// Applications of one kind.
    pub fn apps_of_kind(&self, kind: AppKind) -> impl Iterator<Item = &AppMetrics> {
        self.apps.iter().filter(move |a| a.kind == kind)
    }

    /// Mean GBHr of applications of one kind — the Fig. 7 metric
    /// (`GBHrApp`). Returns 0.0 when there are none.
    pub fn mean_gbhr(&self, kind: AppKind) -> f64 {
        let mut n = 0u64;
        let mut total = 0.0;
        for a in self.apps_of_kind(kind) {
            n += 1;
            total += a.gbhr;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Total GBHr consumed by applications of one kind.
    pub fn total_gbhr(&self, kind: AppKind) -> f64 {
        self.apps_of_kind(kind).map(|a| a.gbhr).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(executors: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            name: "test".into(),
            executors,
            executor_memory_gb: 64.0,
        })
    }

    #[test]
    fn parallelism_shortens_latency_not_cost() {
        let mut serial = cluster(4);
        let s = serial.submit(0, 40_000.0, 1, AppKind::Query);
        let mut parallel = cluster(4);
        let p = parallel.submit(0, 40_000.0, 4, AppKind::Query);
        assert_eq!(s.finished_ms, 40_000);
        assert_eq!(p.finished_ms, 10_000);
        assert!((s.gbhr - p.gbhr).abs() < 1e-9, "cost is work × memory");
    }

    #[test]
    fn contention_queues_tasks() {
        let mut c = cluster(1);
        let a = c.submit(0, 10_000.0, 1, AppKind::Query);
        let b = c.submit(1_000, 10_000.0, 1, AppKind::Query);
        assert_eq!(a.finished_ms, 10_000);
        assert_eq!(b.started_ms, 10_000, "must wait for the busy executor");
        assert_eq!(b.finished_ms, 20_000);
        let m = &c.apps()[1];
        assert_eq!(m.queue_ms(), 9_000);
        assert_eq!(m.latency_ms(), 19_000);
    }

    #[test]
    fn picks_least_loaded_executors() {
        let mut c = cluster(2);
        c.submit(0, 20_000.0, 1, AppKind::Query); // executor 0 busy to 20s
        let b = c.submit(0, 5_000.0, 1, AppKind::Query); // goes to executor 1
        assert_eq!(b.started_ms, 0);
        assert_eq!(b.finished_ms, 5_000);
    }

    #[test]
    fn gbhr_accounting_matches_formula() {
        let mut c = cluster(3);
        c.submit(0, MS_PER_HOUR as f64, 3, AppKind::Compaction);
        // One hour of 64GB executor work = 64 GBHr regardless of split.
        assert!((c.total_gbhr(AppKind::Compaction) - 64.0).abs() < 1e-9);
        assert!((c.mean_gbhr(AppKind::Compaction) - 64.0).abs() < 1e-9);
        assert_eq!(c.mean_gbhr(AppKind::Query), 0.0);
    }

    #[test]
    fn default_configs_match_paper_topology() {
        let q = ClusterConfig::query_default("q");
        let c = ClusterConfig::compaction_default("c");
        assert_eq!(q.executors, 15);
        assert_eq!(c.executors, 3);
        assert_eq!(q.executor_memory_gb, 64.0);
    }

    #[test]
    fn earliest_available_reflects_load() {
        let mut c = cluster(2);
        assert_eq!(c.earliest_available(5), 5);
        c.submit(0, 10_000.0, 2, AppKind::Write);
        assert_eq!(c.earliest_available(0), 5_000);
    }
}
