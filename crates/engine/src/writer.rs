//! Writer behaviour: how engines chunk bytes into files.
//!
//! §2 of the paper attributes small files to "engine configuration, degree
//! of parallelism, and memory constraints" on inserts, and §8 notes Spark's
//! AQE "may inadvertently choose an excessively small shuffle partition
//! size for final writes". [`FileSizePlan`] captures exactly that: a
//! (mis)configured writer's target output size and its spread.

use crate::rng::SimRng;
use lakesim_storage::{GB, KB, MB};

/// How a writer sizes its output files: log-normal around a median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileSizePlan {
    /// Median output file size in bytes.
    pub median_bytes: u64,
    /// Log-space sigma; 0 = all files the median size.
    pub sigma: f64,
}

impl FileSizePlan {
    /// A well-tuned writer producing ~512MB files (the ingestion pipeline
    /// of §2 / Fig. 1 "raw").
    pub fn well_tuned() -> Self {
        FileSizePlan {
            median_bytes: 512 * MB,
            sigma: 0.15,
        }
    }

    /// A misconfigured end-user job producing small files (Fig. 1
    /// "user-derived": high concentration below 128MB).
    pub fn misconfigured() -> Self {
        FileSizePlan {
            median_bytes: 16 * MB,
            sigma: 0.9,
        }
    }

    /// A trickle/CDC writer producing very small incremental files.
    pub fn trickle() -> Self {
        FileSizePlan {
            median_bytes: 4 * MB,
            sigma: 0.6,
        }
    }

    /// Samples one file size, clamped to `[64KB, 4GB]` so a single draw
    /// can neither vanish nor blow past any realistic output file.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let raw = rng.log_normal(self.median_bytes as f64, self.sigma);
        let min = 64.0 * KB as f64;
        let max = (4 * GB) as f64;
        raw.clamp(min, max) as u64
    }
}

/// Chunks `total_bytes` into file sizes according to the plan. The last
/// chunk absorbs the remainder, so bytes are conserved exactly.
pub fn chunk_bytes(total_bytes: u64, plan: &FileSizePlan, rng: &mut SimRng) -> Vec<u64> {
    if total_bytes == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut remaining = total_bytes;
    while remaining > 0 {
        let size = plan.sample(rng).min(remaining).max(1);
        // Avoid a dust-sized trailing file: fold remainders smaller than
        // 1/4 of the median into the previous chunk.
        if remaining - size > 0 && remaining - size < plan.median_bytes / 4 {
            out.push(remaining);
            remaining = 0;
        } else {
            out.push(size);
            remaining -= size;
        }
    }
    out
}

/// Splits `total_bytes` across `n_partitions` targets. `skew = 0` is an
/// even split; larger skews concentrate bytes on the first partitions
/// (recent partitions receive most writes in time-partitioned tables).
pub fn split_across_partitions(total_bytes: u64, n_partitions: usize, skew: f64) -> Vec<u64> {
    let n = n_partitions.max(1);
    if n == 1 {
        return vec![total_bytes];
    }
    // Geometric weights (1+skew)^-i, normalized; deterministic.
    let ratio = 1.0 / (1.0 + skew.max(0.0));
    let weights: Vec<f64> = (0..n).map(|i| ratio.powi(i as i32)).collect();
    let total_w: f64 = weights.iter().sum();
    let mut out: Vec<u64> = weights
        .iter()
        .map(|w| ((total_bytes as f64) * w / total_w) as u64)
        .collect();
    // Repair f64 rounding drift: push any remainder onto the first
    // partition, or shave any excess off the largest entries (totals above
    // 2^53 round when converted to f64).
    let assigned: u64 = out.iter().sum();
    if assigned <= total_bytes {
        out[0] += total_bytes - assigned;
    } else {
        let mut excess = assigned - total_bytes;
        for slot in out.iter_mut() {
            let take = excess.min(*slot);
            *slot -= take;
            excess -= take;
            if excess == 0 {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn presets_have_expected_magnitudes() {
        let mut rng = SimRng::seed_from_u64(3);
        let tuned: Vec<u64> = (0..200)
            .map(|_| FileSizePlan::well_tuned().sample(&mut rng))
            .collect();
        let trickle: Vec<u64> = (0..200)
            .map(|_| FileSizePlan::trickle().sample(&mut rng))
            .collect();
        let tuned_mean = tuned.iter().sum::<u64>() / 200;
        let trickle_mean = trickle.iter().sum::<u64>() / 200;
        assert!(tuned_mean > 300 * MB, "{tuned_mean}");
        assert!(trickle_mean < 16 * MB, "{trickle_mean}");
    }

    #[test]
    fn misconfigured_writers_produce_mostly_small_files() {
        let mut rng = SimRng::seed_from_u64(9);
        let plan = FileSizePlan::misconfigured();
        let small = (0..500)
            .filter(|_| plan.sample(&mut rng) < 128 * MB)
            .count();
        // Fig. 1: the vast majority of user-derived files are small.
        assert!(small > 450, "{small}/500 small");
    }

    #[test]
    fn split_is_even_without_skew_and_skewed_with() {
        let even = split_across_partitions(1000, 4, 0.0);
        assert_eq!(even.iter().sum::<u64>(), 1000);
        assert!(even.iter().all(|&b| b >= 249));
        let skewed = split_across_partitions(1000, 4, 1.0);
        assert_eq!(skewed.iter().sum::<u64>(), 1000);
        assert!(skewed[0] > skewed[1] && skewed[1] > skewed[2]);
    }

    proptest! {
        /// Chunking conserves bytes and produces no zero-sized files.
        #[test]
        fn chunking_conserves_bytes(total in 1u64..20_000_000_000u64, median_mb in 1u64..600) {
            let mut rng = SimRng::seed_from_u64(total ^ median_mb);
            let plan = FileSizePlan { median_bytes: median_mb * MB, sigma: 0.7 };
            let chunks = chunk_bytes(total, &plan, &mut rng);
            prop_assert_eq!(chunks.iter().sum::<u64>(), total);
            prop_assert!(chunks.iter().all(|&c| c > 0));
        }

        /// Partition splitting conserves bytes for any skew.
        #[test]
        fn splitting_conserves_bytes(total in 0u64..u64::MAX / 2, n in 1usize..50, skew in 0.0f64..4.0) {
            let parts = split_across_partitions(total, n, skew);
            prop_assert_eq!(parts.len(), n.max(1));
            prop_assert_eq!(parts.iter().sum::<u64>(), total);
        }
    }
}
