//! Engine-level metrics: latency samples, conflicts, commit events.
//!
//! These are the client/server-side statistics §6 collects: "On the client
//! side, we focus primarily on workload query execution times and the
//! number of errors observed during execution. On the server side, we
//! gather several compaction-related metrics."

use lakesim_lst::{OpKind, TableId};

/// Read-only vs. read-write classification (the two columns of Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Pure scan.
    ReadOnly,
    /// Query that commits a write.
    ReadWrite,
}

/// One completed query latency observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySample {
    /// Submission time.
    pub at_ms: u64,
    /// Query class.
    pub class: QueryClass,
    /// End-to-end latency (queueing + planning + execution + commit).
    pub latency_ms: f64,
    /// Table the query targeted.
    pub table: TableId,
}

/// Which side of the system observed a write-write conflict (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictSide {
    /// A user transaction aborted and retried ("client-side conflict").
    Client,
    /// A compaction job was dropped ("cluster-side conflict").
    Cluster,
}

/// One observed conflict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConflictEvent {
    /// When the conflicting commit was attempted.
    pub at_ms: u64,
    /// Table involved.
    pub table: TableId,
    /// Side that lost the race.
    pub side: ConflictSide,
}

/// Outcome of draining one pending commit.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitEvent {
    /// Commit (attempt) time.
    pub at_ms: u64,
    /// Table involved.
    pub table: TableId,
    /// Operation kind.
    pub op: OpKind,
    /// Whether the commit landed.
    pub succeeded: bool,
    /// Whether the failure (if any) was an optimistic-concurrency conflict.
    pub conflicted: bool,
    /// Maintenance job id for rewrites.
    pub job_id: Option<u64>,
}

/// Five-point summary used for the candlestick bars of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Candlestick {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub count: u64,
}

impl Candlestick {
    /// Builds the summary from unsorted samples; `None` when empty.
    pub fn from_samples(mut samples: Vec<f64>) -> Option<Candlestick> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        let q = |p: f64| -> f64 {
            let idx = (p * (samples.len() - 1) as f64).round() as usize;
            samples[idx]
        };
        Some(Candlestick {
            min: samples[0],
            p25: q(0.25),
            median: q(0.5),
            p75: q(0.75),
            max: *samples.last().expect("non-empty"),
            count: samples.len() as u64,
        })
    }
}

/// Aggregated engine metrics.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    /// All completed-query latency samples.
    pub latencies: Vec<LatencySample>,
    /// All observed conflicts.
    pub conflicts: Vec<ConflictEvent>,
    /// Write queries submitted, with submission time (Table 1's
    /// "# Write Queries" column).
    pub write_queries: Vec<(u64, TableId)>,
    /// Writes that failed on namespace quota (§7 user pain point).
    pub quota_failures: u64,
    /// NameNode read timeouts observed by queries.
    pub read_timeouts: u64,
}

impl EngineMetrics {
    /// Latency candlestick over `[from_ms, to_ms)` for one query class.
    pub fn candlestick(&self, from_ms: u64, to_ms: u64, class: QueryClass) -> Option<Candlestick> {
        let samples: Vec<f64> = self
            .latencies
            .iter()
            .filter(|s| s.class == class && s.at_ms >= from_ms && s.at_ms < to_ms)
            .map(|s| s.latency_ms)
            .collect();
        Candlestick::from_samples(samples)
    }

    /// Conflicts on one side within `[from_ms, to_ms)`.
    pub fn conflicts_in(&self, from_ms: u64, to_ms: u64, side: ConflictSide) -> u64 {
        self.conflicts
            .iter()
            .filter(|c| c.side == side && c.at_ms >= from_ms && c.at_ms < to_ms)
            .count() as u64
    }

    /// Write queries submitted within `[from_ms, to_ms)`.
    pub fn write_queries_in(&self, from_ms: u64, to_ms: u64) -> u64 {
        self.write_queries
            .iter()
            .filter(|(t, _)| *t >= from_ms && *t < to_ms)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candlestick_orders_quantiles() {
        let c = Candlestick::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(c.min, 1.0);
        assert_eq!(c.p25, 2.0);
        assert_eq!(c.median, 3.0);
        assert_eq!(c.p75, 4.0);
        assert_eq!(c.max, 5.0);
        assert_eq!(c.count, 5);
        assert!(Candlestick::from_samples(vec![]).is_none());
    }

    #[test]
    fn windowed_queries() {
        let mut m = EngineMetrics::default();
        m.latencies.push(LatencySample {
            at_ms: 100,
            class: QueryClass::ReadOnly,
            latency_ms: 10.0,
            table: TableId(1),
        });
        m.latencies.push(LatencySample {
            at_ms: 200,
            class: QueryClass::ReadWrite,
            latency_ms: 20.0,
            table: TableId(1),
        });
        m.conflicts.push(ConflictEvent {
            at_ms: 150,
            table: TableId(1),
            side: ConflictSide::Client,
        });
        m.write_queries.push((200, TableId(1)));
        assert_eq!(
            m.candlestick(0, 300, QueryClass::ReadOnly).unwrap().count,
            1
        );
        assert!(m.candlestick(0, 50, QueryClass::ReadOnly).is_none());
        assert_eq!(m.conflicts_in(0, 300, ConflictSide::Client), 1);
        assert_eq!(m.conflicts_in(0, 300, ConflictSide::Cluster), 0);
        assert_eq!(m.write_queries_in(0, 300), 1);
        assert_eq!(m.write_queries_in(250, 300), 0);
    }
}
