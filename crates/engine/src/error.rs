//! Engine error type, aggregating substrate errors.

use std::fmt;

use lakesim_catalog::CatalogError;
use lakesim_lst::CommitError;
use lakesim_storage::StorageError;

/// Errors surfaced by engine operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Storage-layer failure (quota, timeout, missing file).
    Storage(StorageError),
    /// Catalog failure (unknown table/database).
    Catalog(CatalogError),
    /// Commit failed terminally (retries exhausted or non-retryable).
    Commit(CommitError),
    /// The named cluster is not registered in the environment.
    UnknownCluster(String),
    /// A write produced no files (zero bytes requested).
    EmptyWrite,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Catalog(e) => write!(f, "catalog: {e}"),
            EngineError::Commit(e) => write!(f, "commit: {e}"),
            EngineError::UnknownCluster(name) => write!(f, "unknown cluster '{name}'"),
            EngineError::EmptyWrite => write!(f, "write specifies zero bytes"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<CatalogError> for EngineError {
    fn from(e: CatalogError) -> Self {
        EngineError::Catalog(e)
    }
}

impl From<CommitError> for EngineError {
    fn from(e: CommitError) -> Self {
        EngineError::Commit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakesim_lst::TableId;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = CatalogError::TableNotFound(TableId(3)).into();
        assert!(e.to_string().contains("table#3"));
        let e: EngineError = StorageError::EmptyFile.into();
        assert!(e.to_string().starts_with("storage:"));
        assert_eq!(
            EngineError::UnknownCluster("c".into()).to_string(),
            "unknown cluster 'c'"
        );
    }
}
