//! Query and write specifications plus result types.

use crate::metrics::QueryClass;
pub use crate::writer::FileSizePlan;
use lakesim_lst::{PartitionFilter, PartitionKey, TableId};

/// A read query against one table.
#[derive(Debug, Clone)]
pub struct ReadSpec {
    /// Target table.
    pub table: TableId,
    /// Partition predicate.
    pub filter: PartitionFilter,
    /// Cluster to run on.
    pub cluster: String,
    /// Maximum executor parallelism for the scan.
    pub parallelism: usize,
}

/// The write operation a query performs, mapping to the §2 causes of
/// small-file creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// Bulk or incremental insert (appends new files).
    Insert,
    /// Merge-on-Read update/delete: appends small delete files that
    /// accumulate as MoR debt.
    MergeOnReadDelta,
    /// Copy-on-Write overwrite: replaces the target partitions' files.
    CopyOnWriteOverwrite,
}

/// A write query against one table.
#[derive(Debug, Clone)]
pub struct WriteSpec {
    /// Target table.
    pub table: TableId,
    /// Operation semantics.
    pub op: WriteOp,
    /// Target partitions (use `[PartitionKey::unpartitioned()]` for
    /// unpartitioned tables).
    pub partitions: Vec<PartitionKey>,
    /// Total data bytes written.
    pub total_bytes: u64,
    /// How the writer chunks bytes into files — the small-file knob.
    pub file_size: FileSizePlan,
    /// Byte skew towards the first listed partition (0 = even).
    pub partition_skew: f64,
    /// Cluster to run on.
    pub cluster: String,
    /// Maximum executor parallelism.
    pub parallelism: usize,
}

impl WriteSpec {
    /// Convenience constructor for a single-partition insert.
    pub fn insert(
        table: TableId,
        partition: PartitionKey,
        total_bytes: u64,
        file_size: FileSizePlan,
        cluster: impl Into<String>,
    ) -> Self {
        WriteSpec {
            table,
            op: WriteOp::Insert,
            partitions: vec![partition],
            total_bytes,
            file_size,
            partition_skew: 0.0,
            cluster: cluster.into(),
            parallelism: 4,
        }
    }
}

/// Completed (read) or scheduled (write) query outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Submission time.
    pub submitted_ms: u64,
    /// Completion time. For writes this is the *scheduled* commit time;
    /// conflicts discovered at drain time may push the real completion
    /// later (retries) — the final figure lands in the latency metrics.
    pub finished_ms: u64,
    /// End-to-end latency in ms (as of scheduling, see `finished_ms`).
    pub latency_ms: f64,
    /// Data files scanned (reads).
    pub files_scanned: u64,
    /// Bytes scanned (reads).
    pub bytes_scanned: u64,
    /// Driver planning time (reads).
    pub planning_ms: f64,
    /// NameNode read timeouts absorbed (each adds retry latency).
    pub read_timeouts: u64,
    /// Files written (writes).
    pub files_written: u64,
    /// Query class.
    pub class: QueryClass,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakesim_storage::MB;

    #[test]
    fn insert_constructor_defaults() {
        let spec = WriteSpec::insert(
            TableId(1),
            PartitionKey::unpartitioned(),
            100 * MB,
            FileSizePlan::trickle(),
            "main",
        );
        assert_eq!(spec.op, WriteOp::Insert);
        assert_eq!(spec.partitions.len(), 1);
        assert_eq!(spec.cluster, "main");
        assert!(spec.parallelism > 0);
    }
}
