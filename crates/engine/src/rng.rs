//! Self-contained deterministic RNG: xoshiro256\*\* seeded via SplitMix64.
//!
//! The simulator deliberately does not depend on the `rand` crate for its
//! core randomness: the paper's NFR2 requires bit-identical decisions under
//! identical inputs, and pinning the generator in-tree guarantees streams
//! never shift under dependency upgrades (see DESIGN.md, Substitutions).
//! `proptest` still drives randomized *testing* at the workspace level.

/// Deterministic pseudo-random number generator (xoshiro256\*\*).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Multiply-shift bounded sampling; bias is negligible for the
        // simulator's ranges (< 2^53).
        lo + (self.next_f64() * (hi - lo) as f64) as u64
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard-normal draw via Box–Muller (cached pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 1e-12 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Log-normal draw parameterized by the *median* and the log-space
    /// sigma: `exp(ln(median) + sigma·Z)`. Medians parameterize file-size
    /// models intuitively (half the files smaller, half larger).
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        (median.max(1e-9).ln() + sigma * self.normal()).exp()
    }

    /// Poisson draw (Knuth's algorithm; intended for small λ such as
    /// per-minute arrival counts).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
            // Guard pathological λ misuse.
            if k > 10_000_000 {
                return k;
            }
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Derives an independent child generator; used to give each table /
    /// stream its own stream so insertion order does not perturb others.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let z = r.normal();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn log_normal_median_is_close() {
        let mut r = SimRng::seed_from_u64(13);
        let mut samples: Vec<f64> = (0..4001).map(|_| r.log_normal(64.0, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[2000];
        assert!(median > 50.0 && median < 80.0, "median {median}");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut r = SimRng::seed_from_u64(17);
        let n = 5000;
        let total: u64 = (0..n).map(|_| r.poisson(3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_and_choice_are_deterministic() {
        let mut a = SimRng::seed_from_u64(5);
        let mut b = SimRng::seed_from_u64(5);
        let mut va: Vec<u32> = (0..20).collect();
        let mut vb: Vec<u32> = (0..20).collect();
        a.shuffle(&mut va);
        b.shuffle(&mut vb);
        assert_eq!(va, vb);
        assert_eq!(a.choice(&va), b.choice(&vb));
    }

    #[test]
    fn forked_streams_diverge_but_are_reproducible() {
        let mut a = SimRng::seed_from_u64(1);
        let mut fork1 = a.fork();
        let mut a2 = SimRng::seed_from_u64(1);
        let mut fork2 = a2.fork();
        assert_eq!(fork1.next_u64(), fork2.next_u64());
        assert_ne!(fork1.next_u64(), a.next_u64());
    }
}
