//! Compaction-job execution (the act phase's engine side) and snapshot
//! expiry maintenance.

use crate::cluster::AppKind;
use crate::env::SimEnv;
use crate::pending::{PendingCommit, PendingKind};
use crate::Result;
use lakesim_lst::{
    synthesize_outputs, DataFile, ExpireResult, OpKind, RewritePlan, TableId, Transaction,
};
use lakesim_storage::{FileId, FileKind};

/// Options for submitting one rewrite job.
#[derive(Debug, Clone)]
pub struct RewriteOptions {
    /// Cluster to run the job on. The paper offloads compaction to a
    /// dedicated cluster "to minimize the impact on user performance"
    /// (§4.4); pass the query cluster's name to model co-located runs.
    pub cluster: String,
    /// Executor parallelism for the job.
    pub parallelism: usize,
    /// What triggered the job (for the maintenance log).
    pub trigger: String,
    /// Decide-phase predicted file-count reduction; recorded so the
    /// feedback loop can compare against actuals (§7).
    pub predicted_reduction: i64,
    /// Decide-phase predicted cost (GBHr).
    pub predicted_gbhr: f64,
}

impl RewriteOptions {
    /// Options for a manually triggered job on the given cluster, with
    /// predictions derived from the plan itself.
    pub fn manual(cluster: impl Into<String>, plan: &RewritePlan, predicted_gbhr: f64) -> Self {
        RewriteOptions {
            cluster: cluster.into(),
            parallelism: 3,
            trigger: "manual".to_string(),
            predicted_reduction: plan.expected_reduction(),
            predicted_gbhr,
        }
    }
}

/// Description of a scheduled rewrite job.
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteJobOutcome {
    /// Maintenance job id.
    pub job_id: u64,
    /// Submission time.
    pub scheduled_at_ms: u64,
    /// When the job's commit becomes due.
    pub commit_due_ms: u64,
    /// GBHr the job consumes (spent even if it later conflicts).
    pub gbhr: f64,
    /// Input files (data + delete) to be replaced.
    pub input_files: u64,
    /// Output files to be produced.
    pub output_files: u64,
    /// Input bytes rewritten.
    pub input_bytes: u64,
}

impl SimEnv {
    /// Submits a rewrite job for one candidate plan at `now_ms`.
    ///
    /// The job's transaction begins immediately (base snapshot captured —
    /// the start of its conflict-vulnerability window) and commits when
    /// the compaction cluster finishes the work; [`SimEnv::drain_due`]
    /// resolves it. Returns `None` for empty plans.
    pub fn submit_rewrite(
        &mut self,
        plan: &RewritePlan,
        opts: &RewriteOptions,
        now_ms: u64,
    ) -> Result<Option<RewriteJobOutcome>> {
        self.clock.advance_to(now_ms);
        // The rewrite's base snapshot must reflect every commit completed
        // by `now` — without this, sequentially scheduled waves would read
        // stale bases and self-conflict (§4.4's workaround would be moot).
        let _ = self.drain_due(now_ms);
        if plan.is_empty() {
            return Ok(None);
        }
        let table_id = plan.table;
        let (database, row_width, target_size, base) = {
            let entry = self.catalog.table(table_id)?;
            (
                entry.table.database().to_string(),
                entry.table.schema().estimated_row_width(),
                entry.table.properties().target_file_size,
                entry.table.current_snapshot_id(),
            )
        };

        let mut txn = Transaction::new(base, OpKind::RewriteFiles);
        let mut outputs: Vec<FileId> = Vec::new();
        let mut inputs_to_delete: Vec<FileId> = Vec::new();
        let mut input_files = 0u64;
        let mut output_files = 0u64;
        let congestion = self.fs.congestion_factor();
        let mut work_ms = 0.0;
        for group in &plan.groups {
            for id in group.inputs.iter().chain(group.delete_inputs.iter()) {
                txn.remove_file(*id);
                inputs_to_delete.push(*id);
                input_files += 1;
            }
            let sizes = synthesize_outputs(group.input_bytes, target_size);
            for size in sizes {
                let created = self.fs.create_file(&database, FileKind::Data, size, now_ms);
                let id = match created {
                    Ok(id) => id,
                    Err(e) => {
                        self.metrics.quota_failures += 1;
                        self.cleanup_rewrite_orphans(&outputs, now_ms);
                        return Err(e.into());
                    }
                };
                outputs.push(id);
                output_files += 1;
                let rows = (size / row_width).max(1);
                txn.add_file(DataFile::data(id, group.partition.clone(), rows, size));
            }
            work_ms += self.cost().rewrite_work_ms(
                group.input_bytes,
                (group.inputs.len() + group.delete_inputs.len()) as u64,
                output_files,
                congestion,
            ) + self.cost().task_startup_ms;
        }

        let parallelism = opts.parallelism.max(1);
        let outcome = self.cluster_mut(&opts.cluster)?.submit(
            now_ms,
            work_ms,
            parallelism,
            AppKind::Compaction,
        );
        let commit_due = outcome.finished_ms + self.cost().commit_ms;
        let job_id = self.maintenance.next_job_id();
        let scope = if plan.groups.len() == 1 && !plan.groups[0].partition.is_unpartitioned() {
            format!("partition {}", plan.groups[0].partition)
        } else {
            "table".to_string()
        };
        let input_bytes = plan.input_bytes();
        self.enqueue(
            commit_due,
            PendingCommit {
                table: table_id,
                txn,
                kind: PendingKind::Rewrite {
                    job_id,
                    scope,
                    trigger: opts.trigger.clone(),
                    kind: lakesim_catalog::RewriteKind::Merge,
                    predicted_reduction: opts.predicted_reduction,
                    predicted_gbhr: opts.predicted_gbhr,
                },
                written_files: outputs,
                inputs_to_delete,
                submitted_ms: now_ms,
                gbhr: outcome.gbhr,
            },
        );
        Ok(Some(RewriteJobOutcome {
            job_id,
            scheduled_at_ms: now_ms,
            commit_due_ms: commit_due,
            gbhr: outcome.gbhr,
            input_files,
            output_files,
            input_bytes,
        }))
    }

    /// Runs snapshot expiry for a table according to its policy, deleting
    /// the reclaimed metadata objects from storage. No-op when the policy
    /// has no retention configured.
    pub fn run_snapshot_expiry(&mut self, table: TableId, now_ms: u64) -> Result<ExpireResult> {
        let retention = {
            let entry = self.catalog.table(table)?;
            entry.policy.snapshot_retention_ms
        };
        let Some(retention) = retention else {
            return Ok(ExpireResult::default());
        };
        let older_than = now_ms.saturating_sub(retention);
        let result = {
            let entry = self.catalog.table_mut(table)?;
            entry.table.expire_snapshots(older_than)
        };
        let to_delete = self.take_oldest_metadata(table, result.metadata_objects_freed);
        for id in to_delete {
            let _ = self.fs.delete_file(id, now_ms);
        }
        Ok(result)
    }

    fn cleanup_rewrite_orphans(&mut self, files: &[FileId], now_ms: u64) {
        for id in files {
            let _ = self.fs.delete_file(*id, now_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;
    use crate::query::{FileSizePlan, WriteSpec};
    use crate::SimRng;
    use lakesim_catalog::{JobStatus, TablePolicy};
    use lakesim_lst::{
        plan_table_rewrite, BinPackConfig, ColumnType, ConflictMode, Field, PartitionKey,
        PartitionSpec, Schema, TableProperties,
    };
    use lakesim_storage::MB;

    fn setup(conflict_mode: ConflictMode) -> (SimEnv, TableId) {
        let mut env = SimEnv::new(EnvConfig {
            seed: 5,
            cost: crate::CostModel {
                // Zero write-coordination overhead: these tests reason
                // about exact commit-window overlaps.
                write_job_overhead_ms: 0,
                ..crate::CostModel::default()
            },
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", None).unwrap();
        let schema = Schema::new(vec![Field::new(1, "k", ColumnType::Int64, true)]).unwrap();
        let t = env
            .create_table(
                "db",
                "t",
                schema,
                PartitionSpec::unpartitioned(),
                TableProperties {
                    conflict_mode,
                    ..TableProperties::default()
                },
                TablePolicy::default(),
            )
            .unwrap();
        let spec = WriteSpec::insert(
            t,
            PartitionKey::unpartitioned(),
            512 * MB,
            FileSizePlan::trickle(),
            "query",
        );
        env.submit_write(&spec, 0).unwrap();
        env.drain_all();
        (env, t)
    }

    fn bin_pack() -> BinPackConfig {
        BinPackConfig::default()
    }

    #[test]
    fn successful_rewrite_reduces_file_count() {
        let (mut env, t) = setup(ConflictMode::Strict);
        let before = env.catalog.table(t).unwrap().table.file_count();
        let plan = plan_table_rewrite(&env.catalog.table(t).unwrap().table, &bin_pack());
        assert!(!plan.is_empty());
        let expected = plan.expected_reduction();
        let opts = RewriteOptions::manual("compaction", &plan, 1.0);
        let job = env
            .submit_rewrite(&plan, &opts, 1_000_000)
            .unwrap()
            .unwrap();
        env.drain_due(job.commit_due_ms);
        let after = env.catalog.table(t).unwrap().table.file_count();
        assert_eq!(before as i64 - after as i64, expected);
        assert_eq!(env.maintenance.count(JobStatus::Succeeded), 1);
        let rec = &env.maintenance.records()[0];
        assert_eq!(rec.actual_reduction, expected);
        assert!(rec.actual_gbhr > 0.0);
        // Replaced inputs physically deleted; outputs live.
        assert_eq!(
            env.fs.total_files_of_kind(lakesim_storage::FileKind::Data),
            after
        );
    }

    #[test]
    fn concurrent_write_kills_strict_rewrite() {
        let (mut env, t) = setup(ConflictMode::Strict);
        let plan = plan_table_rewrite(&env.catalog.table(t).unwrap().table, &bin_pack());
        let opts = RewriteOptions::manual("compaction", &plan, 1.0);
        let job = env
            .submit_rewrite(&plan, &opts, 1_000_000)
            .unwrap()
            .unwrap();
        // A user append commits while the rewrite is running.
        let spec = WriteSpec::insert(
            t,
            PartitionKey::unpartitioned(),
            8 * MB,
            FileSizePlan::trickle(),
            "query",
        );
        let w = env.submit_write(&spec, 1_000_100).unwrap();
        assert!(
            w.finished_ms < job.commit_due_ms,
            "user write must land inside the rewrite window"
        );
        let data_before_drain = env.fs.total_files_of_kind(lakesim_storage::FileKind::Data);
        env.drain_due(job.commit_due_ms);
        assert_eq!(env.maintenance.count(JobStatus::Conflicted), 1);
        assert_eq!(
            env.metrics
                .conflicts_in(0, u64::MAX, crate::ConflictSide::Cluster),
            1
        );
        // Orphan outputs cleaned up; the rewrite's inputs stay live.
        assert_eq!(
            env.fs.total_files_of_kind(lakesim_storage::FileKind::Data),
            data_before_drain - job.output_files
        );
    }

    #[test]
    fn partition_aware_rewrite_survives_disjoint_write() {
        // Partitioned table: write to partition B while compacting A.
        let mut env = SimEnv::new(EnvConfig {
            seed: 6,
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", None).unwrap();
        let schema = Schema::new(vec![
            Field::new(1, "k", ColumnType::Int64, true),
            Field::new(2, "ds", ColumnType::Date, true),
        ])
        .unwrap();
        let t = env
            .create_table(
                "db",
                "t",
                schema,
                PartitionSpec::single(2, lakesim_lst::Transform::Month, "m"),
                TableProperties {
                    conflict_mode: ConflictMode::PartitionAware,
                    ..TableProperties::default()
                },
                TablePolicy::default(),
            )
            .unwrap();
        let pa = PartitionKey::single(lakesim_lst::PartitionValue::Date(1));
        let pb = PartitionKey::single(lakesim_lst::PartitionValue::Date(2));
        let spec = WriteSpec::insert(t, pa.clone(), 256 * MB, FileSizePlan::trickle(), "query");
        env.submit_write(&spec, 0).unwrap();
        env.drain_all();

        let plan = lakesim_lst::plan_partition_rewrite(
            &env.catalog.table(t).unwrap().table,
            &pa,
            &bin_pack(),
        );
        let opts = RewriteOptions::manual("compaction", &plan, 1.0);
        let job = env
            .submit_rewrite(&plan, &opts, 1_000_000)
            .unwrap()
            .unwrap();
        let spec_b = WriteSpec::insert(t, pb, 8 * MB, FileSizePlan::trickle(), "query");
        env.submit_write(&spec_b, 1_000_100).unwrap();
        env.drain_due(job.commit_due_ms.max(2_000_000));
        assert_eq!(env.maintenance.count(JobStatus::Succeeded), 1);
        assert_eq!(env.maintenance.count(JobStatus::Conflicted), 0);
    }

    #[test]
    fn expiry_reclaims_metadata_objects() {
        let (mut env, t) = setup(ConflictMode::Strict);
        // Several commits → several metadata objects.
        for i in 1..5 {
            let spec = WriteSpec::insert(
                t,
                PartitionKey::unpartitioned(),
                8 * MB,
                FileSizePlan::trickle(),
                "query",
            );
            env.submit_write(&spec, i * 100_000).unwrap();
        }
        env.drain_all();
        let meta_before = env
            .fs
            .total_files_of_kind(lakesim_storage::FileKind::Metadata);
        // Policy retention is 3 days; jump far ahead so everything expires.
        let res = env.run_snapshot_expiry(t, 10 * 24 * 3_600_000).unwrap();
        assert!(res.snapshots_removed > 0);
        let meta_after = env
            .fs
            .total_files_of_kind(lakesim_storage::FileKind::Metadata);
        assert_eq!(
            meta_before - meta_after,
            res.metadata_objects_freed.min(meta_before)
        );
    }

    #[test]
    fn empty_plan_is_a_noop() {
        let (mut env, t) = setup(ConflictMode::Strict);
        let plan = RewritePlan {
            table: t,
            groups: vec![],
        };
        let opts = RewriteOptions::manual("compaction", &plan, 0.0);
        assert!(env.submit_rewrite(&plan, &opts, 0).unwrap().is_none());
        let _ = SimRng::seed_from_u64(0); // keep import used in cfg(test)
    }
}
