//! Simulated wall clock and time constants.

/// Milliseconds per second.
pub const MS_PER_SEC: u64 = 1_000;
/// Milliseconds per minute.
pub const MS_PER_MIN: u64 = 60 * MS_PER_SEC;
/// Milliseconds per hour.
pub const MS_PER_HOUR: u64 = 60 * MS_PER_MIN;
/// Milliseconds per day.
pub const MS_PER_DAY: u64 = 24 * MS_PER_HOUR;

/// A monotonically advancing simulated clock.
///
/// The experiment driver owns time: it advances the clock and passes
/// explicit `now` values into engine calls. The clock only enforces
/// monotonicity, which keeps every component's view of time consistent
/// (paper NFR2: deterministic, explainable behaviour).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    now_ms: u64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in milliseconds.
    pub fn now(&self) -> u64 {
        self.now_ms
    }

    /// Advances the clock by `delta_ms`.
    pub fn advance(&mut self, delta_ms: u64) {
        self.now_ms += delta_ms;
    }

    /// Moves the clock forward to `t_ms`; never moves backwards.
    pub fn advance_to(&mut self, t_ms: u64) {
        if t_ms > self.now_ms {
            self.now_ms = t_ms;
        }
    }

    /// Current time expressed in fractional hours.
    pub fn hours(&self) -> f64 {
        self.now_ms as f64 / MS_PER_HOUR as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = SimClock::new();
        c.advance(500);
        c.advance_to(300); // ignored: would move backwards
        assert_eq!(c.now(), 500);
        c.advance_to(2 * MS_PER_HOUR);
        assert_eq!(c.now(), 2 * MS_PER_HOUR);
        assert!((c.hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn constants_compose() {
        assert_eq!(MS_PER_DAY, 24 * 60 * 60 * 1000);
        assert_eq!(MS_PER_HOUR, 3_600_000);
    }
}
