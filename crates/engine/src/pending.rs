//! Deferred commits: the mechanism that makes optimistic-concurrency
//! races observable in a single-threaded simulation.
//!
//! A transaction *begins* when its job is submitted (capturing a base
//! snapshot) and *commits* at the job's computed completion time. Between
//! those two instants other commits may land; applying pending commits in
//! completion order (see [`crate::SimEnv::drain_due`]) therefore produces
//! exactly the conflict behaviour of a real optimistic protocol — long
//! jobs have wide vulnerability windows (table-scope compaction in
//! Table 1), short jobs narrow ones (partition-scope, zero cluster-side
//! conflicts).

use crate::query::WriteOp;
use lakesim_lst::{PartitionKey, TableId, Transaction};
use lakesim_storage::FileId;

/// Discriminates user writes from compaction rewrites in the pending
/// queue; they differ in retry policy and failure accounting.
#[derive(Debug, Clone)]
pub enum PendingKind {
    /// A user write: retried on conflict (client-side conflict), counted
    /// against `max_retries`.
    UserWrite {
        /// The original operation (needed to re-plan overwrites on retry).
        op: WriteOp,
        /// Target partitions (for overwrite re-planning).
        partitions: Vec<PartitionKey>,
        /// Retries remaining.
        retries_left: u32,
    },
    /// A compaction rewrite: dropped on conflict (cluster-side conflict),
    /// its outputs deleted as orphans.
    Rewrite {
        /// Maintenance job id.
        job_id: u64,
        /// Human-readable scope for the maintenance log.
        scope: String,
        /// What triggered the job.
        trigger: String,
        /// The transformation the rewrite embeds.
        kind: lakesim_catalog::RewriteKind,
        /// Decide-phase predicted file-count reduction.
        predicted_reduction: i64,
        /// Decide-phase predicted cost (GBHr).
        predicted_gbhr: f64,
    },
}

/// A commit waiting for its due time.
#[derive(Debug, Clone)]
pub struct PendingCommit {
    /// Table the transaction targets.
    pub table: TableId,
    /// The staged transaction (cloned per attempt so retries can rebase).
    pub txn: Transaction,
    /// Commit kind and its retry policy.
    pub kind: PendingKind,
    /// Physical files already written to storage for this commit; deleted
    /// as orphans if the commit is abandoned.
    pub written_files: Vec<FileId>,
    /// Physical input files a rewrite will delete on success.
    pub inputs_to_delete: Vec<FileId>,
    /// Original submission time (for end-to-end latency accounting).
    pub submitted_ms: u64,
    /// GBHr consumed by the producing job (spent even if the commit is
    /// dropped — the paper counts wasted compaction resources, §2).
    pub gbhr: f64,
}

/// Heap entry ordering pending commits by `(due_ms, seq)`.
///
/// `seq` breaks ties deterministically in submission order (NFR2).
#[derive(Debug, Clone)]
pub struct PendingEntry {
    /// When the commit is due.
    pub due_ms: u64,
    /// Tie-breaking sequence number.
    pub seq: u64,
    /// The commit itself.
    pub commit: PendingCommit,
}

impl PartialEq for PendingEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due_ms == other.due_ms && self.seq == other.seq
    }
}

impl Eq for PendingEntry {}

impl PartialOrd for PendingEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due_ms, self.seq).cmp(&(other.due_ms, other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakesim_lst::OpKind;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn entry(due: u64, seq: u64) -> PendingEntry {
        PendingEntry {
            due_ms: due,
            seq,
            commit: PendingCommit {
                table: TableId(1),
                txn: Transaction::new(None, OpKind::Append),
                kind: PendingKind::UserWrite {
                    op: WriteOp::Insert,
                    partitions: vec![],
                    retries_left: 1,
                },
                written_files: vec![],
                inputs_to_delete: vec![],
                submitted_ms: 0,
                gbhr: 0.0,
            },
        }
    }

    #[test]
    fn heap_pops_in_due_then_seq_order() {
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(entry(200, 1)));
        heap.push(Reverse(entry(100, 3)));
        heap.push(Reverse(entry(100, 2)));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| (e.due_ms, e.seq))
            .collect();
        assert_eq!(order, vec![(100, 2), (100, 3), (200, 1)]);
    }
}
