//! The engine cost model.
//!
//! Latency and resource figures in the paper's evaluation derive from a
//! handful of physical drivers; this module makes each explicit:
//!
//! * **per-file open overhead** — the core small-file penalty. Each data
//!   file adds fixed work (NameNode RPC, footer read, decoder setup),
//!   multiplied by the storage congestion factor.
//! * **per-byte scan/write work** — bandwidth-bound processing.
//! * **manifest planning overhead** — metadata bloat slows planning
//!   ("causing metadata size to grow and increasing the time required for
//!   query processing", §1).
//! * **task startup** — FR1's caveat: "we must remain aware of the
//!   start-up cost of instantiating more compaction tasks".
//! * **GBHr estimation** — the paper's §4.2 compute-cost trait:
//!   `GBHr_c = ExecutorMemoryGB × DataSize_c / RewriteBytesPerHour`.

use lakesim_lst::ScanPlan;
use lakesim_storage::GB;

/// Tunable cost-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed driver-side planning cost per manifest opened (ms).
    pub per_manifest_open_ms: f64,
    /// Driver-side planning cost per manifest entry (ms).
    pub per_manifest_entry_ms: f64,
    /// Executor work per data file opened (ms), before congestion.
    pub per_file_open_ms: f64,
    /// Executor work per GB scanned (ms).
    pub per_gb_scan_ms: f64,
    /// Executor work per GB written (ms).
    pub per_gb_write_ms: f64,
    /// Extra read work per delete file that must be merged (ms).
    pub per_delete_file_ms: f64,
    /// Fixed startup cost per submitted task (ms).
    pub task_startup_ms: f64,
    /// Commit round-trip latency (ms).
    pub commit_ms: u64,
    /// Driver-side coordination overhead of a write job (app spin-up,
    /// shuffle planning, commit protocol) added to its end-to-end window.
    /// Real Spark writes run minutes even for modest data; this is what
    /// makes concurrent writes' optimistic windows overlap (Table 1).
    pub write_job_overhead_ms: u64,
    /// Backoff before a conflicted client retries (ms).
    pub retry_backoff_ms: u64,
    /// Penalty added per NameNode read timeout (client retry latency, ms).
    pub timeout_retry_ms: f64,
    /// Maximum client-side retries before a write fails permanently.
    pub max_retries: u32,
    /// Throughput assumed by the §4.2 GBHr estimator (bytes/hour).
    pub rewrite_bytes_per_hour: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_manifest_open_ms: 5.0,
            per_manifest_entry_ms: 0.05,
            // Per-file fixed work: NameNode RPC + footer read + decoder +
            // task scheduling. Small files pay this per task and it does
            // not amortize — the paper's core penalty.
            per_file_open_ms: 110.0,
            per_gb_scan_ms: 3_000.0,
            per_gb_write_ms: 6_000.0,
            per_delete_file_ms: 300.0,
            task_startup_ms: 800.0,
            commit_ms: 500,
            write_job_overhead_ms: 60_000,
            retry_backoff_ms: 5_000,
            timeout_retry_ms: 2_000.0,
            max_retries: 3,
            // The estimator's assumed throughput. Actual jobs achieve
            // ~400GB/h of pure byte work minus per-file overheads, so this
            // slightly optimistic figure under-estimates cost by ~15-25%
            // — the direction and magnitude §7 reports (−19%).
            rewrite_bytes_per_hour: 500 * GB,
        }
    }
}

impl CostModel {
    /// Driver-side planning time for a scan (ms).
    pub fn planning_ms(&self, plan: &ScanPlan) -> f64 {
        self.per_manifest_open_ms * plan.manifests_opened as f64
            + self.per_manifest_entry_ms * plan.manifest_entries as f64
    }

    /// Total executor work to execute a scan (ms of single-executor time),
    /// given the storage congestion factor at plan time.
    pub fn scan_work_ms(&self, plan: &ScanPlan, congestion: f64) -> f64 {
        let opens = self.per_file_open_ms * congestion * plan.file_count() as f64;
        let deletes = self.per_delete_file_ms * congestion * plan.delete_files as f64;
        let bytes = self.per_gb_scan_ms * (plan.bytes as f64 / GB as f64);
        opens + deletes + bytes
    }

    /// Total executor work to write `bytes` across `files` files (ms).
    pub fn write_work_ms(&self, bytes: u64, files: u64, congestion: f64) -> f64 {
        self.per_gb_write_ms * (bytes as f64 / GB as f64)
            + self.per_file_open_ms * congestion * files as f64
    }

    /// Total executor work for a rewrite that reads `input_bytes` over
    /// `input_files` files and writes the same bytes into `output_files`.
    pub fn rewrite_work_ms(
        &self,
        input_bytes: u64,
        input_files: u64,
        output_files: u64,
        congestion: f64,
    ) -> f64 {
        let read = self.per_gb_scan_ms * (input_bytes as f64 / GB as f64)
            + self.per_file_open_ms * congestion * input_files as f64;
        let write = self.per_gb_write_ms * (input_bytes as f64 / GB as f64)
            + self.per_file_open_ms * congestion * output_files as f64;
        read + write
    }

    /// The paper's compute-cost estimator (§4.2):
    /// `GBHr = ExecutorMemoryGB × (DataSize / RewriteBytesPerHour)`.
    pub fn estimate_gbhr(&self, executor_memory_gb: f64, data_size_bytes: u64) -> f64 {
        executor_memory_gb * (data_size_bytes as f64 / self.rewrite_bytes_per_hour as f64)
    }
}

/// Reference workload sanity anchor used in tests: scanning 1GB in one
/// 512MB-target file layout must be much cheaper than in a 4MB-file layout.
pub fn small_file_penalty_example(model: &CostModel) -> (f64, f64) {
    use lakesim_lst::PartitionFilter;
    let _ = PartitionFilter::All; // anchor the import for doc purposes
    let compact_files = 2.0; // 2 × 512MB
    let fragmented_files = 256.0; // 256 × 4MB
    let per_byte = model.per_gb_scan_ms;
    let compact = per_byte + model.per_file_open_ms * compact_files;
    let fragmented = per_byte + model.per_file_open_ms * fragmented_files;
    (compact, fragmented)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakesim_lst::ScanPlan;

    fn plan(files: usize, bytes: u64, manifests: u64, entries: u64) -> ScanPlan {
        use lakesim_lst::{DataFile, PartitionKey};
        use lakesim_storage::FileId;
        let per = if files > 0 { bytes / files as u64 } else { 0 };
        ScanPlan {
            files: (0..files)
                .map(|i| {
                    DataFile::data(
                        FileId(i as u64 + 1),
                        PartitionKey::unpartitioned(),
                        1,
                        per.max(1),
                    )
                })
                .collect(),
            delete_files: 0,
            bytes,
            manifests_opened: manifests,
            manifest_entries: entries,
            partitions: 1,
        }
    }

    #[test]
    fn small_files_cost_more_for_equal_bytes() {
        let m = CostModel::default();
        let compact = plan(2, GB, 1, 2);
        let fragmented = plan(256, GB, 10, 256);
        let c = m.scan_work_ms(&compact, 1.0);
        let f = m.scan_work_ms(&fragmented, 1.0);
        assert!(f > 2.0 * c, "fragmented {f} vs compact {c}");
        assert!(m.planning_ms(&fragmented) > m.planning_ms(&compact));
    }

    #[test]
    fn congestion_amplifies_open_cost_only() {
        let m = CostModel::default();
        let p = plan(100, GB, 1, 100);
        let base = m.scan_work_ms(&p, 1.0);
        let congested = m.scan_work_ms(&p, 2.0);
        let open_part = m.per_file_open_ms * 100.0;
        assert!((congested - base - open_part).abs() < 1e-9);
    }

    #[test]
    fn gbhr_matches_paper_formula() {
        let m = CostModel::default();
        // 64GB executor memory, data = one hour of throughput → 64 GBHr.
        let gbhr = m.estimate_gbhr(64.0, m.rewrite_bytes_per_hour);
        assert!((gbhr - 64.0).abs() < 1e-9);
        // Half the data → half the cost.
        let gbhr2 = m.estimate_gbhr(64.0, m.rewrite_bytes_per_hour / 2);
        assert!((gbhr2 - 32.0).abs() < 1e-9);
    }

    #[test]
    fn rewrite_work_scales_with_inputs_and_bytes() {
        let m = CostModel::default();
        let small = m.rewrite_work_ms(256 * (1 << 20), 4, 1, 1.0);
        let large = m.rewrite_work_ms(GB, 256, 2, 1.0);
        assert!(large > small);
        // Write side dominates read side for equal file counts.
        assert!(m.per_gb_write_ms > m.per_gb_scan_ms);
    }

    #[test]
    fn penalty_example_is_monotone() {
        let m = CostModel::default();
        let (compact, fragmented) = small_file_penalty_example(&m);
        assert!(fragmented > compact);
    }
}
