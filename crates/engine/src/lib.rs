//! # lakesim-engine
//!
//! A deterministic Spark-like compute-engine simulator: the substrate on
//! which the AutoComp paper's workloads run.
//!
//! The paper's evaluation (§6) executes CAB/TPC-H/TPC-DS query streams on a
//! 16-node query cluster while compaction runs on a separate 3-node
//! cluster. What the experiments actually measure — query latency, GBHr
//! per application, write-write conflicts, file counts — is a function of:
//!
//! * a **cost model** (per-file open overhead amplified by NameNode
//!   congestion, per-byte scan/write work, manifest-planning overhead,
//!   task startup cost),
//! * **cluster contention** (finite executors; queueing pushes latencies
//!   up, the "additional 25 minutes of overhead" of the no-compaction
//!   baseline in §6.2),
//! * **optimistic-concurrency races** between user writes and compaction
//!   (client-side vs. cluster-side conflicts, Table 1).
//!
//! The engine models all three. Its key design decision is the **deferred
//! commit queue**: writes and rewrites *begin* at submission time (reading
//! a base snapshot) and *commit* at their computed completion time. The
//! experiment driver calls [`SimEnv::drain_due`] as simulated time
//! advances, which applies commits in completion order and surfaces
//! conflicts exactly as a real optimistic protocol would — a long
//! table-scope rewrite has a wide window in which user commits can
//! invalidate it, a quick partition-scope rewrite a narrow one. That is
//! the mechanism behind the paper's Table 1.
//!
//! Everything is a pure function of the seed: the RNG is a self-contained
//! xoshiro256\*\* (see `DESIGN.md` for the substitution rationale), time
//! is simulated, and all containers iterate deterministically.

#![warn(missing_docs)]

pub mod clock;
pub mod cluster;
pub mod cost;
pub mod env;
pub mod error;
pub mod metrics;
pub mod pending;
pub mod query;
pub mod rewrite;
pub mod rng;
pub mod transform;
pub mod writer;

pub use clock::{SimClock, MS_PER_DAY, MS_PER_HOUR, MS_PER_MIN, MS_PER_SEC};
pub use cluster::{AppKind, AppMetrics, Cluster, ClusterConfig, TaskOutcome};
pub use cost::CostModel;
pub use env::{EnvConfig, SimEnv};
pub use error::EngineError;
pub use metrics::{
    Candlestick, CommitEvent, ConflictSide, EngineMetrics, LatencySample, QueryClass,
};
pub use pending::PendingCommit;
pub use query::{FileSizePlan, QueryResult, ReadSpec, WriteOp, WriteSpec};
pub use rewrite::{RewriteJobOutcome, RewriteOptions};
pub use rng::SimRng;

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
