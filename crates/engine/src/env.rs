//! The simulation environment: storage + catalog + clusters + cost model
//! + the deferred-commit queue.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use crate::clock::SimClock;
use crate::cluster::{AppKind, Cluster, ClusterConfig};
use crate::cost::CostModel;
use crate::error::EngineError;
use crate::metrics::{
    CommitEvent, ConflictEvent, ConflictSide, EngineMetrics, LatencySample, QueryClass,
};
use crate::pending::{PendingCommit, PendingEntry, PendingKind};
use crate::query::{QueryResult, ReadSpec, WriteOp, WriteSpec};
use crate::rng::SimRng;
use crate::writer::{chunk_bytes, split_across_partitions};
use crate::Result;
use lakesim_catalog::{
    Catalog, JobStatus, MaintenanceLog, MaintenanceRecord, TablePolicy, TelemetryStore,
};
use lakesim_lst::{DataFile, OpKind, PartitionSpec, Schema, TableId, TableProperties, Transaction};
use lakesim_storage::{FileId, FileKind, FsConfig, SimFileSystem, KB};

/// Size of each LST metadata object materialized in storage.
const METADATA_OBJECT_BYTES: u64 = 64 * KB;

/// Retained table-write changelog entries. Old entries are trimmed; a
/// cursor that predates retention forces observers back to a full fetch.
const CHANGELOG_CAP: usize = 1 << 16;

/// Environment construction parameters.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
    /// Storage configuration.
    pub fs: FsConfig,
    /// Cost model.
    pub cost: CostModel,
    /// Clusters to provision.
    pub clusters: Vec<ClusterConfig>,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            seed: 0,
            fs: FsConfig::default(),
            cost: CostModel::default(),
            clusters: vec![
                ClusterConfig::query_default("query"),
                ClusterConfig::compaction_default("compaction"),
            ],
        }
    }
}

/// The complete simulated lake environment.
///
/// Owns every substrate exclusively — no interior mutability, no threads —
/// so a run is a pure function of `(EnvConfig, driver calls)` (NFR2).
#[derive(Debug, Clone)]
pub struct SimEnv {
    /// Simulated clock (driver-advanced).
    pub clock: SimClock,
    /// Deterministic RNG.
    pub rng: SimRng,
    /// Simulated HDFS.
    pub fs: SimFileSystem,
    /// OpenHouse-like catalog.
    pub catalog: Catalog,
    /// Telemetry store.
    pub telemetry: TelemetryStore,
    /// Maintenance-job log.
    pub maintenance: MaintenanceLog,
    /// Engine metrics.
    pub metrics: EngineMetrics,
    cost: CostModel,
    clusters: BTreeMap<String, Cluster>,
    pending: BinaryHeap<Reverse<PendingEntry>>,
    next_seq: u64,
    /// Metadata objects per table, oldest first (reclaimed by expiry).
    table_meta_files: BTreeMap<TableId, Vec<FileId>>,
    /// Bounded `(seq, table)` log of committed table changes — the dirty
    /// set feeding AutoComp's incremental (cursor) observe.
    changelog: VecDeque<(u64, TableId)>,
    /// Sequence assigned to the next committed change.
    change_seq: u64,
    /// Sequence of the oldest retained changelog entry.
    changelog_floor: u64,
    seed: u64,
}

impl SimEnv {
    /// Builds an environment from configuration.
    pub fn new(config: EnvConfig) -> Self {
        let clusters = config
            .clusters
            .into_iter()
            .map(|c| (c.name.clone(), Cluster::new(c)))
            .collect();
        SimEnv {
            clock: SimClock::new(),
            rng: SimRng::seed_from_u64(config.seed),
            fs: SimFileSystem::new(config.fs),
            catalog: Catalog::new(),
            telemetry: TelemetryStore::new(),
            maintenance: MaintenanceLog::new(),
            metrics: EngineMetrics::default(),
            cost: config.cost,
            clusters,
            pending: BinaryHeap::new(),
            next_seq: 0,
            table_meta_files: BTreeMap::new(),
            changelog: VecDeque::new(),
            change_seq: 0,
            changelog_floor: 0,
            seed: config.seed,
        }
    }

    /// Current position in the table-change stream: every commit applied
    /// so far has a sequence strictly below this cursor. Record it with
    /// an observation, then ask [`Self::changes_since`] for the delta.
    pub fn change_cursor(&self) -> u64 {
        self.change_seq
    }

    /// Distinct tables with commits applied at or after `cursor`, in
    /// first-change order. `None` when `cursor` predates the bounded
    /// changelog's retention — callers must fall back to a full observe.
    pub fn changes_since(&self, cursor: u64) -> Option<Vec<TableId>> {
        if cursor < self.changelog_floor {
            return None;
        }
        let mut seen = BTreeSet::new();
        Some(
            self.changelog
                .iter()
                .filter(|(seq, _)| *seq >= cursor)
                .filter(|(_, table)| seen.insert(*table))
                .map(|(_, table)| *table)
                .collect(),
        )
    }

    /// Appends one committed table change to the bounded changelog.
    fn record_change(&mut self, table: TableId) {
        self.changelog.push_back((self.change_seq, table));
        self.change_seq += 1;
        if self.changelog.len() > CHANGELOG_CAP {
            self.changelog.pop_front();
            self.changelog_floor = self.changelog.front().map_or(self.change_seq, |(s, _)| *s);
        }
    }

    /// The master seed this environment was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Immutable access to a cluster.
    pub fn cluster(&self, name: &str) -> Option<&Cluster> {
        self.clusters.get(name)
    }

    /// Cluster names, sorted.
    pub fn cluster_names(&self) -> Vec<&str> {
        self.clusters.keys().map(String::as_str).collect()
    }

    pub(crate) fn cluster_mut(&mut self, name: &str) -> Result<&mut Cluster> {
        self.clusters
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownCluster(name.to_string()))
    }

    /// Creates a database in the catalog and its backing namespace with an
    /// optional object quota.
    pub fn create_database(&mut self, name: &str, tenant: &str, quota: Option<u64>) -> Result<()> {
        self.catalog.create_database(name, tenant)?;
        self.fs.create_namespace(name, quota)?;
        Ok(())
    }

    /// Creates a table under an existing database.
    pub fn create_table(
        &mut self,
        database: &str,
        name: &str,
        schema: Schema,
        spec: PartitionSpec,
        properties: TableProperties,
        policy: TablePolicy,
    ) -> Result<TableId> {
        let now = self.clock.now();
        Ok(self
            .catalog
            .create_table(database, name, schema, spec, properties, policy, now)?)
    }

    /// Executes a read query at `now_ms`. Completes synchronously (reads
    /// commit nothing); contention is reflected through cluster queueing.
    pub fn submit_read(&mut self, spec: &ReadSpec, now_ms: u64) -> Result<QueryResult> {
        self.clock.advance_to(now_ms);
        // A reader starting at `now` sees every commit completed by `now`.
        let _ = self.drain_up_to(now_ms);
        let plan = {
            let entry = self.catalog.table_mut(spec.table)?;
            entry.usage.record_read(now_ms);
            entry.table.plan_scan(&spec.filter)
        };
        let open_count = plan.file_count() + plan.delete_files;
        let (congestion, timeouts) = self.fs.open_files_batch(open_count, now_ms);
        self.metrics.read_timeouts += timeouts;
        let planning_ms = self.cost.planning_ms(&plan);
        let work = self.cost.scan_work_ms(&plan, congestion)
            + timeouts as f64 * self.cost.timeout_retry_ms
            + self.cost.task_startup_ms;
        let parallelism = spec.parallelism.max(1).min(plan.files.len().max(1));
        let start = now_ms + planning_ms.ceil() as u64;
        let outcome =
            self.cluster_mut(&spec.cluster)?
                .submit(start, work, parallelism, AppKind::Query);
        let latency = (outcome.finished_ms - now_ms) as f64;
        self.metrics.latencies.push(LatencySample {
            at_ms: now_ms,
            class: QueryClass::ReadOnly,
            latency_ms: latency,
            table: spec.table,
        });
        Ok(QueryResult {
            submitted_ms: now_ms,
            finished_ms: outcome.finished_ms,
            latency_ms: latency,
            files_scanned: plan.file_count(),
            bytes_scanned: plan.bytes,
            planning_ms,
            read_timeouts: timeouts,
            files_written: 0,
            class: QueryClass::ReadOnly,
        })
    }

    /// Submits a write query at `now_ms`. The transaction begins now (base
    /// snapshot captured) and is queued to commit when its job finishes;
    /// call [`Self::drain_due`] as time advances to apply it.
    pub fn submit_write(&mut self, spec: &WriteSpec, now_ms: u64) -> Result<QueryResult> {
        self.clock.advance_to(now_ms);
        // A transaction beginning at `now` reads the table state as of
        // `now`: apply commits that completed earlier first.
        let _ = self.drain_up_to(now_ms);
        if spec.total_bytes == 0 {
            return Err(EngineError::EmptyWrite);
        }
        if spec.partitions.is_empty() {
            return Err(EngineError::EmptyWrite);
        }
        self.metrics.write_queries.push((now_ms, spec.table));
        let (database, row_width, base, op_kind, removed) = {
            let entry = self.catalog.table(spec.table)?;
            let op_kind = match spec.op {
                WriteOp::Insert => OpKind::Append,
                WriteOp::MergeOnReadDelta => OpKind::RowDelta,
                WriteOp::CopyOnWriteOverwrite => OpKind::OverwritePartitions,
            };
            let removed: Vec<FileId> = if spec.op == WriteOp::CopyOnWriteOverwrite {
                spec.partitions
                    .iter()
                    .filter_map(|p| entry.table.files_in_partition(p))
                    .flatten()
                    .copied()
                    .collect()
            } else {
                Vec::new()
            };
            (
                entry.table.database().to_string(),
                entry.table.schema().estimated_row_width(),
                entry.table.current_snapshot_id(),
                op_kind,
                removed,
            )
        };

        // Materialize output files in storage (quota enforced here).
        let per_partition =
            split_across_partitions(spec.total_bytes, spec.partitions.len(), spec.partition_skew);
        let mut txn = Transaction::new(base, op_kind);
        let mut written = Vec::new();
        let mut total_files = 0u64;
        for (partition, bytes) in spec.partitions.iter().zip(per_partition) {
            if bytes == 0 {
                continue;
            }
            for size in chunk_bytes(bytes, &spec.file_size, &mut self.rng) {
                let created = self.fs.create_file(&database, FileKind::Data, size, now_ms);
                let id = match created {
                    Ok(id) => id,
                    Err(e) => {
                        // Quota breach: roll back partial outputs, fail the
                        // query (the §7 "frequent breaches of user HDFS
                        // namespace quotas" failure mode).
                        self.metrics.quota_failures += 1;
                        self.cleanup_orphans(&written, now_ms);
                        return Err(e.into());
                    }
                };
                written.push(id);
                total_files += 1;
                let rows = (size / row_width).max(1);
                let file = if spec.op == WriteOp::MergeOnReadDelta {
                    DataFile::position_deletes(id, partition.clone(), rows, size)
                } else {
                    DataFile::data(id, partition.clone(), rows, size)
                };
                txn.add_file(file);
            }
        }
        if written.is_empty() {
            return Err(EngineError::EmptyWrite);
        }
        for id in &removed {
            txn.remove_file(*id);
        }
        for p in &spec.partitions {
            txn.declare_partition(p.clone());
        }

        let congestion = self.fs.congestion_factor();
        let mut work = self
            .cost
            .write_work_ms(spec.total_bytes, total_files, congestion)
            + self.cost.task_startup_ms;
        if spec.op == WriteOp::CopyOnWriteOverwrite {
            // CoW must read the replaced files too.
            let replaced_bytes: u64 = {
                let entry = self.catalog.table(spec.table)?;
                removed
                    .iter()
                    .filter_map(|id| entry.table.file(*id))
                    .map(|f| f.file_size_bytes)
                    .sum()
            };
            work += self.cost.per_gb_scan_ms * (replaced_bytes as f64 / lakesim_storage::GB as f64);
        }
        let parallelism = spec.parallelism.max(1);
        let outcome =
            self.cluster_mut(&spec.cluster)?
                .submit(now_ms, work, parallelism, AppKind::Write);
        let due = outcome.finished_ms + self.cost.write_job_overhead_ms + self.cost.commit_ms;
        let commit = PendingCommit {
            table: spec.table,
            txn,
            kind: PendingKind::UserWrite {
                op: spec.op,
                partitions: spec.partitions.clone(),
                retries_left: self.cost.max_retries,
            },
            written_files: written,
            inputs_to_delete: Vec::new(),
            submitted_ms: now_ms,
            gbhr: outcome.gbhr,
        };
        self.enqueue(due, commit);
        Ok(QueryResult {
            submitted_ms: now_ms,
            finished_ms: due,
            latency_ms: (due - now_ms) as f64,
            files_scanned: 0,
            bytes_scanned: 0,
            planning_ms: 0.0,
            read_timeouts: 0,
            files_written: total_files,
            class: QueryClass::ReadWrite,
        })
    }

    /// Enqueues a pending commit at `due_ms`.
    pub(crate) fn enqueue(&mut self, due_ms: u64, commit: PendingCommit) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Reverse(PendingEntry {
            due_ms,
            seq,
            commit,
        }));
    }

    /// Applies every pending commit due at or before `now_ms`, in
    /// completion order, then advances the clock to `now_ms`. The driver
    /// must call this before reading table state at a new timestamp.
    pub fn drain_due(&mut self, now_ms: u64) -> Vec<CommitEvent> {
        let events = self.drain_up_to(now_ms);
        self.clock.advance_to(now_ms);
        events
    }

    /// Applies all remaining pending commits (end of experiment). The
    /// clock advances only to the last commit's due time, not to infinity.
    pub fn drain_all(&mut self) -> Vec<CommitEvent> {
        let events = self.drain_up_to(u64::MAX);
        if let Some(last) = events.last() {
            self.clock.advance_to(last.at_ms);
        }
        events
    }

    fn drain_up_to(&mut self, deadline_ms: u64) -> Vec<CommitEvent> {
        let mut events = Vec::new();
        while let Some(Reverse(entry)) = self.pending.peek() {
            if entry.due_ms > deadline_ms {
                break;
            }
            let Reverse(entry) = self.pending.pop().expect("peeked");
            let event = self.apply_commit(entry);
            events.push(event);
        }
        events
    }

    /// Number of commits still pending.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn apply_commit(&mut self, entry: PendingEntry) -> CommitEvent {
        let PendingEntry {
            due_ms,
            seq: _,
            commit,
        } = entry;
        let table_id = commit.table;
        let op = commit.txn.kind();
        // Table may have been dropped while the commit was in flight.
        if self.catalog.table(table_id).is_err() {
            self.cleanup_orphans(&commit.written_files, due_ms);
            return CommitEvent {
                at_ms: due_ms,
                table: table_id,
                op,
                succeeded: false,
                conflicted: false,
                job_id: None,
            };
        }
        let attempt = commit.txn.clone();
        let result = self
            .catalog
            .table_mut(table_id)
            .expect("checked above")
            .table
            .commit(attempt, due_ms);
        match result {
            Ok(outcome) => self.on_commit_success(due_ms, commit, outcome.new_metadata_objects),
            Err(e)
                if e.is_retryable()
                    || matches!(e, lakesim_lst::CommitError::UnknownBaseSnapshot(_)) =>
            {
                self.on_commit_conflict(due_ms, commit)
            }
            Err(_) => {
                // Structural failure: abandon and clean up.
                self.cleanup_orphans(&commit.written_files, due_ms);
                if let PendingKind::Rewrite {
                    job_id,
                    scope,
                    trigger,
                    kind,
                    predicted_reduction,
                    predicted_gbhr,
                } = &commit.kind
                {
                    self.maintenance.push(MaintenanceRecord {
                        job_id: *job_id,
                        table: table_id,
                        scope: scope.clone(),
                        trigger: trigger.clone(),
                        scheduled_at_ms: commit.submitted_ms,
                        finished_at_ms: due_ms,
                        status: JobStatus::Failed,
                        kind: *kind,
                        predicted_reduction: *predicted_reduction,
                        actual_reduction: 0,
                        predicted_gbhr: *predicted_gbhr,
                        actual_gbhr: commit.gbhr,
                    });
                }
                CommitEvent {
                    at_ms: due_ms,
                    table: table_id,
                    op,
                    succeeded: false,
                    conflicted: false,
                    job_id: None,
                }
            }
        }
    }

    fn on_commit_success(
        &mut self,
        due_ms: u64,
        commit: PendingCommit,
        new_metadata_objects: u32,
    ) -> CommitEvent {
        let table_id = commit.table;
        let op = commit.txn.kind();
        // Materialize metadata objects (cause iv of small-file growth).
        let database = self
            .catalog
            .table(table_id)
            .expect("exists")
            .table
            .database()
            .to_string();
        for _ in 0..new_metadata_objects {
            match self
                .fs
                .create_file(&database, FileKind::Metadata, METADATA_OBJECT_BYTES, due_ms)
            {
                Ok(id) => self.table_meta_files.entry(table_id).or_default().push(id),
                Err(_) => {
                    self.metrics.quota_failures += 1;
                }
            }
        }
        let entry = self.catalog.table_mut(table_id).expect("exists");
        entry.usage.record_write(due_ms);
        // Every applied commit — user write or compaction rewrite — dirties
        // the table for incremental observers.
        self.record_change(table_id);

        let mut job_id_out = None;
        match &commit.kind {
            PendingKind::UserWrite { .. } => {
                self.metrics.latencies.push(LatencySample {
                    at_ms: commit.submitted_ms,
                    class: QueryClass::ReadWrite,
                    latency_ms: (due_ms - commit.submitted_ms) as f64,
                    table: table_id,
                });
            }
            PendingKind::Rewrite {
                job_id,
                scope,
                trigger,
                kind,
                predicted_reduction,
                predicted_gbhr,
            } => {
                job_id_out = Some(*job_id);
                // Physically delete replaced inputs.
                let inputs = commit.inputs_to_delete.clone();
                for id in &inputs {
                    let _ = self.fs.delete_file(*id, due_ms);
                }
                let actual_reduction = inputs.len() as i64 - commit.written_files.len() as i64;
                self.maintenance.push(MaintenanceRecord {
                    job_id: *job_id,
                    table: table_id,
                    scope: scope.clone(),
                    trigger: trigger.clone(),
                    scheduled_at_ms: commit.submitted_ms,
                    finished_at_ms: due_ms,
                    status: JobStatus::Succeeded,
                    kind: *kind,
                    predicted_reduction: *predicted_reduction,
                    actual_reduction,
                    predicted_gbhr: *predicted_gbhr,
                    actual_gbhr: commit.gbhr,
                });
            }
        }
        CommitEvent {
            at_ms: due_ms,
            table: table_id,
            op,
            succeeded: true,
            conflicted: false,
            job_id: job_id_out,
        }
    }

    fn on_commit_conflict(&mut self, due_ms: u64, mut commit: PendingCommit) -> CommitEvent {
        let table_id = commit.table;
        let op = commit.txn.kind();
        match &mut commit.kind {
            PendingKind::UserWrite {
                op: write_op,
                partitions,
                retries_left,
            } => {
                self.metrics.conflicts.push(ConflictEvent {
                    at_ms: due_ms,
                    table: table_id,
                    side: ConflictSide::Client,
                });
                if *retries_left == 0 {
                    // Terminal failure: the user query errors out.
                    self.cleanup_orphans(&commit.written_files, due_ms);
                    return CommitEvent {
                        at_ms: due_ms,
                        table: table_id,
                        op,
                        succeeded: false,
                        conflicted: true,
                        job_id: None,
                    };
                }
                *retries_left -= 1;
                // Rebase onto the current snapshot; overwrites must also
                // re-plan which files they replace.
                let entry = self.catalog.table(table_id).expect("exists");
                let current = entry.table.current_snapshot_id();
                if *write_op == WriteOp::CopyOnWriteOverwrite {
                    let mut fresh = Transaction::new(current, OpKind::OverwritePartitions);
                    for f in commit.txn.added() {
                        fresh.add_file(f.clone());
                    }
                    let removed: Vec<FileId> = partitions
                        .iter()
                        .filter_map(|p| entry.table.files_in_partition(p))
                        .flatten()
                        .copied()
                        .collect();
                    for id in removed {
                        fresh.remove_file(id);
                    }
                    for p in partitions.iter() {
                        fresh.declare_partition(p.clone());
                    }
                    commit.txn = fresh;
                } else {
                    commit.txn.rebase(current);
                }
                let retry_due = due_ms + self.cost.retry_backoff_ms + self.cost.commit_ms;
                self.enqueue(retry_due, commit);
                CommitEvent {
                    at_ms: due_ms,
                    table: table_id,
                    op,
                    succeeded: false,
                    conflicted: true,
                    job_id: None,
                }
            }
            PendingKind::Rewrite {
                job_id,
                scope,
                trigger,
                kind,
                predicted_reduction,
                predicted_gbhr,
            } => {
                // Cluster-side conflict: the compaction job is dropped and
                // its outputs become orphans (Table 1; §4.4).
                self.metrics.conflicts.push(ConflictEvent {
                    at_ms: due_ms,
                    table: table_id,
                    side: ConflictSide::Cluster,
                });
                let job = *job_id;
                self.maintenance.push(MaintenanceRecord {
                    job_id: job,
                    table: table_id,
                    scope: scope.clone(),
                    trigger: trigger.clone(),
                    scheduled_at_ms: commit.submitted_ms,
                    finished_at_ms: due_ms,
                    status: JobStatus::Conflicted,
                    kind: *kind,
                    predicted_reduction: *predicted_reduction,
                    actual_reduction: 0,
                    predicted_gbhr: *predicted_gbhr,
                    actual_gbhr: commit.gbhr,
                });
                self.cleanup_orphans(&commit.written_files, due_ms);
                CommitEvent {
                    at_ms: due_ms,
                    table: table_id,
                    op,
                    succeeded: false,
                    conflicted: true,
                    job_id: Some(job),
                }
            }
        }
    }

    fn cleanup_orphans(&mut self, files: &[FileId], now_ms: u64) {
        for id in files {
            let _ = self.fs.delete_file(*id, now_ms);
        }
    }

    /// Oldest metadata file ids of a table (used by snapshot expiry).
    pub(crate) fn take_oldest_metadata(&mut self, table: TableId, count: u64) -> Vec<FileId> {
        let list = self.table_meta_files.entry(table).or_default();
        let n = (count as usize).min(list.len());
        list.drain(..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakesim_lst::{ColumnType, Field, PartitionFilter, PartitionKey};
    use lakesim_storage::MB;

    fn test_env() -> SimEnv {
        let mut env = SimEnv::new(EnvConfig {
            seed: 1,
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", None).unwrap();
        env
    }

    fn simple_table(env: &mut SimEnv) -> TableId {
        let schema = Schema::new(vec![Field::new(1, "k", ColumnType::Int64, true)]).unwrap();
        env.create_table(
            "db",
            "t",
            schema,
            PartitionSpec::unpartitioned(),
            TableProperties::default(),
            TablePolicy::default(),
        )
        .unwrap()
    }

    fn insert(env: &mut SimEnv, table: TableId, mb: u64, now: u64) -> QueryResult {
        let spec = WriteSpec::insert(
            table,
            PartitionKey::unpartitioned(),
            mb * MB,
            crate::writer::FileSizePlan::trickle(),
            "query",
        );
        env.submit_write(&spec, now).unwrap()
    }

    #[test]
    fn write_then_drain_then_read() {
        let mut env = test_env();
        let t = simple_table(&mut env);
        let w = insert(&mut env, t, 64, 0);
        assert!(w.files_written > 1, "trickle writer splits into files");
        // Nothing visible until drained.
        assert_eq!(env.catalog.table(t).unwrap().table.file_count(), 0);
        let events = env.drain_due(w.finished_ms);
        assert_eq!(events.len(), 1);
        assert!(events[0].succeeded);
        let count = env.catalog.table(t).unwrap().table.file_count();
        assert_eq!(count, w.files_written);
        // Metadata objects materialized too.
        assert!(env.fs.total_files_of_kind(FileKind::Metadata) >= 3);

        let read = env
            .submit_read(
                &ReadSpec {
                    table: t,
                    filter: PartitionFilter::All,
                    cluster: "query".into(),
                    parallelism: 8,
                },
                w.finished_ms + 1,
            )
            .unwrap();
        assert_eq!(read.files_scanned, w.files_written);
        assert!(read.latency_ms > 0.0);
    }

    #[test]
    fn more_small_files_mean_slower_reads() {
        let mut env = test_env();
        let t = simple_table(&mut env);
        insert(&mut env, t, 256, 0);
        env.drain_all();
        let fragmented = env
            .submit_read(
                &ReadSpec {
                    table: t,
                    filter: PartitionFilter::All,
                    cluster: "query".into(),
                    parallelism: 1,
                },
                10_000_000,
            )
            .unwrap();

        let mut env2 = test_env();
        let t2 = simple_table(&mut env2);
        let spec = WriteSpec::insert(
            t2,
            PartitionKey::unpartitioned(),
            256 * MB,
            crate::writer::FileSizePlan::well_tuned(),
            "query",
        );
        env2.submit_write(&spec, 0).unwrap();
        env2.drain_all();
        let compact = env2
            .submit_read(
                &ReadSpec {
                    table: t2,
                    filter: PartitionFilter::All,
                    cluster: "query".into(),
                    parallelism: 1,
                },
                10_000_000,
            )
            .unwrap();
        assert!(
            fragmented.latency_ms > compact.latency_ms,
            "fragmented {} <= compact {}",
            fragmented.latency_ms,
            compact.latency_ms
        );
    }

    #[test]
    fn quota_breach_fails_write_and_rolls_back() {
        let mut env = SimEnv::new(EnvConfig {
            seed: 2,
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", Some(6)).unwrap();
        let t = simple_table(&mut env);
        let spec = WriteSpec::insert(
            t,
            PartitionKey::unpartitioned(),
            256 * MB,
            crate::writer::FileSizePlan::trickle(),
            "query",
        );
        let err = env.submit_write(&spec, 0).unwrap_err();
        assert!(matches!(err, EngineError::Storage(_)));
        assert_eq!(env.metrics.quota_failures, 1);
        // Partial outputs rolled back.
        assert_eq!(env.fs.total_files(), 0);
    }

    #[test]
    fn cow_overwrite_replaces_partition_contents() {
        let mut env = test_env();
        let t = simple_table(&mut env);
        insert(&mut env, t, 64, 0);
        env.drain_all();
        let before = env.catalog.table(t).unwrap().table.file_count();
        assert!(before > 0);
        let spec = WriteSpec {
            table: t,
            op: WriteOp::CopyOnWriteOverwrite,
            partitions: vec![PartitionKey::unpartitioned()],
            total_bytes: 64 * MB,
            file_size: crate::writer::FileSizePlan::well_tuned(),
            partition_skew: 0.0,
            cluster: "query".into(),
            parallelism: 4,
        };
        let w = env.submit_write(&spec, 1_000_000).unwrap();
        env.drain_due(w.finished_ms);
        let after = env.catalog.table(t).unwrap().table.file_count();
        assert_eq!(after, w.files_written, "old files replaced");
    }

    #[test]
    fn changelog_tracks_committed_tables() {
        let mut env = test_env();
        let t = simple_table(&mut env);
        let cursor0 = env.change_cursor();
        assert_eq!(env.changes_since(cursor0), Some(Vec::new()));

        let w = insert(&mut env, t, 64, 0);
        // Nothing recorded until the commit is applied.
        assert_eq!(env.change_cursor(), cursor0);
        env.drain_due(w.finished_ms);
        assert!(env.change_cursor() > cursor0);
        assert_eq!(env.changes_since(cursor0), Some(vec![t]));

        // A cursor taken after the commit sees no further changes…
        let cursor1 = env.change_cursor();
        assert_eq!(env.changes_since(cursor1), Some(Vec::new()));
        // …and repeated writes to one table dedupe to one dirty entry.
        let w2 = insert(&mut env, t, 32, w.finished_ms + 1);
        let w3 = insert(&mut env, t, 32, w2.finished_ms + 1);
        env.drain_due(w3.finished_ms);
        assert_eq!(env.changes_since(cursor1), Some(vec![t]));
    }

    #[test]
    fn changelog_trims_and_reports_stale_cursors() {
        let mut env = test_env();
        let t = simple_table(&mut env);
        let stale = env.change_cursor();
        for _ in 0..(CHANGELOG_CAP + 5) {
            env.record_change(t);
        }
        assert!(env.changes_since(stale).is_none(), "trimmed past cursor");
        assert!(env.changes_since(env.change_cursor()).is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut env = SimEnv::new(EnvConfig {
                seed,
                ..EnvConfig::default()
            });
            env.create_database("db", "t", None).unwrap();
            let t = simple_table(&mut env);
            for i in 0..5 {
                insert(&mut env, t, 32, i * 60_000);
            }
            env.drain_all();
            (
                env.fs.total_files(),
                env.catalog.table(t).unwrap().table.file_count(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
