//! Transformation-embedding rewrites: sort, partition relayout, and
//! deletion-vector purge.
//!
//! The paper's compaction jobs are size-based bin-packing merges
//! ([`SimEnv::submit_rewrite`]). Production frameworks fold further
//! table transformations into the same replace-files machinery — a job
//! that is already rewriting files may as well sort them, rebalance
//! them across partitions, or apply accumulated merge-on-read delete
//! files. These submissions share the merge path's physics: the
//! transaction begins at submission (opening its optimistic-concurrency
//! window), the cluster is charged real work (with a per-kind cost
//! premium over a plain merge), and the commit resolves through
//! [`SimEnv::drain_due`] with the same conflict semantics. Each records
//! a [`MaintenanceRecord`](lakesim_catalog::MaintenanceRecord) tagged
//! with its [`RewriteKind`], so fleet-level outcome accounting can
//! split benefit by transformation.

use std::collections::BTreeMap;

use crate::cluster::AppKind;
use crate::env::SimEnv;
use crate::pending::{PendingCommit, PendingKind};
use crate::rewrite::{RewriteJobOutcome, RewriteOptions};
use crate::Result;
use lakesim_catalog::RewriteKind;
use lakesim_lst::{synthesize_outputs, DataFile, OpKind, PartitionKey, TableId, Transaction};
use lakesim_storage::{FileId, FileKind};

/// Work multiplier over a plain merge for a sort-embedding rewrite
/// (the shuffle + ordered write).
const SORT_WORK_FACTOR: f64 = 1.6;

/// Work multiplier for a partition relayout (cross-partition shuffle).
const RELAYOUT_WORK_FACTOR: f64 = 1.3;

/// Work multiplier for a deletion-vector purge (anti-join is roughly a
/// merge-shaped scan+write).
const PURGE_WORK_FACTOR: f64 = 1.0;

/// One output the transform will synthesize files for.
struct PlannedOutput {
    partition: PartitionKey,
    bytes: u64,
    sorted: bool,
}

/// A fully planned transform rewrite, ready for submission.
struct TransformPlan {
    inputs: Vec<FileId>,
    input_bytes: u64,
    outputs: Vec<PlannedOutput>,
    kind: RewriteKind,
    work_factor: f64,
}

impl SimEnv {
    /// Submits a rewrite that sorts every unsorted data file by the
    /// table's sort column, partition by partition. Returns `None` when
    /// the table holds no unsorted data.
    pub fn submit_sort_rewrite(
        &mut self,
        table: TableId,
        opts: &RewriteOptions,
        now_ms: u64,
    ) -> Result<Option<RewriteJobOutcome>> {
        self.clock.advance_to(now_ms);
        let _ = self.drain_due(now_ms);
        let plan = {
            let entry = self.catalog.table(table)?;
            let mut per_partition: BTreeMap<PartitionKey, u64> = BTreeMap::new();
            let mut inputs = Vec::new();
            let mut input_bytes = 0u64;
            for f in entry.table.live_files() {
                if f.content.is_deletes() || f.sorted {
                    continue;
                }
                inputs.push(f.file_id);
                input_bytes += f.file_size_bytes;
                *per_partition.entry(f.partition.clone()).or_insert(0) += f.file_size_bytes;
            }
            TransformPlan {
                inputs,
                input_bytes,
                outputs: per_partition
                    .into_iter()
                    .map(|(partition, bytes)| PlannedOutput {
                        partition,
                        bytes,
                        sorted: true,
                    })
                    .collect(),
                kind: RewriteKind::Sort,
                work_factor: SORT_WORK_FACTOR,
            }
        };
        self.submit_transform(table, plan, opts, now_ms)
    }

    /// Submits a rewrite that redistributes the table's data bytes
    /// evenly across its live partitions, consuming any delete files
    /// along the way (the shuffled rewrite applies them). Returns
    /// `None` for tables with fewer than two live partitions.
    pub fn submit_partition_relayout(
        &mut self,
        table: TableId,
        opts: &RewriteOptions,
        now_ms: u64,
    ) -> Result<Option<RewriteJobOutcome>> {
        self.clock.advance_to(now_ms);
        let _ = self.drain_due(now_ms);
        let plan = {
            let entry = self.catalog.table(table)?;
            let mut partitions: Vec<PartitionKey> = Vec::new();
            let mut inputs = Vec::new();
            let mut input_bytes = 0u64;
            let mut data_bytes = 0u64;
            for f in entry.table.live_files() {
                inputs.push(f.file_id);
                input_bytes += f.file_size_bytes;
                if !f.content.is_deletes() {
                    data_bytes += f.file_size_bytes;
                    if !partitions.contains(&f.partition) {
                        partitions.push(f.partition.clone());
                    }
                }
            }
            partitions.sort();
            if partitions.len() < 2 {
                return Ok(None);
            }
            let share = data_bytes / partitions.len() as u64;
            let mut remainder = data_bytes - share * partitions.len() as u64;
            TransformPlan {
                inputs,
                input_bytes,
                outputs: partitions
                    .into_iter()
                    .map(|partition| {
                        let extra = std::mem::take(&mut remainder);
                        PlannedOutput {
                            partition,
                            bytes: share + extra,
                            sorted: false,
                        }
                    })
                    .collect(),
                kind: RewriteKind::Relayout,
                work_factor: RELAYOUT_WORK_FACTOR,
            }
        };
        self.submit_transform(table, plan, opts, now_ms)
    }

    /// Submits a rewrite that applies and drops the table's merge-on-read
    /// delete files: every partition carrying deletes has its data files
    /// rewritten minus the masked bytes. Returns `None` when the table
    /// has no delete files.
    pub fn submit_deletion_purge(
        &mut self,
        table: TableId,
        opts: &RewriteOptions,
        now_ms: u64,
    ) -> Result<Option<RewriteJobOutcome>> {
        self.clock.advance_to(now_ms);
        let _ = self.drain_due(now_ms);
        let plan = {
            let entry = self.catalog.table(table)?;
            let mut delete_bytes: BTreeMap<PartitionKey, u64> = BTreeMap::new();
            let mut inputs = Vec::new();
            let mut input_bytes = 0u64;
            for f in entry.table.live_files() {
                if f.content.is_deletes() {
                    inputs.push(f.file_id);
                    input_bytes += f.file_size_bytes;
                    *delete_bytes.entry(f.partition.clone()).or_insert(0) += f.file_size_bytes;
                }
            }
            if delete_bytes.is_empty() {
                return Ok(None);
            }
            let mut data_bytes: BTreeMap<PartitionKey, u64> = BTreeMap::new();
            for f in entry.table.live_files() {
                if !f.content.is_deletes() && delete_bytes.contains_key(&f.partition) {
                    inputs.push(f.file_id);
                    input_bytes += f.file_size_bytes;
                    *data_bytes.entry(f.partition.clone()).or_insert(0) += f.file_size_bytes;
                }
            }
            TransformPlan {
                inputs,
                input_bytes,
                outputs: data_bytes
                    .into_iter()
                    .filter_map(|(partition, bytes)| {
                        let masked = delete_bytes.get(&partition).copied().unwrap_or(0);
                        let remaining = bytes.saturating_sub(masked);
                        (remaining > 0).then_some(PlannedOutput {
                            partition,
                            bytes: remaining,
                            sorted: false,
                        })
                    })
                    .collect(),
                kind: RewriteKind::Purge,
                work_factor: PURGE_WORK_FACTOR,
            }
        };
        self.submit_transform(table, plan, opts, now_ms)
    }

    /// Shared submission path: stages the replace-files transaction,
    /// charges the cluster the kind-weighted rewrite work, and enqueues
    /// the deferred commit exactly as a merge would. Empty plans (no
    /// inputs) are no-ops.
    fn submit_transform(
        &mut self,
        table_id: TableId,
        plan: TransformPlan,
        opts: &RewriteOptions,
        now_ms: u64,
    ) -> Result<Option<RewriteJobOutcome>> {
        if plan.inputs.is_empty() {
            return Ok(None);
        }
        let (database, row_width, target_size, base) = {
            let entry = self.catalog.table(table_id)?;
            (
                entry.table.database().to_string(),
                entry.table.schema().estimated_row_width(),
                entry.table.properties().target_file_size,
                entry.table.current_snapshot_id(),
            )
        };
        let mut txn = Transaction::new(base, OpKind::RewriteFiles);
        let mut outputs: Vec<FileId> = Vec::new();
        let mut output_files = 0u64;
        for id in &plan.inputs {
            txn.remove_file(*id);
        }
        for out in &plan.outputs {
            for size in synthesize_outputs(out.bytes, target_size) {
                let created = self.fs.create_file(&database, FileKind::Data, size, now_ms);
                let id = match created {
                    Ok(id) => id,
                    Err(e) => {
                        self.metrics.quota_failures += 1;
                        for orphan in &outputs {
                            let _ = self.fs.delete_file(*orphan, now_ms);
                        }
                        return Err(e.into());
                    }
                };
                outputs.push(id);
                output_files += 1;
                let rows = (size / row_width).max(1);
                let file = if out.sorted {
                    DataFile::data_sorted(id, out.partition.clone(), rows, size)
                } else {
                    DataFile::data(id, out.partition.clone(), rows, size)
                };
                txn.add_file(file);
            }
        }
        let congestion = self.fs.congestion_factor();
        let work_ms = self.cost().rewrite_work_ms(
            plan.input_bytes,
            plan.inputs.len() as u64,
            output_files,
            congestion,
        ) * plan.work_factor
            + self.cost().task_startup_ms;
        let parallelism = opts.parallelism.max(1);
        let outcome = self.cluster_mut(&opts.cluster)?.submit(
            now_ms,
            work_ms,
            parallelism,
            AppKind::Compaction,
        );
        let commit_due = outcome.finished_ms + self.cost().commit_ms;
        let job_id = self.maintenance.next_job_id();
        let input_files = plan.inputs.len() as u64;
        let input_bytes = plan.input_bytes;
        self.enqueue(
            commit_due,
            PendingCommit {
                table: table_id,
                txn,
                kind: PendingKind::Rewrite {
                    job_id,
                    scope: "table".to_string(),
                    trigger: opts.trigger.clone(),
                    kind: plan.kind,
                    predicted_reduction: opts.predicted_reduction,
                    predicted_gbhr: opts.predicted_gbhr,
                },
                written_files: outputs,
                inputs_to_delete: plan.inputs,
                submitted_ms: now_ms,
                gbhr: outcome.gbhr,
            },
        );
        Ok(Some(RewriteJobOutcome {
            job_id,
            scheduled_at_ms: now_ms,
            commit_due_ms: commit_due,
            gbhr: outcome.gbhr,
            input_files,
            output_files,
            input_bytes,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;
    use crate::query::{FileSizePlan, WriteOp, WriteSpec};
    use lakesim_catalog::{JobStatus, TablePolicy};
    use lakesim_lst::{
        ColumnType, Field, PartitionSpec, PartitionValue, Schema, TableProperties, Transform,
    };
    use lakesim_storage::MB;

    fn opts(trigger: &str) -> RewriteOptions {
        RewriteOptions {
            cluster: "compaction".into(),
            parallelism: 3,
            trigger: trigger.into(),
            predicted_reduction: 0,
            predicted_gbhr: 1.0,
        }
    }

    fn setup_partitioned() -> (SimEnv, TableId) {
        let mut env = SimEnv::new(EnvConfig {
            seed: 11,
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", None).unwrap();
        let schema = Schema::new(vec![
            Field::new(1, "k", ColumnType::Int64, true),
            Field::new(2, "ds", ColumnType::Date, true),
        ])
        .unwrap();
        let t = env
            .create_table(
                "db",
                "t",
                schema,
                PartitionSpec::single(2, Transform::Month, "m"),
                TableProperties::default(),
                TablePolicy::default(),
            )
            .unwrap();
        // Skewed layout: partition 1 gets 512 MB, partition 2 gets 32 MB.
        for (p, bytes) in [(1, 512 * MB), (2, 32 * MB)] {
            let spec = WriteSpec::insert(
                t,
                PartitionKey::single(PartitionValue::Date(p)),
                bytes,
                FileSizePlan::trickle(),
                "query",
            );
            env.submit_write(&spec, (p as u64) * 100_000).unwrap();
        }
        env.drain_all();
        (env, t)
    }

    #[test]
    fn sort_rewrite_sorts_everything_once() {
        let (mut env, t) = setup_partitioned();
        let job = env
            .submit_sort_rewrite(t, &opts("test"), 1_000_000)
            .unwrap()
            .unwrap();
        env.drain_due(job.commit_due_ms);
        let rec = env.maintenance.records().last().unwrap().clone();
        assert_eq!(rec.status, JobStatus::Succeeded);
        assert_eq!(rec.kind, RewriteKind::Sort);
        let entry = env.catalog.table(t).unwrap();
        assert!(entry.table.live_files().all(|f| f.sorted));
        assert_eq!(entry.table.stats(512 * MB).unsorted_data_bytes, 0);
        // Everything already sorted: the second submission is a no-op.
        assert!(env
            .submit_sort_rewrite(t, &opts("test"), 2_000_000)
            .unwrap()
            .is_none());
    }

    #[test]
    fn relayout_flattens_partition_skew() {
        let (mut env, t) = setup_partitioned();
        let before = env.catalog.table(t).unwrap().table.stats(512 * MB);
        assert!(before.max_partition_bytes * 2 > before.total_bytes);
        let job = env
            .submit_partition_relayout(t, &opts("test"), 1_000_000)
            .unwrap()
            .unwrap();
        env.drain_due(job.commit_due_ms);
        let after = env.catalog.table(t).unwrap().table.stats(512 * MB);
        assert_eq!(after.partition_count, 2);
        // Even split: max partition holds about half the bytes.
        assert!(after.max_partition_bytes <= after.total_bytes / 2 + MB);
        let rec = env.maintenance.records().last().unwrap();
        assert_eq!(rec.kind, RewriteKind::Relayout);
    }

    #[test]
    fn relayout_needs_two_partitions() {
        let mut env = SimEnv::new(EnvConfig {
            seed: 12,
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", None).unwrap();
        let schema = Schema::new(vec![Field::new(1, "k", ColumnType::Int64, true)]).unwrap();
        let t = env
            .create_table(
                "db",
                "t",
                schema,
                PartitionSpec::unpartitioned(),
                TableProperties::default(),
                TablePolicy::default(),
            )
            .unwrap();
        let spec = WriteSpec::insert(
            t,
            PartitionKey::unpartitioned(),
            64 * MB,
            FileSizePlan::trickle(),
            "query",
        );
        env.submit_write(&spec, 0).unwrap();
        env.drain_all();
        assert!(env
            .submit_partition_relayout(t, &opts("test"), 1_000_000)
            .unwrap()
            .is_none());
    }

    #[test]
    fn purge_retires_delete_files_and_masked_bytes() {
        let (mut env, t) = setup_partitioned();
        // Accumulate MoR debt on partition 1.
        let delta = WriteSpec {
            op: WriteOp::MergeOnReadDelta,
            ..WriteSpec::insert(
                t,
                PartitionKey::single(PartitionValue::Date(1)),
                16 * MB,
                FileSizePlan::trickle(),
                "query",
            )
        };
        env.submit_write(&delta, 500_000).unwrap();
        env.drain_all();
        let before = env.catalog.table(t).unwrap().table.stats(512 * MB);
        assert!(before.delete_file_count > 0);
        let job = env
            .submit_deletion_purge(t, &opts("test"), 1_000_000)
            .unwrap()
            .unwrap();
        env.drain_due(job.commit_due_ms);
        let after = env.catalog.table(t).unwrap().table.stats(512 * MB);
        assert_eq!(after.delete_file_count, 0, "debt fully retired");
        assert!(after.total_bytes < before.total_bytes, "masked bytes gone");
        let rec = env.maintenance.records().last().unwrap();
        assert_eq!(rec.kind, RewriteKind::Purge);
        assert_eq!(rec.status, JobStatus::Succeeded);
        // No debt left: purge becomes a no-op.
        assert!(env
            .submit_deletion_purge(t, &opts("test"), 2_000_000)
            .unwrap()
            .is_none());
    }

    #[test]
    fn sort_costs_more_than_purge_for_the_same_bytes() {
        let (mut env_a, t_a) = setup_partitioned();
        let (mut env_b, t_b) = setup_partitioned();
        let sort = env_a
            .submit_sort_rewrite(t_a, &opts("test"), 1_000_000)
            .unwrap()
            .unwrap();
        let relayout = env_b
            .submit_partition_relayout(t_b, &opts("test"), 1_000_000)
            .unwrap()
            .unwrap();
        assert!(
            sort.gbhr > relayout.gbhr,
            "sort premium ({}) must exceed relayout ({})",
            sort.gbhr,
            relayout.gbhr
        );
    }
}
