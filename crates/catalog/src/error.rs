//! Catalog error type.

use std::fmt;

use lakesim_lst::TableId;

/// Errors raised by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The referenced database does not exist.
    DatabaseNotFound(String),
    /// A database with this name already exists.
    DatabaseExists(String),
    /// The referenced table id does not exist.
    TableNotFound(TableId),
    /// A table with this name already exists in the database.
    TableExists {
        /// Database name.
        database: String,
        /// Table name.
        table: String,
    },
    /// Schema/spec validation failed at table creation.
    InvalidTable(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DatabaseNotFound(db) => write!(f, "database not found: '{db}'"),
            CatalogError::DatabaseExists(db) => write!(f, "database already exists: '{db}'"),
            CatalogError::TableNotFound(id) => write!(f, "table not found: {id}"),
            CatalogError::TableExists { database, table } => {
                write!(f, "table already exists: '{database}.{table}'")
            }
            CatalogError::InvalidTable(msg) => write!(f, "invalid table definition: {msg}"),
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_object() {
        assert!(CatalogError::DatabaseNotFound("x".into())
            .to_string()
            .contains("'x'"));
        assert!(CatalogError::TableExists {
            database: "db".into(),
            table: "t".into()
        }
        .to_string()
        .contains("db.t"));
    }
}
