//! Maintenance-job log: predicted vs. actual benefit and cost.
//!
//! §7 ("Model Accuracy and Estimation Errors"): *"We evaluated the accuracy
//! of our estimators by comparing predicted and actual values for file
//! count reduction and compute cost."* Every compaction job the engine
//! executes is recorded here with both sides of that comparison, giving the
//! feedback loop (and the `estimator_accuracy` experiment) its data.

use std::fmt;

use lakesim_lst::TableId;

/// Terminal status of a maintenance job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Rewrite committed.
    Succeeded,
    /// Rewrite lost an optimistic-concurrency race (cluster-side conflict,
    /// Table 1 of the paper).
    Conflicted,
    /// Rewrite failed for another reason (e.g. quota exceeded writing
    /// outputs).
    Failed,
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobStatus::Succeeded => "succeeded",
            JobStatus::Conflicted => "conflicted",
            JobStatus::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// The transformation a rewrite job embedded (the engine-side twin of
/// the framework's `JobKind` — the two layers stay decoupled through
/// the connector, which maps between them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RewriteKind {
    /// Size-based bin-packing merge (the paper's compaction job).
    #[default]
    Merge,
    /// Sort data files by the table's sort column.
    Sort,
    /// Rebalance bytes evenly across partitions.
    Relayout,
    /// Apply and drop merge-on-read delete files.
    Purge,
}

impl RewriteKind {
    /// Stable human label, matching the framework's `JobKind::label`.
    pub fn label(&self) -> &'static str {
        match self {
            RewriteKind::Merge => "merge",
            RewriteKind::Sort => "sort-by-column",
            RewriteKind::Relayout => "partition-relayout",
            RewriteKind::Purge => "deletion-vector-purge",
        }
    }
}

impl fmt::Display for RewriteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One executed maintenance (compaction) job.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceRecord {
    /// Monotonic job id.
    pub job_id: u64,
    /// Table the job targeted.
    pub table: TableId,
    /// Human-readable scope, e.g. `"table"` or `"partition (d402)"`.
    pub scope: String,
    /// What triggered the job, e.g. `"periodic"` or `"after-write"`.
    pub trigger: String,
    /// Scheduling timestamp.
    pub scheduled_at_ms: u64,
    /// Completion timestamp.
    pub finished_at_ms: u64,
    /// Terminal status.
    pub status: JobStatus,
    /// The transformation the rewrite embedded.
    pub kind: RewriteKind,
    /// Predicted file-count reduction (the decide-phase ΔF).
    pub predicted_reduction: i64,
    /// Actual file-count reduction achieved.
    pub actual_reduction: i64,
    /// Predicted compute cost in GB·hours.
    pub predicted_gbhr: f64,
    /// Actual compute cost in GB·hours.
    pub actual_gbhr: f64,
}

/// Aggregated estimator-accuracy statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccuracySummary {
    /// Jobs included (succeeded only — conflicted jobs have no actuals).
    pub jobs: u64,
    /// Mean signed relative error of the reduction estimate
    /// (positive = over-estimate, the direction §7 reports: +28%).
    pub reduction_bias: f64,
    /// Mean signed relative error of the cost estimate
    /// (negative = under-estimate, §7 reports −19%).
    pub cost_bias: f64,
    /// Mean absolute percentage error of the reduction estimate.
    pub reduction_mape: f64,
    /// Mean absolute percentage error of the cost estimate.
    pub cost_mape: f64,
}

/// Append-only log of maintenance jobs.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceLog {
    records: Vec<MaintenanceRecord>,
    next_job_id: u64,
}

impl MaintenanceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next job id.
    pub fn next_job_id(&mut self) -> u64 {
        self.next_job_id += 1;
        self.next_job_id
    }

    /// Appends a record.
    pub fn push(&mut self, record: MaintenanceRecord) {
        self.records.push(record);
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[MaintenanceRecord] {
        &self.records
    }

    /// Records appended at or after position `cursor` (0-based index into
    /// [`records`](Self::records)) — the completion-polling primitive:
    /// keep a cursor, read the suffix, advance by its length. A cursor
    /// beyond the log yields an empty slice.
    pub fn records_from(&self, cursor: usize) -> &[MaintenanceRecord] {
        &self.records[cursor.min(self.records.len())..]
    }

    /// Records with the given status.
    pub fn with_status(&self, status: JobStatus) -> impl Iterator<Item = &MaintenanceRecord> {
        self.records.iter().filter(move |r| r.status == status)
    }

    /// Count of records with the given status.
    pub fn count(&self, status: JobStatus) -> u64 {
        self.with_status(status).count() as u64
    }

    /// Estimator accuracy over succeeded jobs (skips jobs whose actuals
    /// are zero to keep relative errors defined).
    pub fn accuracy(&self) -> AccuracySummary {
        let mut n = 0u64;
        let (mut rb, mut cb, mut rm, mut cm) = (0.0, 0.0, 0.0, 0.0);
        for r in self.with_status(JobStatus::Succeeded) {
            if r.actual_reduction == 0 || r.actual_gbhr <= 0.0 {
                continue;
            }
            n += 1;
            let red_err =
                (r.predicted_reduction - r.actual_reduction) as f64 / r.actual_reduction as f64;
            let cost_err = (r.predicted_gbhr - r.actual_gbhr) / r.actual_gbhr;
            rb += red_err;
            cb += cost_err;
            rm += red_err.abs();
            cm += cost_err.abs();
        }
        if n == 0 {
            return AccuracySummary::default();
        }
        let nf = n as f64;
        AccuracySummary {
            jobs: n,
            reduction_bias: rb / nf,
            cost_bias: cb / nf,
            reduction_mape: rm / nf,
            cost_mape: cm / nf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        job_id: u64,
        status: JobStatus,
        pred_red: i64,
        act_red: i64,
        pred_c: f64,
        act_c: f64,
    ) -> MaintenanceRecord {
        MaintenanceRecord {
            job_id,
            table: TableId(1),
            scope: "table".into(),
            trigger: "periodic".into(),
            scheduled_at_ms: 0,
            finished_at_ms: 10,
            status,
            kind: RewriteKind::Merge,
            predicted_reduction: pred_red,
            actual_reduction: act_red,
            predicted_gbhr: pred_c,
            actual_gbhr: act_c,
        }
    }

    #[test]
    fn status_counting() {
        let mut log = MaintenanceLog::new();
        let id = log.next_job_id();
        log.push(record(id, JobStatus::Succeeded, 10, 10, 1.0, 1.0));
        let id = log.next_job_id();
        log.push(record(id, JobStatus::Conflicted, 5, 0, 1.0, 0.5));
        assert_eq!(log.count(JobStatus::Succeeded), 1);
        assert_eq!(log.count(JobStatus::Conflicted), 1);
        assert_eq!(log.count(JobStatus::Failed), 0);
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn accuracy_reproduces_paper_biases() {
        // §7's example: cost 108 predicted vs 129 actual (−16% signed),
        // reduction over-estimated by 28%.
        let mut log = MaintenanceLog::new();
        let id = log.next_job_id();
        log.push(record(id, JobStatus::Succeeded, 128, 100, 108.0, 129.0));
        let a = log.accuracy();
        assert_eq!(a.jobs, 1);
        assert!(a.reduction_bias > 0.27 && a.reduction_bias < 0.29);
        assert!(a.cost_bias < -0.15 && a.cost_bias > -0.17);
        assert!(a.reduction_mape > 0.0);
    }

    #[test]
    fn conflicted_jobs_excluded_from_accuracy() {
        let mut log = MaintenanceLog::new();
        let id = log.next_job_id();
        log.push(record(id, JobStatus::Conflicted, 100, 0, 10.0, 2.0));
        assert_eq!(log.accuracy().jobs, 0);
    }

    #[test]
    fn records_from_reads_the_suffix() {
        let mut log = MaintenanceLog::new();
        for i in 0..3 {
            let id = log.next_job_id();
            log.push(record(id, JobStatus::Succeeded, i, i, 1.0, 1.0));
        }
        assert_eq!(log.records_from(0).len(), 3);
        assert_eq!(log.records_from(2).len(), 1);
        assert_eq!(log.records_from(2)[0].predicted_reduction, 2);
        assert!(log.records_from(3).is_empty());
        assert!(log.records_from(99).is_empty(), "past-end cursor is safe");
    }

    #[test]
    fn job_ids_are_monotonic() {
        let mut log = MaintenanceLog::new();
        let a = log.next_job_id();
        let b = log.next_job_id();
        assert!(b > a);
    }
}
