//! # lakesim-catalog
//!
//! An OpenHouse-like control plane for the simulated lake: a declarative
//! catalog of databases and tables, per-table maintenance policies, usage
//! tracking, a telemetry store, and a maintenance-job log.
//!
//! In the paper, OpenHouse "provides a declarative catalog for table
//! definitions, schema management, and metadata maintenance, along with
//! data services to reconcile observed and desired states" (§2), and it is
//! the control plane AutoComp plugs into (Fig. 5). The signals AutoComp
//! consumes all live here:
//!
//! * **Databases as tenants** with HDFS namespace quotas — the
//!   `UsedQuota/TotalQuota` ratio feeds the production MOOP weight
//!   `w1 = 0.5 × (1 + Used/Total)` (§7).
//! * **Table policies** — target file size, retention, whether compaction
//!   is enabled, and the "recently created" grace window used as a
//!   candidate filter (§4.1).
//! * **Usage tracking** — creation time, last read/write, and write
//!   frequency, feeding the conflict-avoidance filters (§4.1).
//! * **Maintenance log** — per-job predicted vs. actual benefit/cost, the
//!   data behind §7's "Model Accuracy and Estimation Errors".

#![warn(missing_docs)]

pub mod catalog;
pub mod database;
pub mod error;
pub mod maintenance;
pub mod policy;
pub mod telemetry;
pub mod usage;

pub use crate::catalog::{Catalog, CatalogTable};
pub use database::DatabaseEntry;
pub use error::CatalogError;
pub use maintenance::{AccuracySummary, JobStatus, MaintenanceLog, MaintenanceRecord, RewriteKind};
pub use policy::TablePolicy;
pub use telemetry::TelemetryStore;
pub use usage::TableUsage;

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, CatalogError>;
