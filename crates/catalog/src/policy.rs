//! Per-table maintenance policies.

use lakesim_storage::MB;

/// Declarative maintenance policy attached to each table, in the spirit of
/// OpenHouse table policies (§2: "a control plane that provides a
/// declarative catalog for table definitions, schema management, and
/// metadata maintenance").
#[derive(Debug, Clone, PartialEq)]
pub struct TablePolicy {
    /// Whether AutoComp may compact this table at all.
    pub compaction_enabled: bool,
    /// Target data-file size for compaction; LinkedIn uses 512MB (§2).
    pub target_file_size: u64,
    /// Minimum qualifying input files for a rewrite group.
    pub min_input_files: usize,
    /// Grace window after creation during which the table is skipped by
    /// candidate filters — "we ensure that tables are not compacted if they
    /// have been created recently, i.e., within a preset time window"
    /// (§4.1).
    pub min_age_ms: u64,
    /// Snapshot retention horizon for expiry, `None` = keep forever.
    pub snapshot_retention_ms: Option<u64>,
    /// Marks short-lived intermediate tables, filtered out so the
    /// "computation budget" is not spent on tables that "are not going to
    /// affect the long-term health of the system" (§4.1).
    pub is_intermediate: bool,
}

impl Default for TablePolicy {
    fn default() -> Self {
        TablePolicy {
            compaction_enabled: true,
            target_file_size: 512 * MB,
            min_input_files: 2,
            min_age_ms: 24 * 3600 * 1000,                      // one day
            snapshot_retention_ms: Some(3 * 24 * 3600 * 1000), // three days (§2)
            is_intermediate: false,
        }
    }
}

impl TablePolicy {
    /// Policy for a short-lived intermediate table.
    pub fn intermediate() -> Self {
        TablePolicy {
            is_intermediate: true,
            compaction_enabled: false,
            ..TablePolicy::default()
        }
    }

    /// Policy with a custom target file size.
    pub fn with_target(target_file_size: u64) -> Self {
        TablePolicy {
            target_file_size,
            ..TablePolicy::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_linkedin_deployment() {
        let p = TablePolicy::default();
        assert_eq!(p.target_file_size, 512 * MB);
        assert!(p.compaction_enabled);
        assert_eq!(p.snapshot_retention_ms, Some(259_200_000));
    }

    #[test]
    fn intermediate_tables_are_not_compacted() {
        let p = TablePolicy::intermediate();
        assert!(p.is_intermediate);
        assert!(!p.compaction_enabled);
    }

    #[test]
    fn custom_target() {
        let p = TablePolicy::with_target(128 * MB);
        assert_eq!(p.target_file_size, 128 * MB);
        assert!(p.compaction_enabled);
    }
}
