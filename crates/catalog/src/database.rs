//! Database (tenant) entries.

use std::collections::BTreeSet;

use lakesim_lst::TableId;

/// A database: a logical group of tables belonging to one tenant, mapped
/// 1:1 onto a storage namespace with an object quota (§7: "Each database
/// represents a logical group of tables associated with a specific
/// tenant").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseEntry {
    /// Database name; equals the storage namespace name.
    pub name: String,
    /// Owning tenant / line of business.
    pub tenant: String,
    /// Tables registered in this database.
    pub tables: BTreeSet<TableId>,
}

impl DatabaseEntry {
    /// Creates an empty database entry.
    pub fn new(name: impl Into<String>, tenant: impl Into<String>) -> Self {
        DatabaseEntry {
            name: name.into(),
            tenant: tenant.into(),
            tables: BTreeSet::new(),
        }
    }

    /// Number of registered tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_membership() {
        let mut db = DatabaseEntry::new("db_metrics", "growth-team");
        db.tables.insert(TableId(1));
        db.tables.insert(TableId(2));
        db.tables.insert(TableId(1));
        assert_eq!(db.table_count(), 2);
        assert_eq!(db.tenant, "growth-team");
    }
}
