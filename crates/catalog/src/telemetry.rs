//! Telemetry time series, standing in for the paper's Logs Analytics
//! monitoring ("we leveraged Logs Analytics to monitor telemetry data
//! across different services", §6).

use std::collections::BTreeMap;

/// A named collection of `(timestamp, value)` series.
#[derive(Debug, Clone, Default)]
pub struct TelemetryStore {
    series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl TelemetryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample to a metric series.
    pub fn record(&mut self, metric: &str, timestamp_ms: u64, value: f64) {
        self.series
            .entry(metric.to_string())
            .or_default()
            .push((timestamp_ms, value));
    }

    /// Full series for a metric, in recording order.
    pub fn series(&self, metric: &str) -> &[(u64, f64)] {
        self.series.get(metric).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Most recent sample of a metric.
    pub fn last(&self, metric: &str) -> Option<(u64, f64)> {
        self.series(metric).last().copied()
    }

    /// Metric names, sorted.
    pub fn metrics(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Min–max normalizes a series to `[0, 1]`, the presentation used by
    /// the paper's production charts (Figs. 10–11 all plot "Normalized
    /// Value"). Constant series normalize to 0.5.
    pub fn normalized(&self, metric: &str) -> Vec<(u64, f64)> {
        let s = self.series(metric);
        if s.is_empty() {
            return Vec::new();
        }
        let min = s.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let max = s.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
        let span = max - min;
        s.iter()
            .map(|(t, v)| {
                let n = if span.abs() < f64::EPSILON {
                    0.5
                } else {
                    (v - min) / span
                };
                (*t, n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_series() {
        let mut t = TelemetryStore::new();
        t.record("file_count", 0, 100.0);
        t.record("file_count", 10, 80.0);
        t.record("gbhr", 0, 1.5);
        assert_eq!(t.series("file_count").len(), 2);
        assert_eq!(t.last("file_count"), Some((10, 80.0)));
        assert_eq!(t.metrics(), vec!["file_count", "gbhr"]);
        assert!(t.series("missing").is_empty());
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let mut t = TelemetryStore::new();
        t.record("m", 0, 50.0);
        t.record("m", 1, 100.0);
        t.record("m", 2, 75.0);
        let n = t.normalized("m");
        assert_eq!(n[0].1, 0.0);
        assert_eq!(n[1].1, 1.0);
        assert!((n[2].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_series_normalize_to_half() {
        let mut t = TelemetryStore::new();
        t.record("m", 0, 7.0);
        t.record("m", 1, 7.0);
        assert!(t
            .normalized("m")
            .iter()
            .all(|(_, v)| (*v - 0.5).abs() < 1e-12));
        assert!(t.normalized("absent").is_empty());
    }
}
