//! Table usage tracking: the custom statistics of the observe phase.
//!
//! §4.1: "Custom statistics […] could include candidate access patterns and
//! usage metrics — information that may not be available in all systems."
//! The filters in §4.1 need creation time ("created recently") and recent
//! write activity ("undergone recent frequent writes to avoid potential
//! conflicts during compaction"); both are tracked here.

use std::collections::VecDeque;

/// Rolling usage statistics for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableUsage {
    /// Creation timestamp (simulation ms).
    pub created_at_ms: u64,
    /// Last write commit, if any.
    pub last_write_ms: Option<u64>,
    /// Last read, if any.
    pub last_read_ms: Option<u64>,
    /// Total write commits.
    pub total_writes: u64,
    /// Total reads.
    pub total_reads: u64,
    /// Timestamps of recent writes, pruned against `window_ms`.
    recent_writes: VecDeque<u64>,
    /// Length of the recent-write window.
    window_ms: u64,
}

impl TableUsage {
    /// Creates usage tracking for a table created at `created_at_ms`,
    /// keeping a rolling write window of `window_ms`.
    pub fn new(created_at_ms: u64, window_ms: u64) -> Self {
        TableUsage {
            created_at_ms,
            last_write_ms: None,
            last_read_ms: None,
            total_writes: 0,
            total_reads: 0,
            recent_writes: VecDeque::new(),
            window_ms,
        }
    }

    /// Records a write commit at `now_ms`.
    pub fn record_write(&mut self, now_ms: u64) {
        self.last_write_ms = Some(now_ms);
        self.total_writes += 1;
        self.recent_writes.push_back(now_ms);
        self.prune(now_ms);
    }

    /// Records a read at `now_ms`.
    pub fn record_read(&mut self, now_ms: u64) {
        self.last_read_ms = Some(now_ms);
        self.total_reads += 1;
    }

    /// Writes observed within the rolling window ending at `now_ms`.
    pub fn writes_in_window(&mut self, now_ms: u64) -> u64 {
        self.prune(now_ms);
        self.recent_writes.len() as u64
    }

    /// Read-only twin of [`writes_in_window`](Self::writes_in_window):
    /// counts against the cutoff without pruning, for shared (`&self`)
    /// readers like the batch-tier connector. Always agrees with the
    /// mutating version for the same `now_ms`.
    pub fn writes_in_window_at(&self, now_ms: u64) -> u64 {
        let cutoff = now_ms.saturating_sub(self.window_ms);
        self.recent_writes.iter().filter(|&&w| w >= cutoff).count() as u64
    }

    /// Write frequency in writes/hour over the rolling window.
    pub fn write_frequency_per_hour(&mut self, now_ms: u64) -> f64 {
        self.prune(now_ms);
        self.write_frequency_per_hour_at(now_ms)
    }

    /// Read-only twin of
    /// [`write_frequency_per_hour`](Self::write_frequency_per_hour) for
    /// shared readers; identical result, no pruning.
    pub fn write_frequency_per_hour_at(&self, now_ms: u64) -> f64 {
        let writes = self.writes_in_window_at(now_ms) as f64;
        let hours = self.window_ms as f64 / 3_600_000.0;
        if hours <= 0.0 {
            0.0
        } else {
            writes / hours
        }
    }

    /// Whether the table was created within `grace_ms` of `now_ms` —
    /// the §4.1 recently-created filter predicate.
    pub fn is_recently_created(&self, now_ms: u64, grace_ms: u64) -> bool {
        now_ms.saturating_sub(self.created_at_ms) < grace_ms
    }

    /// Whether a write landed within `quiet_ms` of `now_ms` — the §4.1
    /// recent-write-activity filter predicate (conflict avoidance).
    pub fn written_within(&self, now_ms: u64, quiet_ms: u64) -> bool {
        self.last_write_ms
            .is_some_and(|w| now_ms.saturating_sub(w) < quiet_ms)
    }

    fn prune(&mut self, now_ms: u64) {
        let cutoff = now_ms.saturating_sub(self.window_ms);
        while let Some(&front) = self.recent_writes.front() {
            if front < cutoff {
                self.recent_writes.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: u64 = 3_600_000;

    #[test]
    fn rolling_window_prunes_old_writes() {
        let mut u = TableUsage::new(0, HOUR);
        u.record_write(0);
        u.record_write(30 * 60_000);
        assert_eq!(u.writes_in_window(30 * 60_000), 2);
        // One hour later, only the second write is inside the window.
        assert_eq!(u.writes_in_window(HOUR + 60_000), 1);
        assert_eq!(u.total_writes, 2); // totals unaffected
    }

    #[test]
    fn recency_predicates() {
        let mut u = TableUsage::new(1000, HOUR);
        assert!(u.is_recently_created(1500, 1000));
        assert!(!u.is_recently_created(5000, 1000));
        assert!(!u.written_within(2000, 1000));
        u.record_write(1800);
        assert!(u.written_within(2000, 1000));
        assert!(!u.written_within(5000, 1000));
    }

    #[test]
    fn frequency_is_per_hour() {
        let mut u = TableUsage::new(0, 2 * HOUR);
        for i in 0..6 {
            u.record_write(i * 10 * 60_000);
        }
        let f = u.write_frequency_per_hour(60 * 60_000);
        assert!((f - 3.0).abs() < 1e-12, "{f}");
    }

    #[test]
    fn read_only_twins_agree_with_mutating_accessors() {
        let mut u = TableUsage::new(0, HOUR);
        for i in 0..5 {
            u.record_write(i * 20 * 60_000);
        }
        for now in [0, 30 * 60_000, HOUR, 2 * HOUR, 3 * HOUR] {
            let frozen = u.clone();
            assert_eq!(frozen.writes_in_window_at(now), u.writes_in_window(now));
            assert_eq!(
                frozen.write_frequency_per_hour_at(now),
                u.write_frequency_per_hour(now)
            );
        }
    }

    #[test]
    fn reads_tracked_independently() {
        let mut u = TableUsage::new(0, HOUR);
        u.record_read(100);
        u.record_read(200);
        assert_eq!(u.total_reads, 2);
        assert_eq!(u.last_read_ms, Some(200));
        assert_eq!(u.total_writes, 0);
    }
}
