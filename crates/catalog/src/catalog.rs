//! The catalog: registry of databases and tables.

use std::collections::BTreeMap;

use crate::database::DatabaseEntry;
use crate::error::CatalogError;
use crate::policy::TablePolicy;
use crate::usage::TableUsage;
use crate::Result;
use lakesim_lst::{PartitionSpec, Schema, Table, TableId, TableProperties};

/// Default rolling window for write-frequency tracking: one hour.
const USAGE_WINDOW_MS: u64 = 3_600_000;

/// A table plus its control-plane state.
#[derive(Debug, Clone)]
pub struct CatalogTable {
    /// The LST table itself.
    pub table: Table,
    /// Maintenance policy.
    pub policy: TablePolicy,
    /// Usage statistics.
    pub usage: TableUsage,
}

/// The catalog of databases and tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    databases: BTreeMap<String, DatabaseEntry>,
    tables: BTreeMap<TableId, CatalogTable>,
    by_name: BTreeMap<(String, String), TableId>,
    next_table_id: u64,
    /// Registry epoch: bumped by every create, drop, and policy edit —
    /// exactly the events that can change what a fleet *listing* (table
    /// descriptors + policy flags) looks like. Deliberately **not**
    /// bumped by data commits or usage tracking (which flow through
    /// [`table_mut`](Self::table_mut) on every write), so an unchanged
    /// epoch lets observers reuse the prior cycle's listing wholesale.
    /// Policy edits must go through [`set_policy`](Self::set_policy) /
    /// [`update_policy`](Self::update_policy) to be counted.
    registry_epoch: u64,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog {
            databases: BTreeMap::new(),
            tables: BTreeMap::new(),
            by_name: BTreeMap::new(),
            next_table_id: 1,
            registry_epoch: 0,
        }
    }

    /// Current registry epoch (see the field docs for what bumps it).
    /// Connectors surface this as their listing epoch: an unchanged
    /// value guarantees an identical table listing.
    pub fn registry_epoch(&self) -> u64 {
        self.registry_epoch
    }

    /// Registers a database.
    pub fn create_database(&mut self, name: &str, tenant: &str) -> Result<()> {
        if self.databases.contains_key(name) {
            return Err(CatalogError::DatabaseExists(name.to_string()));
        }
        self.registry_epoch += 1;
        self.databases
            .insert(name.to_string(), DatabaseEntry::new(name, tenant));
        Ok(())
    }

    /// Creates and registers a table, validating the schema/spec pairing.
    #[allow(clippy::too_many_arguments)]
    pub fn create_table(
        &mut self,
        database: &str,
        name: &str,
        schema: Schema,
        spec: PartitionSpec,
        properties: TableProperties,
        policy: TablePolicy,
        now_ms: u64,
    ) -> Result<TableId> {
        if !self.databases.contains_key(database) {
            return Err(CatalogError::DatabaseNotFound(database.to_string()));
        }
        let key = (database.to_string(), name.to_string());
        if self.by_name.contains_key(&key) {
            return Err(CatalogError::TableExists {
                database: database.to_string(),
                table: name.to_string(),
            });
        }
        schema
            .validate_spec(&spec)
            .map_err(|e| CatalogError::InvalidTable(e.to_string()))?;
        let id = TableId(self.next_table_id);
        self.next_table_id += 1;
        self.registry_epoch += 1;
        let table = Table::new(id, name, database, schema, spec, properties, now_ms);
        self.tables.insert(
            id,
            CatalogTable {
                table,
                policy,
                usage: TableUsage::new(now_ms, USAGE_WINDOW_MS),
            },
        );
        self.databases
            .get_mut(database)
            .expect("checked above")
            .tables
            .insert(id);
        self.by_name.insert(key, id);
        Ok(id)
    }

    /// Drops a table, returning its final state so the engine can reclaim
    /// the physical files.
    pub fn drop_table(&mut self, id: TableId) -> Result<CatalogTable> {
        let entry = self
            .tables
            .remove(&id)
            .ok_or(CatalogError::TableNotFound(id))?;
        self.registry_epoch += 1;
        let db = entry.table.database().to_string();
        let name = entry.table.name().to_string();
        if let Some(d) = self.databases.get_mut(&db) {
            d.tables.remove(&id);
        }
        self.by_name.remove(&(db, name));
        Ok(entry)
    }

    /// Resolves a table by qualified name.
    pub fn resolve(&self, database: &str, name: &str) -> Option<TableId> {
        self.by_name
            .get(&(database.to_string(), name.to_string()))
            .copied()
    }

    /// Immutable access to a table entry.
    pub fn table(&self, id: TableId) -> Result<&CatalogTable> {
        self.tables.get(&id).ok_or(CatalogError::TableNotFound(id))
    }

    /// Mutable access to a table entry — for data commits and usage
    /// tracking. Do **not** edit `entry.policy` through this accessor:
    /// it leaves the registry epoch unchanged, so listing-epoch-driven
    /// observers would keep serving the stale descriptor. Use
    /// [`set_policy`](Self::set_policy) /
    /// [`update_policy`](Self::update_policy) instead.
    pub fn table_mut(&mut self, id: TableId) -> Result<&mut CatalogTable> {
        self.tables
            .get_mut(&id)
            .ok_or(CatalogError::TableNotFound(id))
    }

    /// Replaces a table's maintenance policy, bumping the registry
    /// epoch so listing-epoch observers re-list the fleet.
    pub fn set_policy(&mut self, id: TableId, policy: TablePolicy) -> Result<()> {
        let entry = self
            .tables
            .get_mut(&id)
            .ok_or(CatalogError::TableNotFound(id))?;
        entry.policy = policy;
        self.registry_epoch += 1;
        Ok(())
    }

    /// Edits a table's maintenance policy in place (e.g. flip
    /// `compaction_enabled`, retune `target_file_size`), bumping the
    /// registry epoch.
    pub fn update_policy(
        &mut self,
        id: TableId,
        edit: impl FnOnce(&mut TablePolicy),
    ) -> Result<()> {
        let entry = self
            .tables
            .get_mut(&id)
            .ok_or(CatalogError::TableNotFound(id))?;
        edit(&mut entry.policy);
        self.registry_epoch += 1;
        Ok(())
    }

    /// All table ids, ascending (deterministic iteration for NFR2).
    pub fn table_ids(&self) -> Vec<TableId> {
        self.tables.keys().copied().collect()
    }

    /// All database entries, by name.
    pub fn databases(&self) -> impl Iterator<Item = &DatabaseEntry> {
        self.databases.values()
    }

    /// One database entry.
    pub fn database(&self, name: &str) -> Result<&DatabaseEntry> {
        self.databases
            .get(name)
            .ok_or_else(|| CatalogError::DatabaseNotFound(name.to_string()))
    }

    /// Table ids in one database, ascending.
    pub fn tables_in_database(&self, name: &str) -> Result<Vec<TableId>> {
        Ok(self.database(name)?.tables.iter().copied().collect())
    }

    /// Number of registered tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakesim_lst::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::new(vec![Field::new(1, "k", ColumnType::Int64, true)]).unwrap()
    }

    fn catalog_with_table() -> (Catalog, TableId) {
        let mut c = Catalog::new();
        c.create_database("db1", "tenant-a").unwrap();
        let id = c
            .create_table(
                "db1",
                "events",
                schema(),
                PartitionSpec::unpartitioned(),
                TableProperties::default(),
                TablePolicy::default(),
                100,
            )
            .unwrap();
        (c, id)
    }

    #[test]
    fn create_resolve_drop_lifecycle() {
        let (mut c, id) = catalog_with_table();
        assert_eq!(c.resolve("db1", "events"), Some(id));
        assert_eq!(c.table(id).unwrap().table.name(), "events");
        assert_eq!(c.tables_in_database("db1").unwrap(), vec![id]);
        let dropped = c.drop_table(id).unwrap();
        assert_eq!(dropped.table.id(), id);
        assert_eq!(c.resolve("db1", "events"), None);
        assert!(c.table(id).is_err());
        assert_eq!(c.database("db1").unwrap().table_count(), 0);
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut c, _) = catalog_with_table();
        let err = c
            .create_table(
                "db1",
                "events",
                schema(),
                PartitionSpec::unpartitioned(),
                TableProperties::default(),
                TablePolicy::default(),
                0,
            )
            .unwrap_err();
        assert!(matches!(err, CatalogError::TableExists { .. }));
        assert!(matches!(
            c.create_database("db1", "x"),
            Err(CatalogError::DatabaseExists(_))
        ));
    }

    #[test]
    fn unknown_database_rejected() {
        let mut c = Catalog::new();
        let err = c
            .create_table(
                "missing",
                "t",
                schema(),
                PartitionSpec::unpartitioned(),
                TableProperties::default(),
                TablePolicy::default(),
                0,
            )
            .unwrap_err();
        assert!(matches!(err, CatalogError::DatabaseNotFound(_)));
    }

    #[test]
    fn invalid_spec_rejected() {
        let mut c = Catalog::new();
        c.create_database("db", "t").unwrap();
        let err = c
            .create_table(
                "db",
                "t",
                schema(),
                PartitionSpec::single(9, lakesim_lst::Transform::Identity, "x"),
                TableProperties::default(),
                TablePolicy::default(),
                0,
            )
            .unwrap_err();
        assert!(matches!(err, CatalogError::InvalidTable(_)));
    }

    #[test]
    fn registry_epoch_tracks_create_drop_and_policy_edits() {
        let (mut c, id) = catalog_with_table();
        let e0 = c.registry_epoch();
        // Data-plane mutation through table_mut: epoch unchanged.
        c.table_mut(id).unwrap().usage.record_write(5);
        assert_eq!(c.registry_epoch(), e0);
        // Policy edits bump.
        c.update_policy(id, |p| p.compaction_enabled = false)
            .unwrap();
        assert_eq!(c.registry_epoch(), e0 + 1);
        assert!(!c.table(id).unwrap().policy.compaction_enabled);
        c.set_policy(id, TablePolicy::default()).unwrap();
        assert_eq!(c.registry_epoch(), e0 + 2);
        // Create + drop bump.
        c.create_table(
            "db1",
            "t2",
            schema(),
            PartitionSpec::unpartitioned(),
            TableProperties::default(),
            TablePolicy::default(),
            0,
        )
        .unwrap();
        assert_eq!(c.registry_epoch(), e0 + 3);
        c.drop_table(id).unwrap();
        assert_eq!(c.registry_epoch(), e0 + 4);
        // Unknown tables are errors, not silent epoch churn.
        let before = c.registry_epoch();
        assert!(c.set_policy(TableId(99), TablePolicy::default()).is_err());
        assert!(c.update_policy(TableId(99), |_| {}).is_err());
        assert_eq!(c.registry_epoch(), before);
    }

    #[test]
    fn ids_are_sequential_and_sorted() {
        let mut c = Catalog::new();
        c.create_database("db", "t").unwrap();
        for i in 0..5 {
            c.create_table(
                "db",
                &format!("t{i}"),
                schema(),
                PartitionSpec::unpartitioned(),
                TableProperties::default(),
                TablePolicy::default(),
                0,
            )
            .unwrap();
        }
        let ids = c.table_ids();
        assert_eq!(ids.len(), 5);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(c.table_count(), 5);
    }
}
