//! Output helpers shared by the experiment binaries.

/// Renders an aligned plain-text table (re-exported from the core crate's
/// report module so all output shares one look).
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    autocomp::report::render_table(headers, rows)
}

/// Prints a `(x, y)` series as two aligned columns under a title.
pub fn series_u64(title: &str, x_label: &str, y_label: &str, points: &[(u64, u64)]) {
    println!("## {title}");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(x, y)| vec![x.to_string(), y.to_string()])
        .collect();
    println!("{}", table(&[x_label, y_label], &rows));
}

/// Prints a `(x, f64)` series with three decimals.
pub fn series_f64(title: &str, x_label: &str, y_label: &str, points: &[(u64, f64)]) {
    println!("## {title}");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(x, y)| vec![x.to_string(), format!("{y:.3}")])
        .collect();
    println!("{}", table(&[x_label, y_label], &rows));
}

/// Min–max normalizes values to `[0,1]` (constant series → 0.5), matching
/// the "Normalized Value" axes of the paper's Figs. 10–11.
pub fn normalize(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|v| {
            if span.abs() < f64::EPSILON {
                0.5
            } else {
                (v - min) / span
            }
        })
        .collect()
}

/// Centered moving average used for the "smoothed" curves of Fig. 11a.
pub fn smooth(values: &[f64], window: usize) -> Vec<f64> {
    if values.is_empty() || window <= 1 {
        return values.to_vec();
    }
    let half = window / 2;
    (0..values.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(values.len());
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Formats milliseconds as seconds with one decimal.
pub fn ms_to_s(ms: f64) -> String {
    format!("{:.1}", ms / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_and_smooth() {
        assert_eq!(normalize(&[1.0, 3.0, 2.0]), vec![0.0, 1.0, 0.5]);
        assert_eq!(normalize(&[2.0, 2.0]), vec![0.5, 0.5]);
        let s = smooth(&[0.0, 10.0, 0.0], 3);
        assert!((s[1] - 10.0 / 3.0).abs() < 1e-9);
        assert_eq!(smooth(&[1.0, 2.0], 1), vec![1.0, 2.0]);
    }

    #[test]
    fn formatting() {
        assert_eq!(ms_to_s(1500.0), "1.5");
        let t = table(&["a"], &[vec!["1".to_string()]]);
        assert!(t.contains('a'));
    }
}
