//! # autocomp-bench
//!
//! Experiment harnesses regenerating every table and figure of the
//! AutoComp paper's evaluation (§2, §6, §7), plus ablations of the design
//! choices DESIGN.md calls out. Each `src/bin/*.rs` binary runs one
//! experiment and prints the same rows/series the paper reports;
//! `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! The harness code lives in [`experiments`] so integration tests can run
//! scaled-down versions of the same code paths the binaries use.

pub mod experiments;
pub mod print;

pub use experiments::cab::{run_cab, CabExperimentConfig, CabRunResult, Strategy};
pub use experiments::fig3::{run_fig3, Fig3Config, Fig3Result};
pub use experiments::production::{
    run_fig10ab, run_fig11a, run_fig2, run_production_timeline, Fig2Result, RolloutResult,
    TimelineConfig, TimelineResult, WorkloadMetricsResult,
};
pub use experiments::tuning::{run_fig9_panel, TunePanelResult, TuneTrait, TuneWorkload};
