//! Ablation: Strict (Iceberg v1.2.0) vs PartitionAware conflict
//! resolution (§4.4 / DESIGN.md §5).
//!
//! The paper observed that "compaction operations executed concurrently
//! could result in conflicts when targeting distinct partitions within a
//! table" and worked around it by scheduling sequentially. This ablation
//! quantifies what precise partition-level conflict filtering would buy:
//! fewer dropped jobs and less wasted compute.

use autocomp::ScopeStrategy;
use autocomp_bench::experiments::cab::{run_cab, CabExperimentConfig, SchedulerKind, Strategy};
use autocomp_bench::print;
use lakesim_lst::ConflictMode;

fn main() {
    println!("# Ablation — conflict model x scheduler (hybrid top-500)\n");
    let mut rows = Vec::new();
    for (mode, mode_label) in [
        (ConflictMode::Strict, "strict (v1.2.0)"),
        (ConflictMode::PartitionAware, "partition-aware"),
    ] {
        for (scheduler, sched_label) in [
            (SchedulerKind::ParallelTables, "sequential partitions"),
            (SchedulerKind::AllParallel, "all parallel"),
        ] {
            let mut config = CabExperimentConfig::from_env(
                13,
                Strategy::Moop {
                    scope: ScopeStrategy::Hybrid,
                    k: 500,
                },
            );
            config.cab.conflict_mode = mode;
            config.scheduler = scheduler;
            let r = run_cab(&config);
            rows.push(vec![
                mode_label.to_string(),
                sched_label.to_string(),
                r.jobs_succeeded.to_string(),
                r.jobs_conflicted.to_string(),
                r.files_reduced.to_string(),
                format!("{:.2}", r.total_compaction_gbhr),
            ]);
        }
    }
    println!(
        "{}",
        print::table(
            &[
                "conflict model",
                "scheduler",
                "jobs ok",
                "jobs conflicted",
                "files reduced",
                "total GBHr",
            ],
            &rows
        )
    );
    println!("expected shape: strict + all-parallel drops same-table partition jobs");
    println!("(the §4.4 observation); partition-aware tolerates parallelism; the");
    println!("sequential scheduler avoids conflicts under either model.");
}
