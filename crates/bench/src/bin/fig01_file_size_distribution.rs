//! Figure 1: file size distribution for ingested data — raw ingestion vs
//! user-derived data (§2).
//!
//! The managed pipeline writes ~512MB files; end-user Spark/Trino/Flink
//! jobs are "neither designed nor tuned for generating optimal file
//! sizes, resulting in a high concentration of small files".

use autocomp_bench::print;
use lakesim_engine::SimRng;
use lakesim_storage::{SizeHistogram, MB};
use lakesim_workload::ingestion::{sample_raw_sizes, sample_user_derived_sizes};

fn main() {
    let mut rng = SimRng::seed_from_u64(1);
    let n = 20_000;
    let raw = sample_raw_sizes(&mut rng, n);
    let derived = sample_user_derived_sizes(&mut rng, n);

    let hist = |sizes: &[u64]| {
        let mut h = SizeHistogram::new();
        for s in sizes {
            h.record(*s);
        }
        h
    };
    let raw_h = hist(&raw);
    let derived_h = hist(&derived);

    println!("# Figure 1 — file size distribution: raw ingestion vs user-derived");
    println!("# {n} files sampled per source, fractions per size bucket\n");
    let rows: Vec<Vec<String>> = (0..raw_h.counts().len())
        .map(|i| {
            vec![
                raw_h.bucket_label(i),
                format!("{:.3}", raw_h.fractions()[i]),
                format!("{:.3}", derived_h.fractions()[i]),
            ]
        })
        .collect();
    println!(
        "{}",
        print::table(&["bucket", "raw ingestion", "user-derived"], &rows)
    );
    println!(
        "fraction < 128MB: raw {:.3} | user-derived {:.3}",
        raw_h.fraction_at_or_below(128 * MB),
        derived_h.fraction_at_or_below(128 * MB)
    );
    println!("\npaper shape: raw concentrated at ~512MB; user-derived heavily below 128MB");
}
