//! Figure 8: impact of compaction on query latency (§6.2).
//!
//! Per-hour candlesticks (min/p25/median/p75/max) of read-only and
//! read-write query execution times, for no compaction vs MOOP(table,
//! top-10) vs MOOP(hybrid, top-500).

use autocomp::ScopeStrategy;
use autocomp_bench::experiments::cab::{run_cab, CabExperimentConfig, Strategy};
use autocomp_bench::print;
use lakesim_engine::Candlestick;

fn candle_cells(c: &Option<Candlestick>) -> Vec<String> {
    match c {
        Some(c) => vec![
            format!("{:.1}", c.min / 1000.0),
            format!("{:.1}", c.p25 / 1000.0),
            format!("{:.1}", c.median / 1000.0),
            format!("{:.1}", c.p75 / 1000.0),
            format!("{:.1}", c.max / 1000.0),
            c.count.to_string(),
        ],
        None => vec![
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "0".into(),
        ],
    }
}

fn main() {
    println!("# Figure 8 — hourly query-latency candlesticks (seconds)\n");
    let strategies = vec![
        Strategy::NoCompaction,
        Strategy::Moop {
            scope: ScopeStrategy::Table,
            k: 10,
        },
        Strategy::Moop {
            scope: ScopeStrategy::Hybrid,
            k: 500,
        },
    ];
    for strategy in strategies {
        let config = CabExperimentConfig::from_env(8, strategy);
        let r = run_cab(&config);
        for (class, pick) in [("read-only", true), ("read-write", false)] {
            println!("## {} — {}", r.label, class);
            let rows: Vec<Vec<String>> = r
                .hourly
                .iter()
                .map(|h| {
                    let mut row = vec![h.hour.to_string()];
                    row.extend(candle_cells(if pick {
                        &h.read_only
                    } else {
                        &h.read_write
                    }));
                    row
                })
                .collect();
            println!(
                "{}",
                print::table(&["hour", "min", "p25", "median", "p75", "max", "n"], &rows)
            );
        }
        println!(
            "makespan: {:.1} min (paper: baseline overruns the 5h budget by ~25 min)\n",
            r.makespan_ms as f64 / 60_000.0
        );
    }
    println!("paper shape: similar in hour 1; from hour 2 compaction lowers and tightens");
    println!("latencies, fastest under the aggressive table-top10 strategy.");
}
