//! §7 "Model Accuracy and Estimation Errors": predicted vs actual file
//! count reduction and compute cost.
//!
//! Paper: one task's cost was under-estimated by 19% while its file-count
//! reduction was over-estimated by 28%, "particularly in accounting for
//! partition boundaries, as table-level estimates may overestimate the
//! number of small files that can be merged, since compaction does not
//! cross partitions". This binary compares the naive table-level ΔF
//! estimator with the partition-aware planned estimator.

use autocomp_bench::experiments::production::{run_estimator_accuracy, ProductionScale};
use autocomp_bench::print;

fn main() {
    let (scale, days) = match std::env::var("AUTOCOMP_SCALE").as_deref() {
        Ok("test") => (ProductionScale::test_scale(12), 4),
        _ => (ProductionScale::paper_scale(12), 8),
    };
    let (naive, planned) = run_estimator_accuracy(&scale, days);

    println!("# §7 estimator accuracy — naive vs partition-aware ΔF\n");
    let row = |label: &str, a: &lakesim_catalog::AccuracySummary| {
        vec![
            label.to_string(),
            a.jobs.to_string(),
            format!("{:+.1}%", a.reduction_bias * 100.0),
            format!("{:.1}%", a.reduction_mape * 100.0),
            format!("{:+.1}%", a.cost_bias * 100.0),
            format!("{:.1}%", a.cost_mape * 100.0),
        ]
    };
    println!(
        "{}",
        print::table(
            &[
                "estimator",
                "jobs",
                "ΔF bias",
                "ΔF MAPE",
                "cost bias",
                "cost MAPE",
            ],
            &[
                row("naive table-level", &naive),
                row("partition-aware", &planned)
            ]
        )
    );
    println!("paper: ΔF over-estimated by ~28%, cost under-estimated by ~19%; the");
    println!("partition-aware refinement (suggested in §7) removes most of the ΔF bias.");
}
