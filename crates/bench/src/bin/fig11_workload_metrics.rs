//! Figure 11: impact of AutoComp on workload metrics (§7): (a) daily
//! files-scanned / query cost / query time / files-reduced sawtooth,
//! (b) monthly HDFS open() calls across compaction onsets.

use autocomp_bench::experiments::production::{
    run_fig11a, run_production_timeline, ProductionScale, TimelineConfig,
};
use autocomp_bench::print;

fn main() {
    // Fig. 11a tracks the tables AutoComp actually works on ("1291 unique
    // tables chosen by AutoComp for compaction over the most recent 30-day
    // window"), so the daily scan workload covers the whole candidate
    // fleet and k is sized so each table is revisited every few days —
    // the recurrence behind the sawtooth.
    let (scale, days, scan_tables, timeline) = match std::env::var("AUTOCOMP_SCALE").as_deref() {
        Ok("test") => (
            ProductionScale::test_scale(11),
            10,
            18,
            TimelineConfig::test_scale(11),
        ),
        _ => {
            let mut scale = ProductionScale::paper_scale(11);
            scale.fleet.databases = 4;
            scale.fleet.tables_per_db = 15;
            scale.auto_k = 20;
            (scale, 30, 60, TimelineConfig::paper_scale(11))
        }
    };

    println!("# Figure 11a — daily workload metrics (smoothed, normalized)\n");
    let r = run_fig11a(&scale, days, scan_tables);
    let scanned: Vec<f64> = r.daily.iter().map(|d| d.files_scanned as f64).collect();
    let time: Vec<f64> = r.daily.iter().map(|d| d.query_time_ms).collect();
    let cost: Vec<f64> = r.daily.iter().map(|d| d.query_gbhr).collect();
    let reduced: Vec<f64> = r.daily.iter().map(|d| d.files_reduced as f64).collect();
    let smooth_norm = |v: &[f64]| print::normalize(&print::smooth(v, 3));
    let (s_n, t_n, c_n, r_n) = (
        smooth_norm(&scanned),
        smooth_norm(&time),
        smooth_norm(&cost),
        smooth_norm(&reduced),
    );
    let rows: Vec<Vec<String>> = r
        .daily
        .iter()
        .enumerate()
        .map(|(i, d)| {
            vec![
                d.day.to_string(),
                format!("{:.3}", s_n[i]),
                format!("{:.3}", c_n[i]),
                format!("{:.3}", t_n[i]),
                format!("{:.3}", r_n[i]),
                d.files_scanned.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        print::table(
            &[
                "day",
                "files scanned",
                "query cost",
                "query time",
                "files reduced",
                "(raw scanned)",
            ],
            &rows
        )
    );

    println!("\n# Figure 11b — monthly HDFS open() calls vs deployment size\n");
    let t = run_production_timeline(&timeline);
    let opens: Vec<f64> = t.monthly.iter().map(|m| m.opens as f64).collect();
    let tables: Vec<f64> = t
        .monthly
        .iter()
        .map(|m| m.deployment_tables as f64)
        .collect();
    let opens_n = print::normalize(&opens);
    let tables_n = print::normalize(&tables);
    let rows: Vec<Vec<String>> = t
        .monthly
        .iter()
        .enumerate()
        .map(|(i, m)| {
            vec![
                m.month.to_string(),
                m.regime.clone(),
                m.opens.to_string(),
                format!("{:.3}", opens_n[i]),
                format!("{:.3}", tables_n[i]),
            ]
        })
        .collect();
    println!(
        "{}",
        print::table(
            &[
                "month",
                "regime",
                "open() calls",
                "(norm)",
                "deployment (norm)"
            ],
            &rows
        )
    );
    println!("\npaper shape: (a) files-scanned/cost/time move together, sawtooth as");
    println!("unselected tables re-fragment; (b) open() calls drop at the manual onset");
    println!("and again under auto compaction despite deployment growth.");
}
