//! Ablation: act-phase schedulers (§4.4 / DESIGN.md §5) under the strict
//! conflict model — how much the "sequential partitions" arrangement of
//! §6 actually matters.

use autocomp::ScopeStrategy;
use autocomp_bench::experiments::cab::{run_cab, CabExperimentConfig, SchedulerKind, Strategy};
use autocomp_bench::print;

fn main() {
    println!("# Ablation — schedulers (strict conflict model, hybrid top-500)\n");
    let mut rows = Vec::new();
    for (scheduler, label) in [
        (
            SchedulerKind::ParallelTables,
            "parallel tables / sequential partitions",
        ),
        (SchedulerKind::AllParallel, "all parallel"),
        (SchedulerKind::StrictSequential, "strict sequential"),
    ] {
        let mut config = CabExperimentConfig::from_env(
            15,
            Strategy::Moop {
                scope: ScopeStrategy::Hybrid,
                k: 500,
            },
        );
        config.scheduler = scheduler;
        let r = run_cab(&config);
        let final_files = r.file_count_series.last().map(|(_, v)| *v).unwrap_or(0);
        rows.push(vec![
            label.to_string(),
            r.jobs_succeeded.to_string(),
            r.jobs_conflicted.to_string(),
            r.files_reduced.to_string(),
            final_files.to_string(),
            format!("{:.2}", r.total_compaction_gbhr),
        ]);
    }
    println!(
        "{}",
        print::table(
            &[
                "scheduler",
                "jobs ok",
                "jobs conflicted",
                "files reduced",
                "final file count",
                "total GBHr",
            ],
            &rows
        )
    );
    println!("expected shape: all-parallel loses same-table partition jobs to strict-mode");
    println!("conflicts and wastes their GBHr; sequential partitions avoids that at the");
    println!("cost of slower wall-clock progress; strict sequential is safest but slowest.");
}
