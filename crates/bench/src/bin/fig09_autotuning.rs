//! Figure 9: auto-tuning compaction triggers (§6.3).
//!
//! Four panels: (a) TPC-DS WP1 tuned on small-file count, (b) TPC-H on
//! small-file count, (c) TPC-DS WP1 on file entropy, (d) TPC-DS WP3 on
//! small-file count. y = end-to-end duration per tuning iteration.

use autocomp_bench::experiments::tuning::{run_fig9_panel, TuneTrait, TuneWorkload};
use autocomp_bench::print;

fn main() {
    let iterations = match std::env::var("AUTOCOMP_SCALE").as_deref() {
        Ok("test") => 6,
        _ => 20,
    };
    let panels = vec![
        ("(a)", TuneWorkload::TpcdsWp1, TuneTrait::SmallFileCount),
        ("(b)", TuneWorkload::Tpch, TuneTrait::SmallFileCount),
        ("(c)", TuneWorkload::TpcdsWp1, TuneTrait::FileEntropy),
        ("(d)", TuneWorkload::TpcdsWp3, TuneTrait::SmallFileCount),
    ];
    println!("# Figure 9 — auto-tuning compaction trigger thresholds\n");
    for (tag, workload, tune_trait) in panels {
        let panel = run_fig9_panel(workload, tune_trait, iterations, 9);
        println!(
            "## {tag} {} / trigger: {} — default (no compaction): {:.1}s",
            panel.workload, panel.trait_name, panel.default_duration_s
        );
        let rows: Vec<Vec<String>> = panel
            .trials
            .iter()
            .map(|(i, threshold, duration)| {
                vec![
                    i.to_string(),
                    format!("{threshold:.2}"),
                    format!("{duration:.1}"),
                ]
            })
            .collect();
        println!(
            "{}",
            print::table(&["iteration", "threshold", "duration (s)"], &rows)
        );
        println!(
            "best tuned: {:.1}s ({:+.1}% vs default)\n",
            panel.best_duration_s,
            (panel.best_duration_s / panel.default_duration_s - 1.0) * 100.0
        );
    }
    println!("paper shape: WP1 gains up to 2x when tuned; TPC-H default wins; WP3 sees");
    println!("consistent benefits; count- and entropy-based triggers are comparable.");
}
