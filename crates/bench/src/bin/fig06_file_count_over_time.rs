//! Figure 6: compaction strategy impact on file count over time (§6.1).
//!
//! Paper: without compaction the file count climbs steadily (~2,640
//! files/hour); every strategy cuts it sharply, table-scope fastest,
//! hybrid more gradually and controlled.

use autocomp_bench::experiments::cab::{paper_strategies, run_cab, CabExperimentConfig};
use autocomp_bench::print;

fn main() {
    println!("# Figure 6 — file count over time per compaction strategy\n");
    let mut columns = Vec::new();
    for strategy in paper_strategies() {
        let config = CabExperimentConfig::from_env(6, strategy);
        let result = run_cab(&config);
        eprintln!(
            "[{}] jobs ok={} conflicted={} reduced={} makespan={}s",
            result.label,
            result.jobs_succeeded,
            result.jobs_conflicted,
            result.files_reduced,
            result.makespan_ms / 1000
        );
        columns.push(result);
    }
    // All strategies share the sampling grid of the first run.
    let grid: Vec<u64> = columns[0]
        .file_count_series
        .iter()
        .map(|(t, _)| *t)
        .collect();
    let mut rows = Vec::new();
    for (i, t) in grid.iter().enumerate() {
        let mut row = vec![format!("{:.2}", *t as f64 / 3_600_000.0)];
        for c in &columns {
            row.push(
                c.file_count_series
                    .get(i)
                    .map(|(_, v)| v.to_string())
                    .unwrap_or_default(),
            );
        }
        rows.push(row);
    }
    let labels: Vec<String> = columns.iter().map(|c| c.label.clone()).collect();
    let headers: Vec<&str> = std::iter::once("hour")
        .chain(labels.iter().map(String::as_str))
        .collect();
    println!("{}", print::table(&headers, &rows));
    println!("paper shape: baseline grows steadily; compaction drops sharply then flattens;");
    println!("hybrid declines more gradually than table scope.");
}
