//! Ablation: ranking policies (§4.3 / §7 / DESIGN.md §5) — threshold vs
//! MOOP vs budgeted dynamic-k vs quota-aware weighting, on the same fleet.

use autocomp::{RankingPolicy, TraitWeight};
use autocomp_bench::experiments::production::{auto_cycle, production_pipeline, ProductionScale};
use autocomp_bench::print;
use lakesim_catalog::JobStatus;
use lakesim_engine::AppKind;
use lakesim_workload::fleet::{Fleet, FleetConfig};

fn policies() -> Vec<(&'static str, RankingPolicy)> {
    vec![
        (
            "threshold ΔF>=20",
            RankingPolicy::Threshold {
                trait_name: "file_count_reduction".to_string(),
                min_value: 20.0,
                max_k: Some(50),
            },
        ),
        (
            "moop top-5",
            RankingPolicy::Moop {
                weights: vec![
                    TraitWeight::new("file_count_reduction", 0.7),
                    TraitWeight::new("compute_cost_gbhr", 0.3),
                ],
                k: 5,
            },
        ),
        (
            "budgeted 10 GBHr",
            RankingPolicy::BudgetedMoop {
                weights: vec![
                    TraitWeight::new("file_count_reduction", 0.7),
                    TraitWeight::new("compute_cost_gbhr", 0.3),
                ],
                cost_trait: "compute_cost_gbhr".to_string(),
                budget: 10.0,
                max_k: None,
            },
        ),
        (
            "quota-aware top-5",
            RankingPolicy::QuotaAwareMoop {
                benefit_trait: "file_count_reduction".to_string(),
                cost_trait: "compute_cost_gbhr".to_string(),
                k: Some(5),
                budget: None,
            },
        ),
    ]
}

fn main() {
    let (scale, days) = match std::env::var("AUTOCOMP_SCALE").as_deref() {
        Ok("test") => (ProductionScale::test_scale(14), 3),
        _ => (ProductionScale::paper_scale(14), 6),
    };
    println!("# Ablation — ranking policies over {days} fleet days\n");
    let mut rows = Vec::new();
    for (label, policy) in policies() {
        // Quotas make the quota-aware weighting meaningful.
        let fleet_config = FleetConfig {
            quota_per_db: Some(120_000),
            ..scale.fleet.clone()
        };
        let mut fleet = Fleet::build(&fleet_config);
        let mut pipeline = production_pipeline(policy, false);
        let mut selected_total = 0usize;
        for _ in 0..days {
            fleet.advance_day();
            selected_total += auto_cycle(&fleet, &mut pipeline, false);
        }
        let env = fleet.env.borrow();
        let reduced: i64 = env
            .maintenance
            .with_status(JobStatus::Succeeded)
            .map(|r| r.actual_reduction)
            .sum();
        let gbhr = env
            .cluster("compaction")
            .map(|c| c.total_gbhr(AppKind::Compaction))
            .unwrap_or(0.0);
        rows.push(vec![
            label.to_string(),
            selected_total.to_string(),
            env.maintenance.count(JobStatus::Succeeded).to_string(),
            reduced.to_string(),
            format!("{gbhr:.2}"),
            format!("{:.1}", reduced as f64 / gbhr.max(1e-9)),
            env.metrics.quota_failures.to_string(),
        ]);
    }
    println!(
        "{}",
        print::table(
            &[
                "policy",
                "selected",
                "jobs ok",
                "files reduced",
                "GBHr",
                "files/GBHr",
                "quota failures",
            ],
            &rows
        )
    );
    println!("expected shape: threshold compacts the most but at the worst efficiency;");
    println!("budgeted caps cost with dynamic k; quota-aware prioritizes full tenants.");
}
