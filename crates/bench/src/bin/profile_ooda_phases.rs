//! Phase-level timing probe for one OODA cycle over a synthetic 100K-table
//! lake: where does the framework overhead actually go? Prints per-phase
//! wall times so decide-path optimization targets facts, not guesses.

use std::time::Instant;

use autocomp::rank::rank_and_select;
use autocomp::scope::generate_candidates;
use autocomp::{
    filter::apply_filters, AlreadyCompactFilter, CandidateFilter, CandidateStats,
    CompactionDisabledFilter, ComputeCostGbhr, FileCountReduction, LakeConnector, RankingPolicy,
    ScopeStrategy, TableRef, TraitComputer, TraitMatrix, TraitWeight,
};

struct SyntheticLake {
    tables: Vec<TableRef>,
}

impl SyntheticLake {
    fn new(n: u64) -> Self {
        SyntheticLake {
            tables: (0..n)
                .map(|i| TableRef {
                    table_uid: i,
                    database: format!("db{}", i % 64).into(),
                    name: format!("t{i}").into(),
                    partitioned: i % 2 == 0,
                    compaction_enabled: i % 17 != 0,
                    is_intermediate: i % 23 == 0,
                })
                .collect(),
        }
    }
}

impl LakeConnector for SyntheticLake {
    fn list_tables(&self) -> Vec<TableRef> {
        self.tables.clone()
    }
    fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
        Some(CandidateStats {
            file_count: 10 + (uid * 31) % 4000,
            small_file_count: (uid * 31) % 4000,
            small_bytes: ((uid * 71) % 2048) << 20,
            total_bytes: ((uid * 131) % 8192) << 20,
            target_file_size: 512 << 20,
            ..CandidateStats::default()
        })
    }
    fn partition_stats(&self, _uid: u64) -> Vec<(String, CandidateStats)> {
        Vec::new()
    }
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let lake = SyntheticLake::new(n);
    let filters: Vec<Box<dyn CandidateFilter>> = vec![
        Box::new(CompactionDisabledFilter),
        Box::new(AlreadyCompactFilter {
            min_small_files: 2,
            min_small_fraction: 0.0,
        }),
    ];
    let computers: Vec<Box<dyn TraitComputer>> = vec![
        Box::new(FileCountReduction::default()),
        Box::new(ComputeCostGbhr::default()),
    ];
    let policy = RankingPolicy::Moop {
        weights: vec![
            TraitWeight::new("file_count_reduction", 0.7),
            TraitWeight::new("compute_cost_gbhr", 0.3),
        ],
        k: 100,
    };

    for round in 0..5 {
        let t0 = Instant::now();
        let candidates = generate_candidates(&lake, ScopeStrategy::Table);
        let t1 = Instant::now();
        // Sub-probe: predicate evaluation alone vs the partition move.
        let eval_only = Instant::now();
        let n_drop = candidates
            .iter()
            .filter(|c| {
                filters
                    .iter()
                    .any(|f| f.evaluate(&c.view(), 0) != autocomp::FilterDecision::Keep)
            })
            .count();
        let eval_ms = eval_only.elapsed();
        let (kept, dropped) = apply_filters(candidates, &filters, 0);
        assert_eq!(n_drop, dropped.len());
        let t2 = Instant::now();
        let mut matrix = TraitMatrix::new(kept.len());
        for t in &computers {
            let id = matrix.intern(t.name(), Some(t.direction()));
            let col = matrix.col_mut(id);
            for (slot, c) in col.iter_mut().zip(&kept) {
                *slot = t.compute(&c.stats);
            }
        }
        let t3 = Instant::now();
        let ranked = rank_and_select(&kept, &matrix, &policy).unwrap();
        let t4 = Instant::now();
        println!(
            "round {round}: generate={:>7.2?} filter={:>7.2?} (seq-eval={eval_ms:>7.2?}) orient(seq)={:>7.2?} decide={:>7.2?} | kept={} dropped={} ranked={}",
            t1 - t0,
            (t2 - t1) - eval_ms,
            t3 - t2,
            t4 - t3,
            kept.len(),
            dropped.len(),
            ranked.len(),
        );
    }
}
