//! Phase-level timing probe for OODA cycles over a synthetic 100K-table
//! lake: where does the framework overhead actually go?
//!
//! Timing comes from the pipeline's own telemetry phase spans — the same
//! single implementation every instrumented cycle uses — with an
//! `Instant`-based microsecond clock installed on the sink (this binary
//! genuinely profiles, so the wall clock is the right clock; see the
//! clock-injection rule in `autocomp::telemetry`). Each round prints the
//! span breakdown for its cycle, and the run ends with the sink's
//! [`autocomp::FleetHealthReport`] roll-up.

use std::sync::Arc;
use std::time::Instant;

use autocomp::telemetry::{names, phase};
use autocomp::{
    AlreadyCompactFilter, AutoComp, AutoCompConfig, Candidate, CandidateStats, ChangeCursor,
    CompactionDisabledFilter, CompactionExecutor, ComputeCostGbhr, ExecutionResult,
    FileCountReduction, FleetObserver, LakeConnector, Prediction, RankingPolicy, ScopeStrategy,
    TableRef, TelemetrySink, TraitWeight,
};

struct SyntheticLake {
    tables: Vec<TableRef>,
    dirty: Vec<u64>,
}

impl SyntheticLake {
    fn new(n: u64) -> Self {
        SyntheticLake {
            tables: (0..n)
                .map(|i| TableRef {
                    table_uid: i,
                    database: format!("db{}", i % 64).into(),
                    name: format!("t{i}").into(),
                    partitioned: i % 2 == 0,
                    compaction_enabled: i % 17 != 0,
                    is_intermediate: i % 23 == 0,
                })
                .collect(),
            // 1% dirty window, so incremental rounds show the splice.
            dirty: (0..n / 100).map(|i| i * 100 % n.max(1)).collect(),
        }
    }
}

impl LakeConnector for SyntheticLake {
    fn list_tables(&self) -> Vec<TableRef> {
        self.tables.clone()
    }
    fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
        Some(CandidateStats {
            file_count: 10 + (uid * 31) % 4000,
            small_file_count: (uid * 31) % 4000,
            small_bytes: ((uid * 71) % 2048) << 20,
            total_bytes: ((uid * 131) % 8192) << 20,
            target_file_size: 512 << 20,
            ..CandidateStats::default()
        })
    }
    fn partition_stats(&self, _uid: u64) -> Vec<(String, CandidateStats)> {
        Vec::new()
    }
    fn fleet_cursor(&self) -> Option<ChangeCursor> {
        Some(ChangeCursor(0))
    }
    fn changes_since(&self, _cursor: ChangeCursor) -> Option<Vec<u64>> {
        Some(self.dirty.clone())
    }
    fn listing_epoch(&self) -> Option<u64> {
        Some(0)
    }
}

struct NullExecutor;

impl CompactionExecutor for NullExecutor {
    fn execute(&mut self, _c: &Candidate, _p: &Prediction, now: u64) -> ExecutionResult {
        ExecutionResult {
            scheduled: true,
            job_id: Some(1),
            gbhr: 0.0,
            commit_due_ms: Some(now),
            error: None,
        }
    }
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let lake = SyntheticLake::new(n);

    let epoch = Instant::now();
    let sink = TelemetrySink::with_clock(Arc::new(move || epoch.elapsed().as_micros() as u64));
    let mut ac = AutoComp::new(AutoCompConfig {
        scope: ScopeStrategy::Table,
        policy: RankingPolicy::Moop {
            weights: vec![
                TraitWeight::new("file_count_reduction", 0.7),
                TraitWeight::new("compute_cost_gbhr", 0.3),
            ],
            k: 100,
        },
        trigger_label: "profile".to_string(),
        calibrate: false,
    })
    .with_filter(Box::new(CompactionDisabledFilter))
    .with_filter(Box::new(AlreadyCompactFilter {
        min_small_files: 2,
        min_small_fraction: 0.0,
    }))
    .with_trait(Box::new(FileCountReduction::default()))
    .with_trait(Box::new(ComputeCostGbhr::default()))
    .with_telemetry(sink);

    let mut observer = FleetObserver::new();
    let mut exec = NullExecutor;
    for round in 0..5 {
        let report = ac
            .run_cycle_incremental(&mut observer, &lake, &mut exec, round)
            .expect("cycle runs");
        let cycle = ac.telemetry().current_cycle();
        let line: Vec<String> = ac
            .telemetry()
            .recent_spans()
            .iter()
            .filter(|s| s.cycle == cycle)
            .map(|s| format!("{}={}us", s.phase, s.duration))
            .collect();
        println!(
            "round {round} ({}): {} | generated={} dropped={} executed={}",
            if round == 0 { "cold" } else { "incremental" },
            line.join(" "),
            report.generated,
            report.dropped.len(),
            report.executed.len(),
        );
    }

    println!("\nper-phase histograms over all rounds (us):");
    if let Some(reg) = ac.telemetry().registry() {
        for name in phase::ALL {
            if let Some(snap) = reg.histogram_snapshot(autocomp::telemetry::MetricKey::labelled(
                names::PIPELINE_PHASE_DURATION_US,
                names::LABEL_PHASE,
                name,
            )) {
                let (p50, p95, p99) = snap.p50_p95_p99();
                println!(
                    "  {name:<13} n={} mean={:.0} p50={} p95={} p99={} max={}",
                    snap.count,
                    snap.mean(),
                    p50,
                    p95,
                    p99,
                    snap.max
                );
            }
        }
    }

    println!("\n{}", ac.telemetry().health_report());
}
