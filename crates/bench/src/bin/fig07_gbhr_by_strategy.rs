//! Figure 7: mean GBHr per compaction application per strategy (§6.1).
//!
//! Paper: table-level compaction jobs are heavyweight; the hybrid
//! (partition-level) strategy yields smaller, more stable per-application
//! cost — "balancing resource usage for compaction over time".

use autocomp_bench::experiments::cab::{paper_strategies, run_cab, CabExperimentConfig, Strategy};
use autocomp_bench::print;

fn main() {
    println!("# Figure 7 — mean GBHr per compaction application\n");
    let mut rows = Vec::new();
    for strategy in paper_strategies() {
        if strategy == Strategy::NoCompaction {
            continue;
        }
        let config = CabExperimentConfig::from_env(7, strategy);
        let r = run_cab(&config);
        rows.push(vec![
            r.label.clone(),
            r.compaction_apps.to_string(),
            format!("{:.4}", r.mean_compaction_gbhr),
            format!("{:.2}", r.total_compaction_gbhr),
            r.files_reduced.to_string(),
        ]);
    }
    println!(
        "{}",
        print::table(
            &[
                "strategy",
                "apps",
                "mean GBHr/app",
                "total GBHr",
                "files reduced"
            ],
            &rows
        )
    );
    println!("paper shape: table scope = few, expensive apps; hybrid = many small,");
    println!("stable apps (finer-grained control of resource use).");
}
