//! Table 1: client- and cluster-side write-write conflicts per hour (§6.2).
//!
//! Paper: conflicts exist even without compaction (concurrent user
//! writes); table-scope compaction adds early cluster-side conflicts from
//! stale metadata; the hybrid strategy shows **zero** cluster-side
//! conflicts because partition-scope rewrites have tiny vulnerability
//! windows.

use autocomp::ScopeStrategy;
use autocomp_bench::experiments::cab::{run_cab, CabExperimentConfig, Strategy};
use autocomp_bench::print;

fn main() {
    println!("# Table 1 — write-write conflicts per execution hour\n");
    let runs = [
        ("NoComp", Strategy::NoCompaction),
        (
            "Table-10",
            Strategy::Moop {
                scope: ScopeStrategy::Table,
                k: 10,
            },
        ),
        (
            "Hybrid-500",
            Strategy::Moop {
                scope: ScopeStrategy::Hybrid,
                k: 500,
            },
        ),
    ];
    let results: Vec<_> = runs
        .iter()
        .map(|(label, s)| {
            (
                *label,
                run_cab(&CabExperimentConfig::from_env(100, s.clone())),
            )
        })
        .collect();

    let hours = results[0].1.hourly.len();
    let mut rows = Vec::new();
    for h in 0..hours {
        let mut row = vec![
            (h + 1).to_string(),
            results[0].1.hourly[h].write_queries.to_string(),
        ];
        for (_, r) in &results {
            row.push(r.hourly[h].client_conflicts.to_string());
        }
        for (label, r) in &results {
            if *label != "NoComp" {
                row.push(r.hourly[h].cluster_conflicts.to_string());
            }
        }
        rows.push(row);
    }
    println!(
        "{}",
        print::table(
            &[
                "hour",
                "# write queries",
                "client NoComp",
                "client Table-10",
                "client Hybrid-500",
                "cluster Table-10",
                "cluster Hybrid-500",
            ],
            &rows
        )
    );
    for (label, r) in &results {
        println!(
            "{label}: compaction jobs ok={} conflicted={}",
            r.jobs_succeeded, r.jobs_conflicted
        );
    }
    println!("\npaper shape: conflicts track write bursts; Table-10 shows early cluster-side");
    println!("conflicts (stale metadata on long table rewrites); Hybrid-500 shows none.");
}
