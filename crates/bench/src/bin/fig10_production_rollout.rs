//! Figure 10: AutoComp behaviour and impact on file count in production
//! (§7): (a) manual k=100 → auto k=10 transition, (b) static → dynamic k
//! under a compute budget, (c) 12-month deployment timeline.

use autocomp_bench::experiments::production::{
    run_fig10ab, run_production_timeline, ProductionScale, TimelineConfig,
};
use autocomp_bench::print;

fn main() {
    let (scale, days_per_week, budget, timeline) = match std::env::var("AUTOCOMP_SCALE").as_deref()
    {
        Ok("test") => (
            ProductionScale::test_scale(10),
            2,
            20.0,
            TimelineConfig::test_scale(10),
        ),
        _ => (
            ProductionScale::paper_scale(10),
            5,
            60.0,
            TimelineConfig::paper_scale(10),
        ),
    };

    println!("# Figure 10a/b — rollout: files reduced and compaction cost per week\n");
    let rollout = run_fig10ab(&scale, days_per_week, budget);
    let render = |rows: &[autocomp_bench::experiments::production::WeekRow]| {
        let reduced: Vec<f64> = rows.iter().map(|w| w.files_reduced as f64).collect();
        let gbhr: Vec<f64> = rows.iter().map(|w| w.gbhr).collect();
        let reduced_n = print::normalize(&reduced);
        let gbhr_n = print::normalize(&gbhr);
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                vec![
                    w.week.to_string(),
                    w.regime.clone(),
                    w.files_reduced.to_string(),
                    format!("{:.3}", reduced_n[i]),
                    format!("{:.2}", w.gbhr),
                    format!("{:.3}", gbhr_n[i]),
                    format!("{:.1}", w.k_effective),
                ]
            })
            .collect();
        print::table(
            &[
                "week",
                "regime",
                "files reduced",
                "(norm)",
                "GBHr",
                "(norm)",
                "k effective",
            ],
            &table_rows,
        )
    };
    println!("## (a) manual top-k -> AutoComp top-(k/10) at week 3");
    println!("{}", render(&rollout.segment_a));
    println!("## (b) static k -> dynamic (budgeted) k at week 23");
    println!("{}", render(&rollout.segment_b));

    println!("\n# Figure 10c — deployment timeline: file count vs deployment size\n");
    let t = run_production_timeline(&timeline);
    let files: Vec<f64> = t.monthly.iter().map(|m| m.file_count as f64).collect();
    let tables: Vec<f64> = t
        .monthly
        .iter()
        .map(|m| m.deployment_tables as f64)
        .collect();
    let files_n = print::normalize(&files);
    let tables_n = print::normalize(&tables);
    let rows: Vec<Vec<String>> = t
        .monthly
        .iter()
        .enumerate()
        .map(|(i, m)| {
            vec![
                m.month.to_string(),
                m.regime.clone(),
                m.file_count.to_string(),
                format!("{:.3}", files_n[i]),
                m.deployment_tables.to_string(),
                format!("{:.3}", tables_n[i]),
                m.files_reduced.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        print::table(
            &[
                "month",
                "regime",
                "file count",
                "(norm)",
                "tables",
                "(norm)",
                "files reduced",
            ],
            &rows
        )
    );
    println!("paper shape: (a) auto top-10 beats manual top-100 on reduction (+12%) at");
    println!("higher cost; (b) dynamic k >> static k under budget; (c) file count bends");
    println!("down after the compaction onsets despite deployment growth.");
}
