//! Figure 3: TPC-DS execution time before/after compaction (§2).
//!
//! Paper: maintenance (3% modified via delete+insert) degrades the
//! single-user phase by 1.53×; manual compaction restores it.

use autocomp_bench::experiments::fig3::{run_fig3, Fig3Config};
use autocomp_bench::print;
use lakesim_storage::GB;
use lakesim_workload::tpcds::TpcdsConfig;

fn main() {
    let config = match std::env::var("AUTOCOMP_SCALE").as_deref() {
        Ok("test") => Fig3Config {
            seed: 3,
            tpcds: TpcdsConfig {
                scale_bytes: 4 * GB,
                date_partitions: 12,
                queries_per_phase: 25,
                ..TpcdsConfig::default()
            },
            ..Fig3Config::default()
        },
        _ => Fig3Config {
            seed: 3,
            tpcds: TpcdsConfig {
                scale_bytes: 20 * GB,
                date_partitions: 30,
                queries_per_phase: 99,
                ..TpcdsConfig::default()
            },
            // At the larger scale the same partition-touch fraction
            // fragments proportionally more files; 10% of partitions
            // lands the degradation at the paper's ~1.5x.
            touched_partition_fraction: 0.10,
            ..Fig3Config::default()
        },
    };
    let r = run_fig3(&config);

    println!("# Figure 3 — TPC-DS single-user runtime across phases\n");
    let rows = vec![
        vec!["initial run".to_string(), format!("{:.1}", r.initial_s)],
        vec![
            "after data maintenance".to_string(),
            format!("{:.1}", r.after_maintenance_s),
        ],
        vec![
            "after compaction".to_string(),
            format!("{:.1}", r.after_compaction_s),
        ],
    ];
    println!("{}", print::table(&["phase", "runtime (s)"], &rows));
    println!(
        "degradation factor: {:.2}x (paper: 1.53x) | recovery: {:.2}x (paper: ~1x)",
        r.degradation(),
        r.recovery()
    );
}
