//! Figure 2: fleet-wide file size distribution before and after
//! compaction (§2/§7).
//!
//! Paper: "prior to compaction tasks being executed regularly, 83% of the
//! system's files were smaller than 128MB. When we introduced manual
//! compaction, we saw a significant shift […] dropping from 83% to 62%.
//! We further reduced this number by gradually rolling out AutoComp."

use autocomp_bench::experiments::production::{run_fig2, ProductionScale};
use autocomp_bench::print;

fn main() {
    let scale = match std::env::var("AUTOCOMP_SCALE").as_deref() {
        Ok("test") => ProductionScale::test_scale(2),
        _ => ProductionScale::paper_scale(2),
    };
    let r = run_fig2(&scale);

    println!("# Figure 2 — fleet file-size distribution across compaction regimes\n");
    let mut rows = Vec::new();
    for (i, label) in r.bucket_labels.iter().enumerate() {
        let mut row = vec![label.clone()];
        for (_, fractions, _) in &r.phases {
            row.push(format!("{:.3}", fractions[i]));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("bucket")
        .chain(r.phases.iter().map(|(l, _, _)| l.as_str()))
        .collect();
    println!("{}", print::table(&headers, &rows));

    println!("fraction of files < 128MB per phase:");
    for (label, _, small) in &r.phases {
        println!("  {label}: {:.1}%", small * 100.0);
    }
    println!("\npaper: before 83% -> manual 62% -> auto keeps reducing (up to 44% reduction)");
}
