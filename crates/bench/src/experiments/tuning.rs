//! Figure 9: auto-tuning compaction triggers (§6.3).
//!
//! "We experiment with an auto-tuning framework in conjunction with
//! AutoComp, using a simplified optimize-after-write hook setup, i.e.,
//! unlimited compaction resources. We use two compaction traits — small
//! file count and file entropy — and tune the thresholds that determine
//! when compaction is triggered." Workloads: TPC-DS WP1 (long-running,
//! frequent modifications), TPC-DS WP3 (split read/write clusters), and
//! TPC-H (long modification phase, costly whole-table rewrites → the
//! default no-compaction setting wins, Fig. 9b).

use autocomp::{AfterWriteHook, FileCountReduction, FileEntropy, HookAction, HookMode};
use autocomp_lakesim::hooks::evaluate_hook_direct;
use autocomp_tuner::{CfoSearch, Param, ParamSpace, Tuner, TuningTrace};
use lakesim_engine::{ClusterConfig, EnvConfig, RewriteOptions, SimEnv, SimRng, MS_PER_MIN};
use lakesim_lst::{plan_table_rewrite, BinPackConfig, TableId};
use lakesim_storage::GB;
use lakesim_workload::driver::OpSpec;
use lakesim_workload::tpcds::{build_tpcds, maintenance_ops, single_user_ops, TpcdsConfig};
use lakesim_workload::tpch::{build_tpch_database, read_query, write_query, TpchConfig};

/// Workloads of the §6.3 study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneWorkload {
    /// LST-Bench TPC-DS WP1: long-running with frequent modifications,
    /// reads and writes share one cluster.
    TpcdsWp1,
    /// LST-Bench TPC-DS WP3: writes on a sidecar cluster, reads on the
    /// main cluster — compaction contention is decoupled.
    TpcdsWp3,
    /// TPC-H: non-partitioned tables make rewrites costly; the data
    /// modification phase dominates.
    Tpch,
}

impl TuneWorkload {
    /// Label for figure output.
    pub fn label(&self) -> &'static str {
        match self {
            TuneWorkload::TpcdsWp1 => "TPC-DS WP1",
            TuneWorkload::TpcdsWp3 => "TPC-DS WP3",
            TuneWorkload::Tpch => "TPC-H",
        }
    }
}

/// Tunable trigger traits of the §6.3 study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneTrait {
    /// Trigger on small-file count exceeding the threshold.
    SmallFileCount,
    /// Trigger on file entropy exceeding the threshold.
    FileEntropy,
}

impl TuneTrait {
    /// Label for figure output.
    pub fn label(&self) -> &'static str {
        match self {
            TuneTrait::SmallFileCount => "small-file count",
            TuneTrait::FileEntropy => "file entropy",
        }
    }

    fn hook(&self, threshold: f64) -> AfterWriteHook {
        match self {
            TuneTrait::SmallFileCount => AfterWriteHook::new(
                HookMode::Immediate,
                Box::new(FileCountReduction::default()),
                threshold,
            ),
            TuneTrait::FileEntropy => {
                AfterWriteHook::new(HookMode::Immediate, Box::new(FileEntropy), threshold)
            }
        }
    }

    fn space(&self) -> ParamSpace {
        match self {
            TuneTrait::SmallFileCount => ParamSpace::new(vec![Param::new("threshold", 1.0, 400.0)]),
            TuneTrait::FileEntropy => ParamSpace::new(vec![Param::new("threshold", 0.01, 1.0)]),
        }
    }
}

/// Result of tuning one Fig. 9 panel.
#[derive(Debug, Clone)]
pub struct TunePanelResult {
    /// Workload label.
    pub workload: String,
    /// Trait label.
    pub trait_name: String,
    /// Duration with compaction disabled (the "default" line).
    pub default_duration_s: f64,
    /// `(iteration, threshold, duration_s)` per trial.
    pub trials: Vec<(usize, f64, f64)>,
    /// Best tuned duration.
    pub best_duration_s: f64,
}

/// Immediately submits compaction of `table` on `cluster` (unlimited
/// budget). The job runs *concurrently* with the workload: on a shared
/// cluster its executor time contends with queries (the WP1/TPC-H cost),
/// on a decoupled cluster it does not (the WP3 benefit). Its commit is
/// drained as the workload's own time advances.
fn compact_now(env: &mut SimEnv, table: TableId, cluster: &str, t: u64) {
    let plan = {
        let Ok(entry) = env.catalog.table(table) else {
            return;
        };
        plan_table_rewrite(
            &entry.table,
            &BinPackConfig {
                target_file_size: entry.policy.target_file_size,
                small_file_fraction: 0.75,
                min_input_files: entry.policy.min_input_files,
            },
        )
    };
    if plan.is_empty() {
        return;
    }
    let predicted = env.cost().estimate_gbhr(64.0, plan.input_bytes());
    let opts = RewriteOptions {
        cluster: cluster.to_string(),
        parallelism: 4,
        trigger: "after-write".to_string(),
        predicted_reduction: plan.expected_reduction(),
        predicted_gbhr: predicted,
    };
    let _ = env.submit_rewrite(&plan, &opts, t);
}

/// Runs one workload end-to-end with the given trigger threshold
/// (`f64::INFINITY` = compaction disabled) and returns the duration in
/// seconds — the Fig. 9 y-axis.
pub fn run_tuned_workload(
    workload: TuneWorkload,
    tune_trait: TuneTrait,
    threshold: f64,
    seed: u64,
) -> f64 {
    let clusters = vec![
        ClusterConfig {
            name: "query".to_string(),
            executors: 8,
            executor_memory_gb: 64.0,
        },
        ClusterConfig {
            name: "sidecar".to_string(),
            executors: 4,
            executor_memory_gb: 64.0,
        },
        ClusterConfig::compaction_default("compaction"),
    ];
    let mut env = SimEnv::new(EnvConfig {
        seed,
        clusters,
        cost: lakesim_engine::CostModel {
            // LST-Bench sessions reuse a warm application: per-write
            // coordination is seconds, not the cold-start minutes of the
            // ad-hoc fleet jobs. Keeping it small lets the read-phase
            // layout effect (what the threshold controls) dominate the
            // end-to-end duration, as in Fig. 9.
            write_job_overhead_ms: 5_000,
            ..lakesim_engine::CostModel::default()
        },
        ..EnvConfig::default()
    });
    let mut rng = SimRng::seed_from_u64(seed ^ 0xF19);
    let hook = tune_trait.hook(threshold);
    // WP3's writes (and hook compactions) run on the sidecar; WP1/TPC-H
    // share the query cluster — the §6.3 contention difference.
    let (read_cluster, write_cluster) = match workload {
        TuneWorkload::TpcdsWp3 => ("query", "sidecar"),
        _ => ("query", "query"),
    };

    let start = MS_PER_MIN;
    let mut t = start;
    match workload {
        TuneWorkload::TpcdsWp1 | TuneWorkload::TpcdsWp3 => {
            let config = TpcdsConfig {
                scale_bytes: 3 * GB,
                date_partitions: 12,
                queries_per_phase: 25,
                // LST-Bench WP runs accumulate fragmentation from the
                // first session onward; start from the untuned-writer
                // state so the trigger threshold has a real signal.
                load_writer: lakesim_engine::FileSizePlan::misconfigured(),
                ..TpcdsConfig::default()
            };
            let db = build_tpcds(&mut env, "tpcds", "tenant", &config)
                .expect("fresh database name never collides");
            env.drain_all();
            for _cycle in 0..3 {
                // Modification phase.
                let ops = maintenance_ops(&db, &env, 0.05, t, write_cluster, &mut rng);
                let mut written: Vec<TableId> = Vec::new();
                for op in ops {
                    if let OpSpec::Write(spec) = op.op {
                        written.push(spec.table);
                        if let Ok(w) = env.submit_write(&spec, t) {
                            t = w.finished_ms + 1_000;
                        }
                        env.drain_due(t);
                    }
                }
                // Hook evaluation at the end of the write session — the
                // quiet window a real optimize-after-write hook sees once
                // the writer's session commits (firing mid-session would
                // lose every optimistic race against the next write).
                written.dedup();
                for table in written {
                    if let Some(HookAction::TriggerNow) =
                        evaluate_hook_direct(&mut env, &hook, table)
                    {
                        compact_now(&mut env, table, write_cluster, t);
                    }
                }
                // Read phase (sequential single-user).
                for op in single_user_ops(&db, &config, 0, 0, read_cluster, &mut rng) {
                    if let OpSpec::Read(spec) = op.op {
                        env.drain_due(t);
                        if let Ok(r) = env.submit_read(&spec, t) {
                            t = r.finished_ms + 100;
                        }
                    }
                }
            }
        }
        TuneWorkload::Tpch => {
            let config = TpchConfig {
                scale_bytes: 2 * GB,
                months: 8,
                ..TpchConfig::default()
            };
            let db = build_tpch_database(&mut env, "tpch", "tenant", None, &config, &mut rng)
                .expect("fresh database name never collides");
            env.drain_all();
            for _cycle in 0..3 {
                // Long data-modification phase (dominates TPC-H runs).
                let mut written: Vec<TableId> = Vec::new();
                for _ in 0..8 {
                    let spec = write_query(&db, &mut rng, write_cluster);
                    written.push(spec.table);
                    if let Ok(w) = env.submit_write(&spec, t) {
                        t = w.finished_ms + 1_000;
                    }
                    env.drain_due(t);
                }
                written.sort();
                written.dedup();
                for table in written {
                    if let Some(HookAction::TriggerNow) =
                        evaluate_hook_direct(&mut env, &hook, table)
                    {
                        // Non-partitioned tables rewrite wholesale — the
                        // §6.3 reason compaction rarely pays off here.
                        compact_now(&mut env, table, write_cluster, t);
                    }
                }
                for _ in 0..6 {
                    let spec = read_query(&db, &mut rng, read_cluster);
                    env.drain_due(t);
                    if let Ok(r) = env.submit_read(&spec, t) {
                        t = r.finished_ms + 100;
                    }
                }
            }
        }
    }
    env.drain_all();
    (t - start) as f64 / 1000.0
}

/// Runs one Fig. 9 panel: CFO-tunes the trigger threshold for
/// `iterations` trials and reports the default (no compaction) baseline.
pub fn run_fig9_panel(
    workload: TuneWorkload,
    tune_trait: TuneTrait,
    iterations: usize,
    seed: u64,
) -> TunePanelResult {
    let default_duration_s = run_tuned_workload(workload, tune_trait, f64::INFINITY, seed);
    let mut tuner = Tuner::new(CfoSearch::new(tune_trait.space(), seed), iterations);
    let trace: TuningTrace = tuner.run(|assignment| {
        let threshold = assignment.get("threshold").expect("single-param space");
        run_tuned_workload(workload, tune_trait, threshold, seed)
    });
    let trials = trace
        .trials
        .iter()
        .map(|t| {
            (
                t.iteration,
                t.assignment.get("threshold").expect("single-param space"),
                t.value,
            )
        })
        .collect();
    let best = trace.best().map(|t| t.value).unwrap_or(default_duration_s);
    TunePanelResult {
        workload: workload.label().to_string(),
        trait_name: tune_trait.label().to_string(),
        default_duration_s,
        trials,
        best_duration_s: best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wp1_benefits_from_tuned_compaction() {
        let panel = run_fig9_panel(TuneWorkload::TpcdsWp1, TuneTrait::SmallFileCount, 6, 70);
        assert_eq!(panel.trials.len(), 6);
        assert!(
            panel.best_duration_s < panel.default_duration_s,
            "WP1 tuned {:.1}s should beat default {:.1}s",
            panel.best_duration_s,
            panel.default_duration_s
        );
    }

    #[test]
    fn tpch_default_stays_competitive() {
        // §6.3: "For TPC-H, the default setting (no auto-compaction)
        // performs best, as compaction rewrites entire non-partitioned
        // tables". Allow small wins from noise but no large improvement.
        let panel = run_fig9_panel(TuneWorkload::Tpch, TuneTrait::SmallFileCount, 5, 71);
        assert!(
            panel.best_duration_s > panel.default_duration_s * 0.9,
            "TPC-H best {:.1}s vs default {:.1}s",
            panel.best_duration_s,
            panel.default_duration_s
        );
    }

    #[test]
    fn entropy_and_count_triggers_both_work_on_wp1() {
        // §6.3 observation (ii): both decision functions can yield
        // comparable results with appropriate thresholds.
        let count = run_fig9_panel(TuneWorkload::TpcdsWp1, TuneTrait::SmallFileCount, 5, 72);
        let entropy = run_fig9_panel(TuneWorkload::TpcdsWp1, TuneTrait::FileEntropy, 5, 72);
        let ratio = count.best_duration_s / entropy.best_duration_s.max(1e-9);
        assert!(
            (0.5..2.0).contains(&ratio),
            "triggers should be comparable: count {:.1}s entropy {:.1}s",
            count.best_duration_s,
            entropy.best_duration_s
        );
    }

    #[test]
    fn wp3_sees_consistent_benefit() {
        let panel = run_fig9_panel(TuneWorkload::TpcdsWp3, TuneTrait::SmallFileCount, 5, 73);
        assert!(panel.best_duration_s <= panel.default_duration_s * 1.02);
    }

    #[test]
    fn panels_are_deterministic() {
        let a = run_fig9_panel(TuneWorkload::TpcdsWp1, TuneTrait::SmallFileCount, 3, 74);
        let b = run_fig9_panel(TuneWorkload::TpcdsWp1, TuneTrait::SmallFileCount, 3, 74);
        assert_eq!(a.trials, b.trials);
    }
}
