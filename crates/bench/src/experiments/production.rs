//! Production-deployment experiments: Figures 2, 10 and 11 and the §7
//! estimator-accuracy study, all driven by the fleet synthesizer.

use autocomp::{
    AlreadyCompactFilter, AutoComp, AutoCompConfig, CompactionDisabledFilter, ComputeCostGbhr,
    FileCountReduction, IntermediateTableFilter, RankingPolicy, RecentlyCreatedFilter,
    ScopeStrategy, TraitWeight,
};
use autocomp_lakesim::{LakesimConnector, LakesimExecutor, ObserveOptions};
use lakesim_catalog::{AccuracySummary, JobStatus};
use lakesim_engine::{AppKind, ReadSpec, RewriteOptions, MS_PER_DAY, MS_PER_HOUR};
use lakesim_lst::{plan_table_rewrite, BinPackConfig, PartitionFilter, TableId};
use lakesim_storage::MB;
use lakesim_workload::fleet::{Fleet, FleetConfig};

/// Builds the production-style AutoComp pipeline: MOOP ΔF/cost with the
/// deployment filters of §4.1/§7.
pub fn production_pipeline(policy: RankingPolicy, use_planned_estimates: bool) -> AutoComp {
    AutoComp::new(AutoCompConfig {
        scope: ScopeStrategy::Table,
        policy,
        trigger_label: "periodic".to_string(),
        calibrate: false,
    })
    .with_filter(Box::new(CompactionDisabledFilter))
    .with_filter(Box::new(IntermediateTableFilter))
    .with_filter(Box::new(RecentlyCreatedFilter {
        grace_ms: MS_PER_DAY,
    }))
    .with_filter(Box::new(AlreadyCompactFilter {
        min_small_files: 2,
        min_small_fraction: 0.0,
    }))
    .with_trait(Box::new(FileCountReduction {
        use_planned_estimate: use_planned_estimates,
    }))
    .with_trait(Box::new(ComputeCostGbhr::default()))
}

/// Standard MOOP top-k policy with the deployment weights.
pub fn moop_topk(k: usize) -> RankingPolicy {
    RankingPolicy::Moop {
        weights: vec![
            TraitWeight::new("file_count_reduction", 0.7),
            TraitWeight::new("compute_cost_gbhr", 0.3),
        ],
        k,
    }
}

/// §7's quota-aware weighting with a fixed k.
pub fn quota_aware_topk(k: usize) -> RankingPolicy {
    RankingPolicy::QuotaAwareMoop {
        benefit_trait: "file_count_reduction".to_string(),
        cost_trait: "compute_cost_gbhr".to_string(),
        k: Some(k),
        budget: None,
    }
}

/// §7's dynamic-k budgeted selection.
pub fn budgeted(budget_gbhr: f64) -> RankingPolicy {
    RankingPolicy::BudgetedMoop {
        weights: vec![
            TraitWeight::new("file_count_reduction", 0.7),
            TraitWeight::new("compute_cost_gbhr", 0.3),
        ],
        cost_trait: "compute_cost_gbhr".to_string(),
        budget: budget_gbhr,
        max_k: None,
    }
}

/// Runs one AutoComp cycle against a fleet, draining a grace window after.
/// Returns the number of selected candidates.
pub fn auto_cycle(fleet: &Fleet, pipeline: &mut AutoComp, use_planned: bool) -> usize {
    let now = fleet.now_ms();
    let connector = LakesimConnector::with_options(
        fleet.env.clone(),
        ObserveOptions {
            compute_planned_estimates: use_planned,
            small_file_fraction: 0.75,
            transform_signals: false,
        },
    );
    let mut executor = LakesimExecutor::new(fleet.env.clone());
    let selected = pipeline
        .run_cycle(&connector, &mut executor, now)
        .map(|r| r.selected_count())
        .unwrap_or(0);
    drop(executor);
    drop(connector);
    fleet.env.borrow_mut().drain_due(now + 4 * MS_PER_HOUR);
    selected
}

/// Picks the `k` most fragmented tables — the paper's initial manual
/// strategy: "repeatedly compacted a fixed set of k ≈ 100 tables […]
/// chosen because of their susceptibility to high fragmentation".
pub fn pick_manual_targets(fleet: &Fleet, k: usize) -> Vec<TableId> {
    let env = fleet.env.borrow();
    let mut scored: Vec<(u64, TableId)> = env
        .catalog
        .table_ids()
        .into_iter()
        .filter_map(|id| {
            let entry = env.catalog.table(id).ok()?;
            if !entry.policy.compaction_enabled {
                return None;
            }
            let stats = entry.table.stats(entry.policy.target_file_size);
            Some((stats.small_file_count, id))
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().take(k).map(|(_, id)| id).collect()
}

/// Compacts a fixed set of tables (manual strategy). Returns jobs run.
pub fn manual_cycle(fleet: &Fleet, targets: &[TableId]) -> usize {
    let now = fleet.now_ms();
    let mut jobs = 0;
    for table in targets {
        let mut env = fleet.env.borrow_mut();
        let plan = {
            let Ok(entry) = env.catalog.table(*table) else {
                continue;
            };
            plan_table_rewrite(
                &entry.table,
                &BinPackConfig {
                    target_file_size: entry.policy.target_file_size,
                    small_file_fraction: 0.75,
                    min_input_files: entry.policy.min_input_files,
                },
            )
        };
        if plan.is_empty() {
            continue;
        }
        let predicted_gbhr = env.cost().estimate_gbhr(64.0, plan.input_bytes());
        let opts = RewriteOptions {
            cluster: "compaction".to_string(),
            parallelism: 3,
            trigger: "manual".to_string(),
            predicted_reduction: plan.expected_reduction(),
            predicted_gbhr,
        };
        if env
            .submit_rewrite(&plan, &opts, now)
            .ok()
            .flatten()
            .is_some()
        {
            jobs += 1;
        }
    }
    fleet.env.borrow_mut().drain_due(now + 4 * MS_PER_HOUR);
    jobs
}

// ---------------------------------------------------------------------
// Fig. 2 — fleet file-size distribution across compaction regimes.
// ---------------------------------------------------------------------

/// Result of the Fig. 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Histogram bucket labels.
    pub bucket_labels: Vec<String>,
    /// `(phase label, per-bucket fractions, fraction < 128MB)`.
    pub phases: Vec<(String, Vec<f64>, f64)>,
}

/// Fleet scale for the production experiments.
#[derive(Debug, Clone)]
pub struct ProductionScale {
    /// Fleet shape.
    pub fleet: FleetConfig,
    /// Days per phase/regime segment.
    pub days_per_phase: u64,
    /// Manual top-k.
    pub manual_k: usize,
    /// Auto top-k.
    pub auto_k: usize,
}

impl ProductionScale {
    /// Scale for tests: small fleet, short phases.
    pub fn test_scale(seed: u64) -> Self {
        ProductionScale {
            fleet: FleetConfig {
                databases: 3,
                tables_per_db: 8,
                initial_days: 2,
                seed,
                ..FleetConfig::default()
            },
            days_per_phase: 3,
            manual_k: 6,
            auto_k: 3,
        }
    }

    /// Scale for the figure binaries.
    pub fn paper_scale(seed: u64) -> Self {
        ProductionScale {
            fleet: FleetConfig {
                databases: 8,
                tables_per_db: 25,
                // Long accumulation before compaction existed (the paper's
                // fleet ran for months before the Fig. 2 baseline).
                initial_days: 12,
                seed,
                ..FleetConfig::default()
            },
            days_per_phase: 8,
            manual_k: 25,
            auto_k: 10,
        }
    }
}

/// Runs Fig. 2: before → after manual → after AutoComp distribution shift.
pub fn run_fig2(scale: &ProductionScale) -> Fig2Result {
    let mut fleet = Fleet::build(&scale.fleet);
    let hist = fleet.data_histogram();
    let labels: Vec<String> = (0..hist.counts().len())
        .map(|i| hist.bucket_label(i))
        .collect();
    let mut phases = Vec::new();
    let snapshot = |fleet: &Fleet, label: &str| {
        let h = fleet.data_histogram();
        (
            label.to_string(),
            h.fractions(),
            h.fraction_at_or_below(128 * MB),
        )
    };
    phases.push(snapshot(&fleet, "before compaction"));

    // Manual phase: fixed top-k targets compacted daily.
    let targets = pick_manual_targets(&fleet, scale.manual_k);
    for _ in 0..scale.days_per_phase {
        fleet.advance_day();
        manual_cycle(&fleet, &targets);
    }
    phases.push(snapshot(&fleet, "after manual compaction"));

    // AutoComp phase: MOOP top-k, dynamic candidate selection.
    let mut pipeline = production_pipeline(moop_topk(scale.auto_k), false);
    for _ in 0..scale.days_per_phase {
        fleet.advance_day();
        auto_cycle(&fleet, &mut pipeline, false);
    }
    phases.push(snapshot(&fleet, "after auto compaction"));

    Fig2Result {
        bucket_labels: labels,
        phases,
    }
}

// ---------------------------------------------------------------------
// Fig. 10a/b — rollout: manual→auto transition, static→dynamic k.
// ---------------------------------------------------------------------

/// One week of the rollout chart.
#[derive(Debug, Clone)]
pub struct WeekRow {
    /// Week index.
    pub week: u64,
    /// Regime label.
    pub regime: String,
    /// Files reduced by compaction this week.
    pub files_reduced: i64,
    /// Compaction cost this week (GBHr).
    pub gbhr: f64,
    /// Mean candidates selected per cycle (the effective k).
    pub k_effective: f64,
}

/// Result of the Fig. 10a/b rollout experiment.
#[derive(Debug, Clone)]
pub struct RolloutResult {
    /// Weekly rows for segment (a): manual k → auto top-k.
    pub segment_a: Vec<WeekRow>,
    /// Weekly rows for segment (b): static k → dynamic (budgeted) k.
    pub segment_b: Vec<WeekRow>,
}

fn run_week(
    fleet: &mut Fleet,
    days: u64,
    regime: &str,
    week: u64,
    mut cycle: impl FnMut(&Fleet) -> usize,
) -> WeekRow {
    let (reduced_before, gbhr_before) = week_counters(fleet);
    let mut selections = Vec::new();
    for _ in 0..days {
        fleet.advance_day();
        selections.push(cycle(fleet));
    }
    let (reduced_after, gbhr_after) = week_counters(fleet);
    WeekRow {
        week,
        regime: regime.to_string(),
        files_reduced: reduced_after - reduced_before,
        gbhr: gbhr_after - gbhr_before,
        k_effective: if selections.is_empty() {
            0.0
        } else {
            selections.iter().sum::<usize>() as f64 / selections.len() as f64
        },
    }
}

fn week_counters(fleet: &Fleet) -> (i64, f64) {
    let env = fleet.env.borrow();
    let reduced: i64 = env
        .maintenance
        .with_status(JobStatus::Succeeded)
        .map(|r| r.actual_reduction)
        .sum();
    let gbhr = env
        .cluster("compaction")
        .map(|c| c.total_gbhr(AppKind::Compaction))
        .unwrap_or(0.0);
    (reduced, gbhr)
}

/// Runs Fig. 10a (manual k → auto k/10 at week 3) and Fig. 10b (static k
/// → budget-driven dynamic k), continuing one fleet.
pub fn run_fig10ab(scale: &ProductionScale, days_per_week: u64, budget_gbhr: f64) -> RolloutResult {
    let mut fleet = Fleet::build(&scale.fleet);
    let mut segment_a = Vec::new();

    // Weeks 0-2: manual fixed top-k (re-picked once, as deployed).
    let targets = pick_manual_targets(&fleet, scale.manual_k);
    for week in 0..3 {
        let row = run_week(&mut fleet, days_per_week, "manual k", week, |fleet| {
            manual_cycle(fleet, &targets)
        });
        segment_a.push(row);
    }
    // Weeks 3-5: AutoComp top-(k/10): "switching from manual top-100 to
    // automatic top-10 effectively increased overall file count reduction"
    // (§7).
    let mut auto = production_pipeline(moop_topk(scale.auto_k), false);
    for week in 3..6 {
        let row = run_week(&mut fleet, days_per_week, "auto top-k", week, |fleet| {
            auto_cycle(fleet, &mut auto, false)
        });
        segment_a.push(row);
    }

    // Segment (b): static k for two weeks, then dynamic k under a budget
    // (§7: "With a budget of 226 TBHr, we successfully compacted around
    // k ≈ 2500 tables per iteration").
    let mut segment_b = Vec::new();
    let mut static_pipeline = production_pipeline(moop_topk(scale.auto_k), false);
    for week in 21..23 {
        let row = run_week(&mut fleet, days_per_week, "static k", week, |fleet| {
            auto_cycle(fleet, &mut static_pipeline, false)
        });
        segment_b.push(row);
    }
    let mut dynamic_pipeline = production_pipeline(budgeted(budget_gbhr), false);
    for week in 23..25 {
        let row = run_week(&mut fleet, days_per_week, "dynamic k", week, |fleet| {
            auto_cycle(fleet, &mut dynamic_pipeline, false)
        });
        segment_b.push(row);
    }
    RolloutResult {
        segment_a,
        segment_b,
    }
}

// ---------------------------------------------------------------------
// Fig. 10c + Fig. 11b — long-horizon timeline with regime switches.
// ---------------------------------------------------------------------

/// Timeline configuration.
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Fleet shape.
    pub fleet: FleetConfig,
    /// Months simulated.
    pub months: u64,
    /// Days per simulated month (scaled; documented in EXPERIMENTS.md).
    pub days_per_month: u64,
    /// Month at which manual compaction starts (paper: 4).
    pub manual_onset: u64,
    /// Month at which AutoComp starts (paper: 9).
    pub auto_onset: u64,
    /// Tables added per month (deployment growth).
    pub growth_per_month: usize,
    /// Tables scanned daily (drives open() traffic, Fig. 11b).
    pub daily_scans: usize,
    /// Manual/auto k.
    pub manual_k: usize,
    /// Auto top-k.
    pub auto_k: usize,
}

impl TimelineConfig {
    /// Scaled config for tests.
    pub fn test_scale(seed: u64) -> Self {
        TimelineConfig {
            fleet: FleetConfig {
                databases: 3,
                tables_per_db: 6,
                initial_days: 1,
                seed,
                ..FleetConfig::default()
            },
            months: 6,
            days_per_month: 2,
            manual_onset: 2,
            auto_onset: 4,
            growth_per_month: 2,
            daily_scans: 6,
            manual_k: 5,
            auto_k: 3,
        }
    }

    /// Scale for the figure binaries (14 months as in Fig. 11b).
    pub fn paper_scale(seed: u64) -> Self {
        TimelineConfig {
            fleet: FleetConfig {
                databases: 6,
                tables_per_db: 20,
                initial_days: 2,
                seed,
                ..FleetConfig::default()
            },
            months: 14,
            days_per_month: 5,
            manual_onset: 4,
            auto_onset: 9,
            growth_per_month: 8,
            daily_scans: 30,
            manual_k: 15,
            auto_k: 5,
        }
    }
}

/// One month of the timeline.
#[derive(Debug, Clone)]
pub struct MonthRow {
    /// Month index.
    pub month: u64,
    /// Regime in effect ("none" / "manual" / "auto").
    pub regime: String,
    /// Live data files at month end (Fig. 10c "File Count").
    pub file_count: u64,
    /// Tables deployed (Fig. 10c/11b "Deployment Size").
    pub deployment_tables: u64,
    /// NameNode `open()` calls during the month (Fig. 11b).
    pub opens: u64,
    /// Files reduced by compaction during the month.
    pub files_reduced: i64,
}

/// Result of the timeline experiment.
#[derive(Debug, Clone)]
pub struct TimelineResult {
    /// Monthly rows.
    pub monthly: Vec<MonthRow>,
}

/// Runs the Fig. 10c / Fig. 11b timeline.
pub fn run_production_timeline(config: &TimelineConfig) -> TimelineResult {
    let mut fleet = Fleet::build(&config.fleet);
    let mut monthly = Vec::new();
    let mut manual_targets: Vec<TableId> = Vec::new();
    let mut auto = production_pipeline(moop_topk(config.auto_k), false);

    for month in 0..config.months {
        let regime = if month >= config.auto_onset {
            "auto"
        } else if month >= config.manual_onset {
            "manual"
        } else {
            "none"
        };
        if month == config.manual_onset {
            manual_targets = pick_manual_targets(&fleet, config.manual_k);
        }
        let opens_before = fleet.env.borrow().fs.metrics().rpc.opens;
        let (reduced_before, _) = week_counters(&fleet);
        fleet.add_tables(config.growth_per_month, &config.fleet);

        for _ in 0..config.days_per_month {
            // Daily scan-heavy workload drives open() traffic.
            run_daily_scans(&fleet, config.daily_scans);
            fleet.advance_day();
            match regime {
                "manual" => {
                    manual_cycle(&fleet, &manual_targets);
                }
                "auto" => {
                    auto_cycle(&fleet, &mut auto, false);
                }
                _ => {}
            }
        }
        let opens_after = fleet.env.borrow().fs.metrics().rpc.opens;
        let (reduced_after, _) = week_counters(&fleet);
        monthly.push(MonthRow {
            month,
            regime: regime.to_string(),
            file_count: fleet.data_file_count(),
            deployment_tables: fleet.tables.len() as u64,
            opens: opens_after - opens_before,
            files_reduced: reduced_after - reduced_before,
        });
    }
    TimelineResult { monthly }
}

fn run_daily_scans(fleet: &Fleet, count: usize) {
    let now = fleet.now_ms() + 6 * MS_PER_HOUR;
    let ids: Vec<TableId> = {
        let env = fleet.env.borrow();
        env.catalog.table_ids().into_iter().take(count).collect()
    };
    let mut env = fleet.env.borrow_mut();
    env.drain_due(now);
    for (i, id) in ids.iter().enumerate() {
        let spec = ReadSpec {
            table: *id,
            filter: PartitionFilter::All,
            cluster: "query".to_string(),
            parallelism: 8,
        };
        let _ = env.submit_read(&spec, now + (i as u64) * 30_000);
    }
}

// ---------------------------------------------------------------------
// Fig. 11a — daily workload metrics with sawtooth recurrence.
// ---------------------------------------------------------------------

/// One day of the Fig. 11a chart.
#[derive(Debug, Clone)]
pub struct DayRow {
    /// Day index.
    pub day: u64,
    /// Files scanned by the daily workload.
    pub files_scanned: u64,
    /// Total query execution time (ms).
    pub query_time_ms: f64,
    /// Query cost (GBHr consumed by reads).
    pub query_gbhr: f64,
    /// Files reduced by that day's compaction.
    pub files_reduced: i64,
}

/// Result of the Fig. 11a experiment.
#[derive(Debug, Clone)]
pub struct WorkloadMetricsResult {
    /// Daily rows.
    pub daily: Vec<DayRow>,
}

/// Runs Fig. 11a: a daily scan-heavy workload over a fleet compacted by
/// AutoComp with a small k, so unselected tables re-accumulate small
/// files — the paper's "recurring sawtooth pattern".
pub fn run_fig11a(scale: &ProductionScale, days: u64, scan_tables: usize) -> WorkloadMetricsResult {
    let mut fleet = Fleet::build(&scale.fleet);
    let mut pipeline = production_pipeline(moop_topk(scale.auto_k), false);
    let mut daily = Vec::new();
    for day in 0..days {
        let (reduced_before, _) = week_counters(&fleet);
        let (scanned, time_ms, gbhr) = scan_metrics(&fleet, scan_tables);
        fleet.advance_day();
        auto_cycle(&fleet, &mut pipeline, false);
        let (reduced_after, _) = week_counters(&fleet);
        daily.push(DayRow {
            day,
            files_scanned: scanned,
            query_time_ms: time_ms,
            query_gbhr: gbhr,
            files_reduced: reduced_after - reduced_before,
        });
    }
    WorkloadMetricsResult { daily }
}

fn scan_metrics(fleet: &Fleet, count: usize) -> (u64, f64, f64) {
    let now = fleet.now_ms() + 6 * MS_PER_HOUR;
    let ids: Vec<TableId> = {
        let env = fleet.env.borrow();
        env.catalog.table_ids().into_iter().take(count).collect()
    };
    let mut env = fleet.env.borrow_mut();
    env.drain_due(now);
    let gbhr_before = env
        .cluster("query")
        .map(|c| c.total_gbhr(AppKind::Query))
        .unwrap_or(0.0);
    let mut scanned = 0;
    let mut time_ms = 0.0;
    for (i, id) in ids.iter().enumerate() {
        let spec = ReadSpec {
            table: *id,
            filter: PartitionFilter::All,
            cluster: "query".to_string(),
            parallelism: 8,
        };
        if let Ok(result) = env.submit_read(&spec, now + (i as u64) * 30_000) {
            scanned += result.files_scanned;
            time_ms += result.latency_ms;
        }
    }
    let gbhr_after = env
        .cluster("query")
        .map(|c| c.total_gbhr(AppKind::Query))
        .unwrap_or(0.0);
    (scanned, time_ms, gbhr_after - gbhr_before)
}

// ---------------------------------------------------------------------
// §7 estimator accuracy.
// ---------------------------------------------------------------------

/// Runs the estimator-accuracy study: the same fleet compacted with naive
/// table-level ΔF predictions vs. partition-aware planned predictions.
pub fn run_estimator_accuracy(
    scale: &ProductionScale,
    days: u64,
) -> (AccuracySummary, AccuracySummary) {
    let run = |use_planned: bool| {
        let mut fleet = Fleet::build(&scale.fleet);
        let mut pipeline = production_pipeline(moop_topk(scale.auto_k), use_planned);
        for _ in 0..days {
            fleet.advance_day();
            auto_cycle(&fleet, &mut pipeline, use_planned);
        }
        let env = fleet.env.borrow();
        env.maintenance.accuracy()
    };
    (run(false), run(true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shifts_distribution_toward_target() {
        let r = run_fig2(&ProductionScale::test_scale(60));
        assert_eq!(r.phases.len(), 3);
        let before = r.phases[0].2;
        let after_manual = r.phases[1].2;
        let after_auto = r.phases[2].2;
        assert!(
            after_manual < before,
            "manual must reduce small-file share: {before:.3} -> {after_manual:.3}"
        );
        assert!(
            after_auto <= after_manual + 0.02,
            "auto must hold/extend the gain: {after_manual:.3} -> {after_auto:.3}"
        );
    }

    #[test]
    fn rollout_auto_beats_manual_effectiveness() {
        let r = run_fig10ab(&ProductionScale::test_scale(61), 2, 20.0);
        assert_eq!(r.segment_a.len(), 6);
        assert_eq!(r.segment_b.len(), 4);
        let manual_weekly: i64 = r.segment_a[..3].iter().map(|w| w.files_reduced).sum();
        let auto_weekly: i64 = r.segment_a[3..].iter().map(|w| w.files_reduced).sum();
        // §7: auto top-10 beat manual top-100 by ~12% on files reduced.
        assert!(
            auto_weekly > manual_weekly / 2,
            "auto {auto_weekly} vs manual {manual_weekly}"
        );
        // Dynamic k selects more candidates than static k.
        let static_k = r.segment_b[0].k_effective;
        let dynamic_k = r.segment_b[3].k_effective;
        assert!(
            dynamic_k >= static_k,
            "dynamic {dynamic_k} vs static {static_k}"
        );
    }

    #[test]
    fn timeline_compaction_bends_file_count_curve() {
        let r = run_production_timeline(&TimelineConfig::test_scale(62));
        assert_eq!(r.monthly.len(), 6);
        // Files grow before compaction starts…
        assert!(r.monthly[1].file_count > r.monthly[0].file_count);
        // …and the growth slows or reverses once compaction runs.
        let growth_before: i64 = r.monthly[1].file_count as i64 - r.monthly[0].file_count as i64;
        let last = r.monthly.len() - 1;
        let growth_after: i64 =
            r.monthly[last].file_count as i64 - r.monthly[last - 1].file_count as i64;
        assert!(
            growth_after < growth_before,
            "compaction must bend the curve: {growth_before} -> {growth_after}"
        );
        assert!(r.monthly.iter().any(|m| m.regime == "manual"));
        assert!(r.monthly.iter().any(|m| m.regime == "auto"));
        // Deployment keeps growing throughout.
        assert!(r.monthly[last].deployment_tables > r.monthly[0].deployment_tables);
    }

    #[test]
    fn fig11a_produces_scan_series() {
        let r = run_fig11a(&ProductionScale::test_scale(63), 4, 5);
        assert_eq!(r.daily.len(), 4);
        assert!(r.daily.iter().all(|d| d.files_scanned > 0));
        assert!(r.daily.iter().any(|d| d.files_reduced > 0));
    }

    #[test]
    fn partition_aware_estimates_are_less_biased() {
        let (naive, planned) = run_estimator_accuracy(&ProductionScale::test_scale(64), 3);
        assert!(naive.jobs > 0 && planned.jobs > 0);
        // §7: the naive table-level ΔF over-estimates; the partition-aware
        // refinement should cut the bias.
        assert!(
            planned.reduction_bias.abs() <= naive.reduction_bias.abs() + 0.05,
            "planned bias {:.3} vs naive {:.3}",
            planned.reduction_bias,
            naive.reduction_bias
        );
    }
}
