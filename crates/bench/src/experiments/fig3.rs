//! Figure 3: TPC-DS single-user runtime before / after maintenance /
//! after compaction (§2).
//!
//! "During the data maintenance phase, about 3% of the data is modified
//! via delete and insert operations, resulting in new files being added
//! to the table. This significantly degrades performance in the
//! subsequent single-user phase, increasing execution time by a factor of
//! 1.53×. However, manually triggering compaction restored performance to
//! levels comparable to the initial execution of the workload."
//!
//! The simulator's maintenance applies the modification as the engines in
//! the paper do: row-level deletes become MoR delete files, and the
//! re-inserted rows land via copy-on-write of the touched partitions with
//! a misconfigured writer — the write path that "results in new files
//! being added" and fragments the previously well-sized layout.

use lakesim_engine::{
    EnvConfig, FileSizePlan, RewriteOptions, SimEnv, SimRng, WriteOp, WriteSpec, MS_PER_MIN,
};
use lakesim_lst::{plan_table_rewrite, BinPackConfig, PartitionKey};
use lakesim_storage::MB;
use lakesim_workload::driver::OpSpec;
use lakesim_workload::tpcds::{build_tpcds, single_user_ops, TpcdsConfig, TpcdsDatabase};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Master seed.
    pub seed: u64,
    /// Database scale and query count.
    pub tpcds: TpcdsConfig,
    /// Fraction of rows modified by maintenance (paper: 3%).
    pub modified_fraction: f64,
    /// Fraction of each fact table's partitions the modification touches
    /// (CoW rewrites whole partitions containing modified rows).
    pub touched_partition_fraction: f64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            seed: 0,
            tpcds: TpcdsConfig::default(),
            modified_fraction: 0.03,
            touched_partition_fraction: 0.25,
        }
    }
}

/// The three bars of Fig. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Result {
    /// Single-user runtime on the freshly loaded tables (seconds).
    pub initial_s: f64,
    /// Runtime after the maintenance phase (seconds).
    pub after_maintenance_s: f64,
    /// Runtime after compaction (seconds).
    pub after_compaction_s: f64,
}

impl Fig3Result {
    /// Degradation factor (paper: ≈1.53×).
    pub fn degradation(&self) -> f64 {
        self.after_maintenance_s / self.initial_s.max(1e-9)
    }

    /// Post-compaction runtime relative to the initial run (paper: ≈1×).
    pub fn recovery(&self) -> f64 {
        self.after_compaction_s / self.initial_s.max(1e-9)
    }
}

/// Runs one single-user phase *sequentially* (the paper's single-user
/// stream: each query starts when the previous one finishes) and returns
/// `(duration_ms, end_ms)`.
fn run_single_user(
    env: &mut SimEnv,
    db: &TpcdsDatabase,
    config: &TpcdsConfig,
    start_ms: u64,
    query_seed: u64,
) -> (f64, u64) {
    // Same seed every phase: all three bars run the *identical* query
    // stream, so runtime differences come from the data layout alone.
    let mut rng = SimRng::seed_from_u64(query_seed);
    let ops = single_user_ops(db, config, 0, 0, "query", &mut rng);
    let mut t = start_ms;
    for op in ops {
        if let OpSpec::Read(spec) = op.op {
            env.drain_due(t);
            let result = env
                .submit_read(&spec, t)
                .expect("single-user reads target live tables");
            t = result.finished_ms + 100;
        }
    }
    ((t - start_ms) as f64, t)
}

/// Runs the full Fig. 3 experiment.
pub fn run_fig3(config: &Fig3Config) -> Fig3Result {
    let mut env = SimEnv::new(EnvConfig {
        seed: config.seed,
        ..EnvConfig::default()
    });
    let db = build_tpcds(&mut env, "tpcds", "tenant", &config.tpcds)
        .expect("fresh database name never collides");
    env.drain_all();

    // Phase 1: initial single-user run.
    let start = env.clock.now() + MS_PER_MIN;
    let query_seed = config.seed ^ 0x51_0513;
    let (initial_ms, t) = run_single_user(&mut env, &db, &config.tpcds, start, query_seed);

    // Phase 2: data maintenance — MoR deletes + CoW re-inserts over the
    // most recent partitions, fragmenting them.
    let mut t = t + MS_PER_MIN;
    for table in db.facts() {
        let (total_bytes, keys) = {
            let entry = env.catalog.table(table).expect("fact table exists");
            (entry.table.total_bytes(), entry.table.partition_keys())
        };
        let take = ((keys.len() as f64 * config.touched_partition_fraction) as usize).max(1);
        let recent: Vec<PartitionKey> = keys.into_iter().rev().take(take).collect();
        let modified = (total_bytes as f64 * config.modified_fraction) as u64;
        // Delete side: MoR delete files.
        let delete = WriteSpec {
            table,
            op: WriteOp::MergeOnReadDelta,
            partitions: recent.clone(),
            total_bytes: (modified / 20).max(MB),
            file_size: FileSizePlan {
                median_bytes: MB,
                sigma: 0.4,
            },
            partition_skew: 0.0,
            cluster: "query".to_string(),
            parallelism: 4,
        };
        env.submit_write(&delete, t).expect("maintenance delete");
        t += 30_000;
        env.drain_due(t);
        // Insert side: CoW rewrite of the touched partitions with a
        // misconfigured writer (the small-file source).
        let touched_bytes: u64 = {
            let entry = env.catalog.table(table).expect("fact table exists");
            recent
                .iter()
                .filter_map(|k| entry.table.files_in_partition(k))
                .flatten()
                .filter_map(|id| entry.table.file(*id))
                .map(|f| f.file_size_bytes)
                .sum()
        };
        let overwrite = WriteSpec {
            table,
            op: WriteOp::CopyOnWriteOverwrite,
            partitions: recent,
            total_bytes: touched_bytes.max(modified),
            file_size: FileSizePlan::trickle(),
            partition_skew: 0.0,
            cluster: "query".to_string(),
            parallelism: 8,
        };
        let w = env.submit_write(&overwrite, t).expect("maintenance insert");
        t = w.finished_ms + MS_PER_MIN;
        env.drain_due(t);
    }

    // Phase 3: degraded single-user run.
    let (after_maintenance_ms, t) = run_single_user(&mut env, &db, &config.tpcds, t, query_seed);

    // Phase 4: manual compaction of every table (§2: "manually triggering
    // compaction restored performance").
    let mut t = t + MS_PER_MIN;
    for (_, table, _) in &db.tables {
        let plan = {
            let entry = env.catalog.table(*table).expect("table exists");
            plan_table_rewrite(&entry.table, &BinPackConfig::default())
        };
        if plan.is_empty() {
            continue;
        }
        let predicted = env.cost().estimate_gbhr(64.0, plan.input_bytes());
        let opts = RewriteOptions {
            cluster: "compaction".to_string(),
            parallelism: 3,
            trigger: "manual".to_string(),
            predicted_reduction: plan.expected_reduction(),
            predicted_gbhr: predicted,
        };
        if let Some(job) = env
            .submit_rewrite(&plan, &opts, t)
            .expect("rewrite submission")
        {
            t = job.commit_due_ms + 1;
            env.drain_due(t);
        }
    }

    // Phase 5: recovered single-user run.
    let (after_compaction_ms, _) = run_single_user(&mut env, &db, &config.tpcds, t, query_seed);

    Fig3Result {
        initial_s: initial_ms / 1000.0,
        after_maintenance_s: after_maintenance_ms / 1000.0,
        after_compaction_s: after_compaction_ms / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakesim_storage::GB;

    fn test_config() -> Fig3Config {
        Fig3Config {
            seed: 9,
            tpcds: TpcdsConfig {
                scale_bytes: 4 * GB,
                date_partitions: 12,
                queries_per_phase: 25,
                ..TpcdsConfig::default()
            },
            ..Fig3Config::default()
        }
    }

    #[test]
    fn maintenance_degrades_and_compaction_recovers() {
        let r = run_fig3(&test_config());
        assert!(
            r.degradation() > 1.15,
            "maintenance must degrade noticeably: {:.3}",
            r.degradation()
        );
        assert!(
            r.recovery() < r.degradation(),
            "compaction must claw back time: rec {:.3} deg {:.3}",
            r.recovery(),
            r.degradation()
        );
        assert!(
            r.recovery() < 1.25,
            "post-compaction should be near the initial run: {:.3}",
            r.recovery()
        );
    }

    #[test]
    fn result_is_deterministic() {
        let a = run_fig3(&test_config());
        let b = run_fig3(&test_config());
        assert_eq!(a, b);
    }
}
