//! Experiment implementations, one module per paper section.

pub mod cab;
pub mod fig3;
pub mod production;
pub mod tuning;
