//! The §6 CAB experiment: Figures 6–8 and Table 1.
//!
//! 20 TPC-H-like databases run CAB query streams for five hours on the
//! query cluster while AutoComp triggers hourly on the compaction cluster.
//! Strategies compared: no compaction, MOOP(table, top-10),
//! MOOP(hybrid, top-50) and MOOP(hybrid, top-500), with weights 0.7 (file
//! count reduction) / 0.3 (compute cost) and a 512MB target, "mimicking
//! our OpenHouse deployment".

use autocomp::{
    AllParallelScheduler, AlreadyCompactFilter, AutoComp, AutoCompConfig, CompactionDisabledFilter,
    ComputeCostGbhr, FileCountReduction, IntermediateTableFilter, ParallelTablesScheduler,
    RankingPolicy, ScopeStrategy, StrictSequentialScheduler, TraitWeight,
};
use autocomp_lakesim::{with_shared_env, LakesimConnector, LakesimExecutor};
use lakesim_catalog::JobStatus;
use lakesim_engine::{
    AppKind, Candlestick, ConflictSide, EnvConfig, QueryClass, SimEnv, SimRng, MS_PER_HOUR,
    MS_PER_MIN,
};
use lakesim_storage::GB;
use lakesim_workload::cab::{generate_cab, CabConfig};
use lakesim_workload::driver::run_stream;

/// Compaction strategy under test.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Baseline: no compaction.
    NoCompaction,
    /// MOOP-ranked top-k compaction at the given scope.
    Moop {
        /// Candidate scope.
        scope: ScopeStrategy,
        /// Work units per cycle.
        k: usize,
    },
}

impl Strategy {
    /// Label used in figure output.
    pub fn label(&self) -> String {
        match self {
            Strategy::NoCompaction => "no-compaction".to_string(),
            Strategy::Moop { scope, k } => format!("moop-{}-top{k}", scope.label()),
        }
    }
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct CabExperimentConfig {
    /// Master seed.
    pub seed: u64,
    /// Workload parameters.
    pub cab: CabConfig,
    /// Strategy under test.
    pub strategy: Strategy,
    /// File-count sampling cadence.
    pub sample_every_ms: u64,
    /// Compaction trigger cadence (paper: hourly).
    pub compact_every_ms: u64,
    /// MOOP weights (file-count reduction, compute cost); paper: 0.7/0.3.
    pub weights: (f64, f64),
    /// Act-phase scheduler (§4.4 ablation).
    pub scheduler: SchedulerKind,
}

/// Scheduler choice for the act phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Paper production arrangement: parallel tables, sequential
    /// partitions (§6).
    ParallelTables,
    /// Everything concurrent — the configuration §4.4 observed failing.
    AllParallel,
    /// One job at a time.
    StrictSequential,
}

impl CabExperimentConfig {
    /// Paper-scale parameters (§6): 20 DBs, 500GB, 5 hours.
    pub fn paper_scale(seed: u64, strategy: Strategy) -> Self {
        CabExperimentConfig {
            seed,
            cab: CabConfig::default(),
            strategy,
            sample_every_ms: 10 * MS_PER_MIN,
            compact_every_ms: MS_PER_HOUR,
            weights: (0.7, 0.3),
            scheduler: SchedulerKind::ParallelTables,
        }
    }

    /// Mid-scale parameters: the default for the figure binaries (the
    /// paper scale is available via `AUTOCOMP_SCALE=paper`).
    pub fn mid_scale(seed: u64, strategy: Strategy) -> Self {
        CabExperimentConfig {
            seed,
            cab: CabConfig {
                databases: 8,
                duration_hours: 5,
                bytes_per_database: 4 * GB,
                months: 12,
                ..CabConfig::default()
            },
            strategy,
            sample_every_ms: 10 * MS_PER_MIN,
            compact_every_ms: MS_PER_HOUR,
            weights: (0.7, 0.3),
            scheduler: SchedulerKind::ParallelTables,
        }
    }

    /// Picks a scale from the `AUTOCOMP_SCALE` environment variable:
    /// `paper`, `mid` (default) or `test`.
    pub fn from_env(seed: u64, strategy: Strategy) -> Self {
        match std::env::var("AUTOCOMP_SCALE").as_deref() {
            Ok("paper") => Self::paper_scale(seed, strategy),
            Ok("test") => Self::test_scale(seed, strategy),
            _ => Self::mid_scale(seed, strategy),
        }
    }

    /// Scaled-down parameters for tests and quick runs.
    pub fn test_scale(seed: u64, strategy: Strategy) -> Self {
        CabExperimentConfig {
            seed,
            cab: CabConfig {
                databases: 4,
                duration_hours: 3,
                bytes_per_database: GB,
                months: 6,
                ..CabConfig::default()
            },
            strategy,
            sample_every_ms: 10 * MS_PER_MIN,
            compact_every_ms: MS_PER_HOUR,
            weights: (0.7, 0.3),
            scheduler: SchedulerKind::ParallelTables,
        }
    }
}

/// One row of the per-hour breakdown (Fig. 8 + Table 1).
#[derive(Debug, Clone)]
pub struct HourlyRow {
    /// Hour index (1-based, as in the paper's tables).
    pub hour: u64,
    /// Write queries submitted in the hour.
    pub write_queries: u64,
    /// Client-side conflicts (Table 1).
    pub client_conflicts: u64,
    /// Cluster-side conflicts (Table 1).
    pub cluster_conflicts: u64,
    /// Read-only latency candlestick (Fig. 8 left column).
    pub read_only: Option<Candlestick>,
    /// Read-write latency candlestick (Fig. 8 right column).
    pub read_write: Option<Candlestick>,
}

/// Complete result of one CAB run.
#[derive(Debug, Clone)]
pub struct CabRunResult {
    /// Strategy label.
    pub label: String,
    /// `(time_ms, live file count)` series — Fig. 6.
    pub file_count_series: Vec<(u64, u64)>,
    /// Compaction applications executed.
    pub compaction_apps: u64,
    /// Mean GBHr per compaction application — Fig. 7.
    pub mean_compaction_gbhr: f64,
    /// Total compaction GBHr.
    pub total_compaction_gbhr: f64,
    /// Per-hour rows — Fig. 8 / Table 1.
    pub hourly: Vec<HourlyRow>,
    /// End-to-end makespan (§6.2 compares against the 5-hour budget).
    pub makespan_ms: u64,
    /// Actual file-count reduction achieved by succeeded jobs.
    pub files_reduced: i64,
    /// Succeeded compaction jobs.
    pub jobs_succeeded: u64,
    /// Cluster-side-conflicted compaction jobs.
    pub jobs_conflicted: u64,
    /// Candidates selected per cycle (the effective k trace).
    pub selected_per_cycle: Vec<usize>,
}

/// Builds the AutoComp pipeline for a strategy; `None` for the baseline.
pub fn build_pipeline(
    strategy: &Strategy,
    weights: (f64, f64),
    scheduler: SchedulerKind,
) -> Option<AutoComp> {
    match strategy {
        Strategy::NoCompaction => None,
        Strategy::Moop { scope, k } => Some(
            AutoComp::new(AutoCompConfig {
                scope: *scope,
                policy: RankingPolicy::Moop {
                    weights: vec![
                        TraitWeight::new("file_count_reduction", weights.0),
                        TraitWeight::new("compute_cost_gbhr", weights.1),
                    ],
                    k: *k,
                },
                trigger_label: "periodic".to_string(),
                calibrate: false,
            })
            .with_filter(Box::new(CompactionDisabledFilter))
            .with_filter(Box::new(IntermediateTableFilter))
            .with_filter(Box::new(AlreadyCompactFilter {
                min_small_files: 2,
                min_small_fraction: 0.0,
            }))
            .with_trait(Box::new(FileCountReduction::default()))
            .with_trait(Box::new(ComputeCostGbhr::default()))
            .with_scheduler(match scheduler {
                SchedulerKind::ParallelTables => Box::new(ParallelTablesScheduler),
                SchedulerKind::AllParallel => Box::new(AllParallelScheduler),
                SchedulerKind::StrictSequential => Box::new(StrictSequentialScheduler),
            }),
        ),
    }
}

/// Runs the CAB experiment for one strategy.
pub fn run_cab(config: &CabExperimentConfig) -> CabRunResult {
    let mut env = SimEnv::new(EnvConfig {
        seed: config.seed,
        ..EnvConfig::default()
    });
    let mut rng = SimRng::seed_from_u64(config.seed ^ 0xCAB);
    let workload = generate_cab(&mut env, &config.cab, &mut rng);
    let mut pipeline = build_pipeline(&config.strategy, config.weights, config.scheduler);
    let end_ms = config.cab.duration_hours * MS_PER_HOUR;

    let data_files = |env: &SimEnv| env.fs.total_files_of_kind(lakesim_storage::FileKind::Data);
    let mut file_count_series = vec![(0, data_files(&env))];
    let mut selected_per_cycle = Vec::new();
    let compact_every = config.compact_every_ms.max(1);
    let stats = run_stream(
        &mut env,
        &workload.ops,
        config.sample_every_ms,
        end_ms,
        |env, tick| {
            if tick % compact_every == 0 {
                if let Some(pipeline) = pipeline.as_mut() {
                    let selected = with_shared_env(env, |shared| {
                        let connector = LakesimConnector::new(shared.clone());
                        let mut executor = LakesimExecutor::new(shared.clone());
                        pipeline
                            .run_cycle(&connector, &mut executor, tick)
                            .map(|report| report.selected_count())
                            .unwrap_or(0)
                    });
                    selected_per_cycle.push(selected);
                }
            }
            file_count_series.push((tick, data_files(env)));
        },
    );
    file_count_series.push((end_ms, data_files(&env)));

    let hourly = (0..config.cab.duration_hours)
        .map(|h| {
            let from = h * MS_PER_HOUR;
            let to = (h + 1) * MS_PER_HOUR;
            HourlyRow {
                hour: h + 1,
                write_queries: env.metrics.write_queries_in(from, to),
                client_conflicts: env.metrics.conflicts_in(from, to, ConflictSide::Client),
                cluster_conflicts: env.metrics.conflicts_in(from, to, ConflictSide::Cluster),
                read_only: env.metrics.candlestick(from, to, QueryClass::ReadOnly),
                read_write: env.metrics.candlestick(from, to, QueryClass::ReadWrite),
            }
        })
        .collect();

    let compaction = env.cluster("compaction").expect("provisioned");
    let files_reduced = env
        .maintenance
        .with_status(JobStatus::Succeeded)
        .map(|r| r.actual_reduction)
        .sum();
    CabRunResult {
        label: config.strategy.label(),
        file_count_series,
        compaction_apps: compaction.apps_of_kind(AppKind::Compaction).count() as u64,
        mean_compaction_gbhr: compaction.mean_gbhr(AppKind::Compaction),
        total_compaction_gbhr: compaction.total_gbhr(AppKind::Compaction),
        hourly,
        makespan_ms: stats.makespan_ms,
        files_reduced,
        jobs_succeeded: env.maintenance.count(JobStatus::Succeeded),
        jobs_conflicted: env.maintenance.count(JobStatus::Conflicted),
        selected_per_cycle,
    }
}

/// The paper's four §6 strategies in presentation order.
pub fn paper_strategies() -> Vec<Strategy> {
    vec![
        Strategy::NoCompaction,
        Strategy::Moop {
            scope: ScopeStrategy::Table,
            k: 10,
        },
        Strategy::Moop {
            scope: ScopeStrategy::Hybrid,
            k: 50,
        },
        Strategy::Moop {
            scope: ScopeStrategy::Hybrid,
            k: 500,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_beats_baseline_on_file_count() {
        let baseline = run_cab(&CabExperimentConfig::test_scale(1, Strategy::NoCompaction));
        let compacted = run_cab(&CabExperimentConfig::test_scale(
            1,
            Strategy::Moop {
                scope: ScopeStrategy::Table,
                k: 10,
            },
        ));
        let final_baseline = baseline.file_count_series.last().unwrap().1;
        let final_compacted = compacted.file_count_series.last().unwrap().1;
        assert!(
            (final_compacted as f64) < final_baseline as f64 * 0.7,
            "compacted {final_compacted} vs baseline {final_baseline}"
        );
        assert!(compacted.jobs_succeeded > 0);
        assert!(compacted.files_reduced > 0);
        assert_eq!(baseline.compaction_apps, 0);
        assert!(compacted.mean_compaction_gbhr > 0.0);
    }

    #[test]
    fn baseline_file_count_grows_over_time() {
        let baseline = run_cab(&CabExperimentConfig::test_scale(2, Strategy::NoCompaction));
        let first = baseline.file_count_series.first().unwrap().1;
        let last = baseline.file_count_series.last().unwrap().1;
        assert!(last > first, "files must accumulate: {first} -> {last}");
    }

    #[test]
    fn hourly_rows_cover_duration() {
        let r = run_cab(&CabExperimentConfig::test_scale(3, Strategy::NoCompaction));
        assert_eq!(r.hourly.len(), 3);
        let writes: u64 = r.hourly.iter().map(|h| h.write_queries).sum();
        assert!(writes > 0);
        assert!(r.hourly.iter().any(|h| h.read_only.is_some()));
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = CabExperimentConfig::test_scale(
            4,
            Strategy::Moop {
                scope: ScopeStrategy::Hybrid,
                k: 20,
            },
        );
        let a = run_cab(&cfg);
        let b = run_cab(&cfg);
        assert_eq!(a.file_count_series, b.file_count_series);
        assert_eq!(a.files_reduced, b.files_reduced);
        assert_eq!(a.jobs_conflicted, b.jobs_conflicted);
    }
}
