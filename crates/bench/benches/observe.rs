//! Criterion: the observe phase at fleet scale — per-table pull baseline
//! vs. the batched tier, cold vs. incremental (cursor/dirty-set) observe.
//!
//! The synthetic lake models what a real connector pays per stats
//! round-trip: a catalog-session lookup (`SESSION_STEPS`, paid *per
//! call* by the chatty per-table protocol, amortized away by the
//! batch-tier connector, which holds its session across the batch) plus
//! a manifest walk (`MANIFEST_STEPS`, paid per fetched table by both).
//! On multi-core machines the batch tier additionally fans the fetches
//! out over scoped threads; the recorded numbers in `BENCH_ooda.json`
//! note the harness core count.
//!
//! Acceptance (tracked in `BENCH_ooda.json`): `observe/tables/100000`
//! (cold batched) beats `observe/tables_pull/100000`, and
//! `observe/tables_incremental/100000` (1% dirty) is ≥5× faster than the
//! cold batched observe.

use autocomp::{
    AlreadyCompactFilter, AutoComp, AutoCompConfig, BatchLakeConnector, Candidate, CandidateStats,
    ChangeCursor, CompactionDisabledFilter, CompactionExecutor, ComputeCostGbhr, ExecutionResult,
    FileCountReduction, FleetObserver, JobOutcome, JobOutcomeStatus, JobRuntimeConfig,
    LakeConnector, ObserveFault, ObserveRequest, Prediction, RankingPolicy, ScopeStrategy,
    SizeBucket, SnapshotContext, TableRef, TelemetrySink, TrackedExecutor, TraitWeight,
};
use autocomp_lakesim::ObserveFaultScript;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Catalog-session work per chatty round-trip (resolve table, auth,
/// route) — the per-call overhead the batched protocol amortizes.
const SESSION_STEPS: u64 = 96;

/// Manifest-walk work per fetched table — paid by every fetch in both
/// tiers, skipped entirely for tables an incremental observe reuses.
const MANIFEST_STEPS: u64 = 96;

/// Fraction of the fleet written between incremental cycles: 1%.
const DIRTY_DIVISOR: u64 = 100;

struct SyntheticLake {
    tables: Vec<TableRef>,
}

impl SyntheticLake {
    fn new(n: u64) -> Self {
        SyntheticLake {
            tables: (0..n)
                .map(|i| TableRef {
                    table_uid: i,
                    database: format!("db{}", i % 64).into(),
                    name: format!("t{i}").into(),
                    partitioned: false,
                    compaction_enabled: i % 17 != 0,
                    is_intermediate: i % 23 == 0,
                })
                .collect(),
        }
    }

    /// Deterministic pseudo-manifest walk: derive per-file sizes and fold
    /// them into counts + an 8-bucket histogram.
    fn fetch(&self, uid: u64, extra_steps: u64) -> CandidateStats {
        let target = 512u64 << 20;
        let mut buckets = [0u64; 8];
        let mut file_count = 0;
        let mut small = 0u64;
        let mut small_bytes = 0u64;
        let mut total = 0u64;
        let mut state = uid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        // Session steps burn the same per-step work as manifest steps but
        // contribute nothing to the stats (pure round-trip overhead).
        for _ in 0..extra_steps {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
        }
        for _ in 0..MANIFEST_STEPS {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let size = (state % (target * 2)).max(1);
            file_count += 1;
            total += size;
            if size < target {
                small += 1;
                small_bytes += size;
            }
            let bucket = ((size * 8) / (target * 2)).min(7) as usize;
            buckets[bucket] += 1;
        }
        CandidateStats {
            file_count,
            small_file_count: small,
            small_bytes,
            total_bytes: total,
            target_file_size: target,
            size_histogram: buckets
                .iter()
                .enumerate()
                .map(|(i, count)| SizeBucket {
                    upper_bytes: (i < 7).then(|| (i as u64 + 1) * target / 4),
                    count: *count,
                })
                .collect(),
            ..CandidateStats::default()
        }
    }

    fn dirty_set(&self) -> Vec<u64> {
        let n = self.tables.len() as u64;
        (0..n / DIRTY_DIVISOR)
            .map(|i| i * DIRTY_DIVISOR % n)
            .collect()
    }
}

/// The chatty tier: every stats call is a fresh round-trip paying the
/// catalog-session overhead.
struct PerCallLake<'a>(&'a SyntheticLake);

impl LakeConnector for PerCallLake<'_> {
    fn list_tables(&self) -> Vec<TableRef> {
        self.0.tables.clone()
    }
    fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
        Some(self.0.fetch(uid, SESSION_STEPS))
    }
    fn partition_stats(&self, _uid: u64) -> Vec<(String, CandidateStats)> {
        Vec::new()
    }
    fn fleet_cursor(&self) -> Option<ChangeCursor> {
        Some(ChangeCursor(0))
    }
    fn changes_since(&self, _cursor: ChangeCursor) -> Option<Vec<u64>> {
        Some(self.0.dirty_set())
    }
}

/// The batch tier: the connector holds its catalog session across the
/// batch, so fetches pay only the manifest walk (and fan out over scoped
/// threads where cores allow).
struct SessionLake<'a>(&'a SyntheticLake);

impl BatchLakeConnector for SessionLake<'_> {
    fn list_tables(&self) -> Vec<TableRef> {
        self.0.tables.clone()
    }
    fn listing_epoch(&self) -> Option<u64> {
        Some(0)
    }
    fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
        Some(self.0.fetch(uid, 0))
    }
    fn partition_stats(&self, _uid: u64) -> Vec<(String, CandidateStats)> {
        Vec::new()
    }
    fn fleet_cursor(&self) -> Option<ChangeCursor> {
        Some(ChangeCursor(0))
    }
    fn changes_since(&self, _cursor: ChangeCursor) -> Option<Vec<u64>> {
        Some(self.0.dirty_set())
    }
}

/// The batch tier with explicit fallible reads: same stats as
/// [`SessionLake`], but every `try_*` override consults an attached
/// (empty) fault script before the real read — the exact read discipline
/// of the production fault-capable connectors. With no faults armed this
/// measures the fallible boundary's overhead: script check + `Result`
/// wrapping per read, against the same-pass `full_cycle_incremental`
/// whose connector uses the infallible `try_*` defaults.
struct FaultCapableLake<'a> {
    inner: SessionLake<'a>,
    faults: Arc<ObserveFaultScript>,
}

impl BatchLakeConnector for FaultCapableLake<'_> {
    fn list_tables(&self) -> Vec<TableRef> {
        self.inner.list_tables()
    }
    fn listing_epoch(&self) -> Option<u64> {
        self.inner.listing_epoch()
    }
    fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
        self.inner.table_stats(uid)
    }
    fn partition_stats(&self, uid: u64) -> Vec<(String, CandidateStats)> {
        self.inner.partition_stats(uid)
    }
    fn fleet_cursor(&self) -> Option<ChangeCursor> {
        self.inner.fleet_cursor()
    }
    fn changes_since(&self, cursor: ChangeCursor) -> Option<Vec<u64>> {
        self.inner.changes_since(cursor)
    }
    fn try_list_tables(&self) -> Result<Vec<TableRef>, ObserveFault> {
        match self.faults.pop_listing() {
            Some(fault) => Err(fault),
            None => Ok(self.list_tables()),
        }
    }
    fn try_table_stats(&self, uid: u64) -> Result<Option<CandidateStats>, ObserveFault> {
        match self.faults.pop_stats(uid) {
            Some(fault) => Err(fault),
            None => Ok(self.table_stats(uid)),
        }
    }
    fn try_partition_stats(&self, uid: u64) -> Result<Vec<(String, CandidateStats)>, ObserveFault> {
        match self.faults.pop_stats(uid) {
            Some(fault) => Err(fault),
            None => Ok(self.partition_stats(uid)),
        }
    }
    fn try_snapshot_stats(
        &self,
        uid: u64,
        window_ms: u64,
    ) -> Result<Option<CandidateStats>, ObserveFault> {
        match self.faults.pop_stats(uid) {
            Some(fault) => Err(fault),
            None => Ok(self.snapshot_stats(uid, window_ms)),
        }
    }
    fn try_changes_since(&self, cursor: ChangeCursor) -> Result<Option<Vec<u64>>, ObserveFault> {
        Ok(self.changes_since(cursor))
    }
}

/// The batch tier with a *rotating* changelog: each observe pass's
/// cursor advance dirties the next 1% window of the fleet, so across a
/// bench run every dirty set differs — the steady-state shape the
/// dirty-overwrite observe assembly and the incremental rank memo must
/// absorb (changing dirty positions, advancing cursor chain and clock;
/// stats stay pure per uid, so normalization bounds hold and the memo
/// path stays engaged like a production quiet-majority fleet).
struct RotatingSessionLake<'a> {
    inner: &'a SyntheticLake,
    cursor: AtomicU64,
}

impl<'a> RotatingSessionLake<'a> {
    fn new(inner: &'a SyntheticLake) -> Self {
        RotatingSessionLake {
            inner,
            cursor: AtomicU64::new(0),
        }
    }
}

impl BatchLakeConnector for RotatingSessionLake<'_> {
    fn list_tables(&self) -> Vec<TableRef> {
        self.inner.tables.clone()
    }
    fn listing_epoch(&self) -> Option<u64> {
        Some(0)
    }
    fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
        Some(self.inner.fetch(uid, 0))
    }
    fn partition_stats(&self, _uid: u64) -> Vec<(String, CandidateStats)> {
        Vec::new()
    }
    fn fleet_cursor(&self) -> Option<ChangeCursor> {
        Some(ChangeCursor(self.cursor.fetch_add(1, Ordering::SeqCst)))
    }
    fn changes_since(&self, cursor: ChangeCursor) -> Option<Vec<u64>> {
        let n = self.inner.tables.len() as u64;
        let window = n / DIRTY_DIVISOR;
        Some((0..window).map(|i| (cursor.0 * window + i) % n).collect())
    }
}

/// Trivial-stats lake with a changelog: stats production is ~free (the
/// `ooda_pipeline` bench's formula), so the full-cycle numbers below
/// isolate *framework* cost and are directly comparable to
/// `ooda_cycle/tables/100000` — the cold decide path the incremental
/// cycle is measured against.
struct CheapChangeLake {
    tables: Vec<TableRef>,
    dirty: Vec<u64>,
}

impl CheapChangeLake {
    fn new(n: u64) -> Self {
        CheapChangeLake {
            tables: (0..n)
                .map(|i| TableRef {
                    table_uid: i,
                    database: format!("db{}", i % 64).into(),
                    name: format!("t{i}").into(),
                    partitioned: false,
                    compaction_enabled: i % 17 != 0,
                    is_intermediate: i % 23 == 0,
                })
                .collect(),
            dirty: (0..n / DIRTY_DIVISOR)
                .map(|i| i * DIRTY_DIVISOR % n)
                .collect(),
        }
    }
}

impl LakeConnector for CheapChangeLake {
    fn list_tables(&self) -> Vec<TableRef> {
        self.tables.clone()
    }
    fn listing_epoch(&self) -> Option<u64> {
        Some(0)
    }
    fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
        Some(CandidateStats {
            file_count: 10 + (uid * 31) % 4000,
            small_file_count: (uid * 31) % 4000,
            small_bytes: ((uid * 71) % 2048) << 20,
            total_bytes: ((uid * 131) % 8192) << 20,
            target_file_size: 512 << 20,
            ..CandidateStats::default()
        })
    }
    fn partition_stats(&self, _uid: u64) -> Vec<(String, CandidateStats)> {
        Vec::new()
    }
    fn fleet_cursor(&self) -> Option<ChangeCursor> {
        Some(ChangeCursor(0))
    }
    fn changes_since(&self, _cursor: ChangeCursor) -> Option<Vec<u64>> {
        Some(self.dirty.clone())
    }
}

struct NullExecutor;

impl CompactionExecutor for NullExecutor {
    fn execute(&mut self, _c: &Candidate, _p: &Prediction, now: u64) -> ExecutionResult {
        ExecutionResult {
            scheduled: true,
            job_id: Some(1),
            gbhr: 0.0,
            commit_due_ms: Some(now),
            error: None,
        }
    }
}

/// Async platform model for the job-runtime bench: submissions settle
/// `duration_ms` later (≈3 cycles at the bench cadence), so a steady
/// population of jobs stays in flight — suppression, ledger upkeep,
/// settling and automatic feedback ingestion are all on the measured
/// path.
struct TrackedPlatform {
    duration_ms: u64,
    next_job: u64,
    running: Vec<(u64, u64, u64)>, // (job_id, uid, due_ms)
}

impl TrackedPlatform {
    fn new(duration_ms: u64) -> Self {
        TrackedPlatform {
            duration_ms,
            next_job: 0,
            running: Vec::new(),
        }
    }
}

impl CompactionExecutor for TrackedPlatform {
    fn execute(&mut self, c: &Candidate, p: &Prediction, now: u64) -> ExecutionResult {
        self.next_job += 1;
        let due = now + self.duration_ms;
        self.running.push((self.next_job, c.id.table_uid, due));
        ExecutionResult {
            scheduled: true,
            job_id: Some(self.next_job),
            gbhr: p.gbhr,
            commit_due_ms: Some(due),
            error: None,
        }
    }
}

impl TrackedExecutor for TrackedPlatform {
    fn poll(&mut self, now: u64) -> Vec<JobOutcome> {
        let (due, rest): (Vec<_>, Vec<_>) =
            self.running.drain(..).partition(|(_, _, due)| *due <= now);
        self.running = rest;
        due.into_iter()
            .map(|(job_id, uid, due_ms)| JobOutcome {
                job_id,
                table_uid: uid,
                status: JobOutcomeStatus::Succeeded,
                finished_at_ms: due_ms,
                actual_reduction: 8,
                actual_gbhr: 1.0,
            })
            .collect()
    }
}

fn full_cycle_pipeline() -> AutoComp {
    AutoComp::new(AutoCompConfig {
        scope: ScopeStrategy::Table,
        policy: RankingPolicy::Moop {
            weights: vec![
                TraitWeight::new("file_count_reduction", 0.7),
                TraitWeight::new("compute_cost_gbhr", 0.3),
            ],
            k: 100,
        },
        trigger_label: "bench".to_string(),
        calibrate: false,
    })
    .with_filter(Box::new(CompactionDisabledFilter))
    .with_filter(Box::new(AlreadyCompactFilter {
        min_small_files: 2,
        min_small_fraction: 0.0,
    }))
    .with_trait(Box::new(FileCountReduction::default()))
    .with_trait(Box::new(ComputeCostGbhr::default()))
}

fn bench_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("observe");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 100_000u64;
    let lake = SyntheticLake::new(n);

    // Baseline: the historical chatty per-table pull protocol.
    let chatty = PerCallLake(&lake);
    group.bench_with_input(BenchmarkId::new("tables_pull", n), &n, |b, _| {
        b.iter(|| chatty.observe(&ObserveRequest::fresh(ScopeStrategy::Table)))
    });

    // Cold batched observe: session amortized, fetches fan out.
    let batch = SessionLake(&lake);
    group.bench_with_input(BenchmarkId::new("tables", n), &n, |b, _| {
        b.iter(|| batch.observe(&ObserveRequest::fresh(ScopeStrategy::Table)))
    });

    // Incremental observe: 1% dirty, the rest reused from the prior.
    let prior = batch.observe(&ObserveRequest::fresh(ScopeStrategy::Table));
    group.bench_with_input(BenchmarkId::new("tables_incremental", n), &n, |b, _| {
        b.iter(|| batch.observe(&ObserveRequest::incremental(ScopeStrategy::Table, &prior)))
    });

    // Full OODA cycle over the manifest-walk lake (the same stats-cost
    // model as the observe benches above): cold pays full-fleet stats
    // production + filter/orient; the incremental variant re-fetches the
    // 1% dirty set and splices the rest of filter/orient from the cycle
    // cache — the end-to-end incremental record BENCH_ooda.json tracks.
    group.bench_with_input(BenchmarkId::new("full_cycle_cold", n), &n, |b, _| {
        let mut ac = full_cycle_pipeline().with_cycle_cache(false);
        let mut exec = NullExecutor;
        b.iter(|| {
            ac.run_cycle_batch(&batch, &mut exec, 0)
                .expect("cycle runs")
        })
    });
    group.bench_with_input(BenchmarkId::new("full_cycle_incremental", n), &n, |b, _| {
        // Sink explicitly disabled: this is the uninstrumented baseline
        // of the telemetry-overhead pair below.
        let mut ac = full_cycle_pipeline().with_telemetry(TelemetrySink::disabled());
        let mut observer = FleetObserver::new();
        let mut exec = NullExecutor;
        // Prime: one cold cycle fills the observer + cache; every
        // measured cycle then reuses 99% of the fleet.
        ac.run_cycle_incremental_batch(&mut observer, &batch, &mut exec, 0)
            .expect("prime cycle runs");
        b.iter(|| {
            ac.run_cycle_incremental_batch(&mut observer, &batch, &mut exec, 0)
                .expect("cycle runs")
        })
    });

    // Fault-boundary overhead pair: the identical incremental cycle
    // through a connector whose `try_*` reads are real overrides
    // (per-read fault-script check + `Result` wrapping, the production
    // fault-capable discipline) with no faults armed. Acceptance
    // (BENCH_ooda.json, CI smoke gate): within noise of the same-pass
    // `full_cycle_incremental` — resilience must be free when nothing
    // faults.
    group.bench_with_input(
        BenchmarkId::new("full_cycle_faulty_observe", n),
        &n,
        |b, _| {
            let faulty = FaultCapableLake {
                inner: SessionLake(&lake),
                faults: ObserveFaultScript::new(),
            };
            let mut ac = full_cycle_pipeline().with_telemetry(TelemetrySink::disabled());
            let mut observer = FleetObserver::new();
            let mut exec = NullExecutor;
            ac.run_cycle_incremental_batch(&mut observer, &faulty, &mut exec, 0)
                .expect("prime cycle runs");
            b.iter(|| {
                ac.run_cycle_incremental_batch(&mut observer, &faulty, &mut exec, 0)
                    .expect("cycle runs")
            })
        },
    );

    // Telemetry-overhead pair: the identical incremental cycle with the
    // sink *enabled* and driven by a real microsecond clock — spans,
    // per-phase histograms and cache/memo gauges all record every cycle.
    // Acceptance (BENCH_ooda.json, CI smoke gate): within 3% of the
    // same-pass `full_cycle_incremental`.
    group.bench_with_input(BenchmarkId::new("full_cycle_telemetry", n), &n, |b, _| {
        let epoch = Instant::now();
        let sink = TelemetrySink::with_clock(Arc::new(move || epoch.elapsed().as_micros() as u64));
        let mut ac = full_cycle_pipeline().with_telemetry(sink);
        let mut observer = FleetObserver::new();
        let mut exec = NullExecutor;
        ac.run_cycle_incremental_batch(&mut observer, &batch, &mut exec, 0)
            .expect("prime cycle runs");
        b.iter(|| {
            ac.run_cycle_incremental_batch(&mut observer, &batch, &mut exec, 0)
                .expect("cycle runs")
        })
    });

    // Steady-state incremental cycle: same pipeline, but the dirty 1%
    // window *rotates* every cycle and the clock advances — the
    // PR-5 headline shape. The dirty-overwrite observe assembly patches
    // only the rotating window, the rank memo splices quiet scores and
    // maintains the selection prefix, and the lazy report tail skips the
    // fleet-wide RankedEntry materialization.
    group.bench_with_input(
        BenchmarkId::new("full_cycle_incremental_steady", n),
        &n,
        |b, _| {
            let rotating = RotatingSessionLake::new(&lake);
            let mut ac = full_cycle_pipeline();
            let mut observer = FleetObserver::new();
            let mut exec = NullExecutor;
            let mut now = 0u64;
            ac.run_cycle_incremental_batch(&mut observer, &rotating, &mut exec, now)
                .expect("prime cycle runs");
            b.iter(|| {
                now += 577;
                ac.run_cycle_incremental_batch(&mut observer, &rotating, &mut exec, now)
                    .expect("cycle runs")
            })
        },
    );

    // Job-runtime cycle: the incremental cycle above plus the tracked
    // act phase — poll + settle (≈100 outcomes/cycle), automatic
    // feedback ingestion, settled-dirty re-observe, in-flight
    // suppression over a steady 200-300-job ledger, and admission
    // checks. Compare against full_cycle_incremental in the same pass
    // (the tracked overhead must not push the cycle out of the
    // incremental band).
    group.bench_with_input(BenchmarkId::new("full_cycle_tracked", n), &n, |b, _| {
        let mut ac = full_cycle_pipeline().with_job_tracker(JobRuntimeConfig {
            max_in_flight: 512,
            max_in_flight_per_database: 64,
            ..JobRuntimeConfig::default()
        });
        let mut observer = FleetObserver::new();
        let mut platform = TrackedPlatform::new(1_500);
        let mut now = 0u64;
        ac.run_cycle_tracked_incremental_batch(&mut observer, &batch, &mut platform, now)
            .expect("prime cycle runs");
        b.iter(|| {
            now += 577;
            ac.run_cycle_tracked_incremental_batch(&mut observer, &batch, &mut platform, now)
                .expect("cycle runs")
        })
    });

    // The same pair over a trivial-stats changelog lake: stats are ~free
    // (the ooda_pipeline formula), so these isolate pure framework cost —
    // directly comparable to `ooda_cycle/tables/100000`.
    let cheap = CheapChangeLake::new(n);
    group.bench_with_input(BenchmarkId::new("framework_cycle_cold", n), &n, |b, _| {
        let mut ac = full_cycle_pipeline().with_cycle_cache(false);
        let mut exec = NullExecutor;
        b.iter(|| ac.run_cycle(&cheap, &mut exec, 0).expect("cycle runs"))
    });
    group.bench_with_input(
        BenchmarkId::new("framework_cycle_incremental", n),
        &n,
        |b, _| {
            let mut ac = full_cycle_pipeline();
            let mut observer = FleetObserver::new();
            let mut exec = NullExecutor;
            ac.run_cycle_incremental(&mut observer, &cheap, &mut exec, 0)
                .expect("prime cycle runs");
            b.iter(|| {
                ac.run_cycle_incremental(&mut observer, &cheap, &mut exec, 0)
                    .expect("cycle runs")
            })
        },
    );
    group.finish();
}

/// Crash-recovery cost at fleet scale: a restart that warm-restores a
/// boundary snapshot pays snapshot decode + the 1% dirty re-fetch; a
/// cold restart pays the fleet-wide observe. Same pass, same lake —
/// `BENCH_ooda.json` records the pair under `snapshot_restore/*`.
fn bench_snapshot_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_restore");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 100_000u64;
    let lake = SyntheticLake::new(n);
    let batch = SessionLake(&lake);

    // Prime a pipeline through one cycle and capture its boundary
    // snapshot — the durable artifact both restart paths start from.
    let mut primed = full_cycle_pipeline();
    let mut primed_observer = FleetObserver::new();
    let mut exec = NullExecutor;
    primed
        .run_cycle_incremental_batch(&mut primed_observer, &batch, &mut exec, 0)
        .expect("prime cycle runs");
    let ctx = SnapshotContext::default();
    let snapshot = primed
        .encode_snapshot(&primed_observer, &ctx)
        .expect("boundary snapshot encodes");

    // Warm restart: decode + validate the snapshot, then run the first
    // post-restore cycle — only the 1% dirty set re-fetches.
    group.bench_with_input(BenchmarkId::new("restore_warm", n), &n, |b, _| {
        b.iter(|| {
            let mut ac = full_cycle_pipeline();
            let mut observer = FleetObserver::new();
            let recovery = ac.restore_snapshot(&mut observer, &snapshot);
            assert!(recovery.is_warm(), "bench snapshot must restore warm");
            let mut exec = NullExecutor;
            ac.run_cycle_incremental_batch(&mut observer, &batch, &mut exec, 577)
                .expect("cycle runs")
        })
    });

    // Cold restart companion: no snapshot — the first cycle re-observes
    // the whole fleet.
    group.bench_with_input(BenchmarkId::new("cold_restart", n), &n, |b, _| {
        b.iter(|| {
            let mut ac = full_cycle_pipeline();
            let mut observer = FleetObserver::new();
            let mut exec = NullExecutor;
            ac.run_cycle_incremental_batch(&mut observer, &batch, &mut exec, 577)
                .expect("cycle runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_observe, bench_snapshot_restore);
criterion_main!(benches);
