//! Criterion: the observe phase at fleet scale — per-table pull baseline
//! vs. the batched tier, cold vs. incremental (cursor/dirty-set) observe.
//!
//! The synthetic lake models what a real connector pays per stats
//! round-trip: a catalog-session lookup (`SESSION_STEPS`, paid *per
//! call* by the chatty per-table protocol, amortized away by the
//! batch-tier connector, which holds its session across the batch) plus
//! a manifest walk (`MANIFEST_STEPS`, paid per fetched table by both).
//! On multi-core machines the batch tier additionally fans the fetches
//! out over scoped threads; the recorded numbers in `BENCH_ooda.json`
//! note the harness core count.
//!
//! Acceptance (tracked in `BENCH_ooda.json`): `observe/tables/100000`
//! (cold batched) beats `observe/tables_pull/100000`, and
//! `observe/tables_incremental/100000` (1% dirty) is ≥5× faster than the
//! cold batched observe.

use autocomp::{
    BatchLakeConnector, CandidateStats, ChangeCursor, LakeConnector, ObserveRequest, ScopeStrategy,
    SizeBucket, TableRef,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Catalog-session work per chatty round-trip (resolve table, auth,
/// route) — the per-call overhead the batched protocol amortizes.
const SESSION_STEPS: u64 = 96;

/// Manifest-walk work per fetched table — paid by every fetch in both
/// tiers, skipped entirely for tables an incremental observe reuses.
const MANIFEST_STEPS: u64 = 96;

/// Fraction of the fleet written between incremental cycles: 1%.
const DIRTY_DIVISOR: u64 = 100;

struct SyntheticLake {
    tables: Vec<TableRef>,
}

impl SyntheticLake {
    fn new(n: u64) -> Self {
        SyntheticLake {
            tables: (0..n)
                .map(|i| TableRef {
                    table_uid: i,
                    database: format!("db{}", i % 64).into(),
                    name: format!("t{i}").into(),
                    partitioned: false,
                    compaction_enabled: i % 17 != 0,
                    is_intermediate: i % 23 == 0,
                })
                .collect(),
        }
    }

    /// Deterministic pseudo-manifest walk: derive per-file sizes and fold
    /// them into counts + an 8-bucket histogram.
    fn fetch(&self, uid: u64, extra_steps: u64) -> CandidateStats {
        let target = 512u64 << 20;
        let mut buckets = [0u64; 8];
        let mut file_count = 0;
        let mut small = 0u64;
        let mut small_bytes = 0u64;
        let mut total = 0u64;
        let mut state = uid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        // Session steps burn the same per-step work as manifest steps but
        // contribute nothing to the stats (pure round-trip overhead).
        for _ in 0..extra_steps {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
        }
        for _ in 0..MANIFEST_STEPS {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let size = (state % (target * 2)).max(1);
            file_count += 1;
            total += size;
            if size < target {
                small += 1;
                small_bytes += size;
            }
            let bucket = ((size * 8) / (target * 2)).min(7) as usize;
            buckets[bucket] += 1;
        }
        CandidateStats {
            file_count,
            small_file_count: small,
            small_bytes,
            total_bytes: total,
            target_file_size: target,
            size_histogram: buckets
                .iter()
                .enumerate()
                .map(|(i, count)| SizeBucket {
                    upper_bytes: (i < 7).then(|| (i as u64 + 1) * target / 4),
                    count: *count,
                })
                .collect(),
            ..CandidateStats::default()
        }
    }

    fn dirty_set(&self) -> Vec<u64> {
        let n = self.tables.len() as u64;
        (0..n / DIRTY_DIVISOR)
            .map(|i| i * DIRTY_DIVISOR % n)
            .collect()
    }
}

/// The chatty tier: every stats call is a fresh round-trip paying the
/// catalog-session overhead.
struct PerCallLake<'a>(&'a SyntheticLake);

impl LakeConnector for PerCallLake<'_> {
    fn list_tables(&self) -> Vec<TableRef> {
        self.0.tables.clone()
    }
    fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
        Some(self.0.fetch(uid, SESSION_STEPS))
    }
    fn partition_stats(&self, _uid: u64) -> Vec<(String, CandidateStats)> {
        Vec::new()
    }
    fn fleet_cursor(&self) -> Option<ChangeCursor> {
        Some(ChangeCursor(0))
    }
    fn changes_since(&self, _cursor: ChangeCursor) -> Option<Vec<u64>> {
        Some(self.0.dirty_set())
    }
}

/// The batch tier: the connector holds its catalog session across the
/// batch, so fetches pay only the manifest walk (and fan out over scoped
/// threads where cores allow).
struct SessionLake<'a>(&'a SyntheticLake);

impl BatchLakeConnector for SessionLake<'_> {
    fn list_tables(&self) -> Vec<TableRef> {
        self.0.tables.clone()
    }
    fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
        Some(self.0.fetch(uid, 0))
    }
    fn partition_stats(&self, _uid: u64) -> Vec<(String, CandidateStats)> {
        Vec::new()
    }
    fn fleet_cursor(&self) -> Option<ChangeCursor> {
        Some(ChangeCursor(0))
    }
    fn changes_since(&self, _cursor: ChangeCursor) -> Option<Vec<u64>> {
        Some(self.0.dirty_set())
    }
}

fn bench_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("observe");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 100_000u64;
    let lake = SyntheticLake::new(n);

    // Baseline: the historical chatty per-table pull protocol.
    let chatty = PerCallLake(&lake);
    group.bench_with_input(BenchmarkId::new("tables_pull", n), &n, |b, _| {
        b.iter(|| chatty.observe(&ObserveRequest::fresh(ScopeStrategy::Table)))
    });

    // Cold batched observe: session amortized, fetches fan out.
    let batch = SessionLake(&lake);
    group.bench_with_input(BenchmarkId::new("tables", n), &n, |b, _| {
        b.iter(|| batch.observe(&ObserveRequest::fresh(ScopeStrategy::Table)))
    });

    // Incremental observe: 1% dirty, the rest reused from the prior.
    let prior = batch.observe(&ObserveRequest::fresh(ScopeStrategy::Table));
    group.bench_with_input(BenchmarkId::new("tables_incremental", n), &n, |b, _| {
        b.iter(|| batch.observe(&ObserveRequest::incremental(ScopeStrategy::Table, &prior)))
    });
    group.finish();
}

criterion_group!(benches, bench_observe);
criterion_main!(benches);
