//! Criterion: decide-phase ranking throughput (§4.3) vs candidate count —
//! the fleet-scale scalability claim ("21K onboarded tables, projected to
//! grow to 100K").

use std::collections::BTreeMap;

use autocomp::{
    rank::rank_and_select, Candidate, CandidateId, CandidateStats, QuotaSignal, RankingPolicy,
    TraitDirection, TraitMatrix, TraitWeight,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn candidates(n: u64) -> (Vec<Candidate>, Vec<BTreeMap<String, f64>>) {
    let cands: Vec<Candidate> = (0..n)
        .map(|i| Candidate {
            id: CandidateId::table(i),
            database: format!("db{}", i % 50).into(),
            table_name: format!("t{i}").into(),
            compaction_enabled: true,
            is_intermediate: false,
            stats: CandidateStats {
                small_file_count: (i * 37) % 5000,
                small_bytes: ((i * 97) % 4096) << 20,
                quota: Some(QuotaSignal {
                    used: (i * 13) % 1000,
                    total: 1000,
                }),
                ..CandidateStats::default()
            },
        })
        .collect();
    let traits = cands
        .iter()
        .map(|c| {
            [
                (
                    "file_count_reduction".to_string(),
                    c.stats.small_file_count as f64,
                ),
                (
                    "compute_cost_gbhr".to_string(),
                    c.stats.small_bytes as f64 / (500u64 << 30) as f64 * 64.0,
                ),
            ]
            .into_iter()
            .collect()
        })
        .collect();
    (cands, traits)
}

fn directions() -> BTreeMap<String, TraitDirection> {
    [
        ("file_count_reduction".to_string(), TraitDirection::Benefit),
        ("compute_cost_gbhr".to_string(), TraitDirection::Cost),
    ]
    .into_iter()
    .collect()
}

fn bench_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_and_select");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [100u64, 1_000, 10_000, 100_000] {
        let (cands, traits) = candidates(n);
        let dirs = directions();
        // The orient phase builds the columnar matrix once per cycle;
        // ranking consumes it, so the conversion sits outside the loops.
        let matrix = TraitMatrix::from_maps(&traits, &dirs).expect("uniform trait maps");
        let moop = RankingPolicy::Moop {
            weights: vec![
                TraitWeight::new("file_count_reduction", 0.7),
                TraitWeight::new("compute_cost_gbhr", 0.3),
            ],
            k: 100,
        };
        group.bench_with_input(BenchmarkId::new("moop_topk", n), &n, |b, _| {
            b.iter(|| rank_and_select(&cands, &matrix, &moop).unwrap())
        });
        let budgeted = RankingPolicy::BudgetedMoop {
            weights: vec![
                TraitWeight::new("file_count_reduction", 0.7),
                TraitWeight::new("compute_cost_gbhr", 0.3),
            ],
            cost_trait: "compute_cost_gbhr".to_string(),
            budget: 226.0,
            max_k: None,
        };
        group.bench_with_input(BenchmarkId::new("budgeted_dynamic_k", n), &n, |b, _| {
            b.iter(|| rank_and_select(&cands, &matrix, &budgeted).unwrap())
        });
        let quota = RankingPolicy::QuotaAwareMoop {
            benefit_trait: "file_count_reduction".to_string(),
            cost_trait: "compute_cost_gbhr".to_string(),
            k: Some(100),
            budget: None,
        };
        group.bench_with_input(BenchmarkId::new("quota_aware", n), &n, |b, _| {
            b.iter(|| rank_and_select(&cands, &matrix, &quota).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
