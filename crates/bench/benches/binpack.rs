//! Criterion: bin-packing rewrite planning (§4.1/Iceberg
//! `rewrite_data_files` equivalent) vs table fragmentation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lakesim_lst::{
    plan_table_rewrite, BinPackConfig, ColumnType, DataFile, Field, OpKind, PartitionKey,
    PartitionSpec, PartitionValue, Schema, Table, TableId, TableProperties, Transform,
};
use lakesim_storage::{FileId, MB};

fn fragmented_table(files: u64, partitions: i32) -> Table {
    let schema = Schema::new(vec![
        Field::new(1, "k", ColumnType::Int64, true),
        Field::new(2, "ds", ColumnType::Date, true),
    ])
    .expect("valid schema");
    let mut table = Table::new(
        TableId(1),
        "bench",
        "db",
        schema,
        PartitionSpec::single(2, Transform::Day, "ds"),
        TableProperties::default(),
        0,
    );
    let mut txn = table.begin(OpKind::Append);
    for i in 0..files {
        let partition = PartitionKey::single(PartitionValue::Date((i % partitions as u64) as i32));
        // Mix of small and near-target files.
        let size = if i % 5 == 0 {
            400 * MB
        } else {
            (4 + i % 60) * MB
        };
        txn.add_file(DataFile::data(FileId(i + 1), partition, 1000, size));
    }
    table.commit(txn, 0).expect("append commits");
    table
}

fn bench_binpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_table_rewrite");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let config = BinPackConfig::default();
    for (files, partitions) in [(1_000u64, 24), (10_000, 24), (10_000, 365), (100_000, 365)] {
        let table = fragmented_table(files, partitions);
        group.bench_with_input(
            BenchmarkId::new(format!("{partitions}parts"), files),
            &files,
            |b, _| b.iter(|| plan_table_rewrite(&table, &config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_binpack);
criterion_main!(benches);
