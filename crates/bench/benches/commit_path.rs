//! Criterion: the optimistic commit path (§4.4) — append throughput and
//! conflict validation cost as the snapshot history grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lakesim_lst::{
    ColumnType, ConflictMode, DataFile, Field, OpKind, PartitionKey, PartitionSpec, PartitionValue,
    Schema, Table, TableId, TableProperties, Transaction, Transform,
};
use lakesim_storage::{FileId, MB};

fn table_with_history(commits: u64, mode: ConflictMode) -> Table {
    let schema = Schema::new(vec![
        Field::new(1, "k", ColumnType::Int64, true),
        Field::new(2, "ds", ColumnType::Date, true),
    ])
    .expect("valid schema");
    let mut table = Table::new(
        TableId(1),
        "bench",
        "db",
        schema,
        PartitionSpec::single(2, Transform::Day, "ds"),
        TableProperties {
            conflict_mode: mode,
            ..TableProperties::default()
        },
        0,
    );
    for i in 0..commits {
        let mut txn = table.begin(OpKind::Append);
        txn.add_file(DataFile::data(
            FileId(i + 1),
            PartitionKey::single(PartitionValue::Date((i % 30) as i32)),
            1000,
            8 * MB,
        ));
        table.commit(txn, i).expect("append commits");
    }
    table
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_path");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for history in [100u64, 1_000, 10_000] {
        // Append fast path: never conflicts regardless of history.
        group.bench_with_input(BenchmarkId::new("append", history), &history, |b, _| {
            let base = table_with_history(history, ConflictMode::Strict);
            let mut next_file = 1_000_000u64;
            b.iter_batched(
                || base.clone(),
                |mut table| {
                    let mut txn = table.begin(OpKind::Append);
                    next_file += 1;
                    txn.add_file(DataFile::data(
                        FileId(next_file),
                        PartitionKey::single(PartitionValue::Date(1)),
                        1000,
                        8 * MB,
                    ));
                    table.commit(txn, u64::MAX - 1).expect("append commits")
                },
                criterion::BatchSize::LargeInput,
            )
        });
        // Stale rewrite validation: scans the intermediate snapshots.
        group.bench_with_input(
            BenchmarkId::new("stale_rewrite_validation", history),
            &history,
            |b, _| {
                let table = table_with_history(history, ConflictMode::PartitionAware);
                // A rewrite based at the very first snapshot must validate
                // against the full history.
                let stale_base = table.snapshots().first().map(|s| s.id);
                b.iter_batched(
                    || table.clone(),
                    |mut t| {
                        let mut txn = Transaction::new(stale_base, OpKind::RewriteFiles);
                        txn.remove_file(FileId(1));
                        txn.add_file(DataFile::data(
                            FileId(2_000_000),
                            PartitionKey::single(PartitionValue::Date(0)),
                            1000,
                            8 * MB,
                        ));
                        // Validation outcome (ok or conflict) is the point;
                        // both paths exercise the history scan.
                        let _ = t.commit(txn, u64::MAX - 1);
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_commit);
criterion_main!(benches);
