//! Criterion: a full OODA cycle (observe → orient → decide → act) over an
//! in-memory lake, measuring decision throughput vs fleet size — the
//! framework-overhead question behind scaling to "100K tables".

use autocomp::{
    AlreadyCompactFilter, AutoComp, AutoCompConfig, Candidate, CandidateStats,
    CompactionDisabledFilter, CompactionExecutor, ComputeCostGbhr, ExecutionResult,
    FileCountReduction, LakeConnector, Prediction, RankingPolicy, ScopeStrategy, TableRef,
    TraitWeight,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Synthetic in-memory lake: stats are generated, no engine involved, so
/// the measurement isolates the framework itself.
struct SyntheticLake {
    tables: Vec<TableRef>,
}

impl SyntheticLake {
    fn new(n: u64) -> Self {
        SyntheticLake {
            tables: (0..n)
                .map(|i| TableRef {
                    table_uid: i,
                    database: format!("db{}", i % 64).into(),
                    name: format!("t{i}").into(),
                    partitioned: i % 2 == 0,
                    compaction_enabled: i % 17 != 0,
                    is_intermediate: i % 23 == 0,
                })
                .collect(),
        }
    }
}

impl LakeConnector for SyntheticLake {
    fn list_tables(&self) -> Vec<TableRef> {
        self.tables.clone()
    }
    fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
        Some(CandidateStats {
            file_count: 10 + (uid * 31) % 4000,
            small_file_count: (uid * 31) % 4000,
            small_bytes: ((uid * 71) % 2048) << 20,
            total_bytes: ((uid * 131) % 8192) << 20,
            target_file_size: 512 << 20,
            ..CandidateStats::default()
        })
    }
    fn partition_stats(&self, _uid: u64) -> Vec<(String, CandidateStats)> {
        Vec::new()
    }
}

/// No-op executor: scheduling cost is excluded, decisions only.
struct NullExecutor;

impl CompactionExecutor for NullExecutor {
    fn execute(&mut self, _c: &Candidate, _p: &Prediction, now: u64) -> ExecutionResult {
        ExecutionResult {
            scheduled: true,
            job_id: Some(1),
            gbhr: 0.0,
            commit_due_ms: Some(now),
            error: None,
        }
    }
}

fn pipeline(k: usize) -> AutoComp {
    AutoComp::new(AutoCompConfig {
        scope: ScopeStrategy::Table,
        policy: RankingPolicy::Moop {
            weights: vec![
                TraitWeight::new("file_count_reduction", 0.7),
                TraitWeight::new("compute_cost_gbhr", 0.3),
            ],
            k,
        },
        trigger_label: "bench".to_string(),
        calibrate: false,
    })
    .with_filter(Box::new(CompactionDisabledFilter))
    .with_filter(Box::new(AlreadyCompactFilter {
        min_small_files: 2,
        min_small_fraction: 0.0,
    }))
    .with_trait(Box::new(FileCountReduction::default()))
    .with_trait(Box::new(ComputeCostGbhr::default()))
}

fn bench_ooda(c: &mut Criterion) {
    let mut group = c.benchmark_group("ooda_cycle");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [1_000u64, 10_000, 100_000] {
        let lake = SyntheticLake::new(n);
        group.bench_with_input(BenchmarkId::new("tables", n), &n, |b, _| {
            let mut ac = pipeline(100);
            let mut exec = NullExecutor;
            b.iter(|| ac.run_cycle(&lake, &mut exec, 0).expect("cycle runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ooda);
criterion_main!(benches);
