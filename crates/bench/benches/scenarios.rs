//! Criterion: steady-state decision cycles over a fleet whose candidates
//! carry the adversarial-matrix transform signals (`scenarios.rs`'s
//! mixed-transform shape) — every cycle classifies kinds, ranks five
//! traits, and selects across merge/sort/relayout/purge work.
//!
//! `scenario_mix/100000` drives zipf-skewed dirty bursts (1K writes per
//! iteration, the commit-storm shape) through the incremental observe →
//! cycle path; `scenario_mix_cold/100000` replays the identical churn
//! through always-cold cycles in the same pass, so the recorded ratio in
//! `BENCH_ooda.json` is a same-pass comparison per the repo's
//! single-core measurement convention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use autocomp::{
    AutoComp, AutoCompConfig, Candidate, CandidateStats, ChangeCursor, CompactionExecutor,
    ComputeCostGbhr, DeleteDebt, ExecutionResult, FileCountReduction, FleetObserver, JobKind,
    LakeConnector, PartitionSkewExcess, Prediction, ScopeStrategy, SortDisorder, TableRef,
    PARTITION_SKEW_METRIC, SORT_DISORDER_METRIC, TRANSFORMS_ENABLED_METRIC,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lakesim_workload::scenario_policy;

/// Synthetic fleet with the mixed-transform scenario's signal shape:
/// stats are pure `f(uid, version)` and the custom metrics sweep every
/// `JobKind::classify` threshold, so each cycle decides over a real mix
/// of rewrite kinds. A sorted changelog feeds the incremental driver.
struct MixLake {
    tables: Vec<TableRef>,
    versions: Mutex<Vec<u64>>,
    log: Mutex<Vec<(u64, u64)>>, // (seq, uid), seq ascending
    seq: AtomicU64,
}

impl MixLake {
    fn new(n: u64) -> Self {
        MixLake {
            tables: (0..n)
                .map(|i| TableRef {
                    table_uid: i,
                    database: format!("db{}", i % 64).into(),
                    name: format!("t{i}").into(),
                    partitioned: i % 2 == 0,
                    compaction_enabled: i % 17 != 0,
                    is_intermediate: i % 23 == 0,
                })
                .collect(),
            versions: Mutex::new(vec![0; n as usize]),
            log: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
        }
    }

    fn write(&self, uid: u64) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.log.lock().unwrap().push((seq, uid));
        self.versions.lock().unwrap()[uid as usize] += 1;
    }
}

impl LakeConnector for MixLake {
    fn list_tables(&self) -> Vec<TableRef> {
        self.tables.clone()
    }
    fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
        let v = self.versions.lock().unwrap()[uid as usize];
        Some(
            CandidateStats {
                file_count: 10 + (uid * 31 + v * 7) % 4000,
                small_file_count: (uid * 31 + v * 5) % 4000,
                small_bytes: ((uid * 71 + v) % 2048) << 20,
                total_bytes: (((uid * 131 + v) % 8192) + 64) << 20,
                delete_file_count: (uid * 3 + v * 2) % 9,
                target_file_size: 512 << 20,
                ..CandidateStats::default()
            }
            .with_custom(TRANSFORMS_ENABLED_METRIC, ((uid + v) % 2) as f64)
            .with_custom(
                SORT_DISORDER_METRIC,
                ((uid * 7 + v * 5) % 100) as f64 / 100.0,
            )
            .with_custom(
                PARTITION_SKEW_METRIC,
                1.0 + ((uid * 5 + v * 3) % 48) as f64 / 8.0,
            ),
        )
    }
    fn partition_stats(&self, _uid: u64) -> Vec<(String, CandidateStats)> {
        Vec::new()
    }
    fn fleet_cursor(&self) -> Option<ChangeCursor> {
        Some(ChangeCursor(self.seq.load(Ordering::SeqCst)))
    }
    fn changes_since(&self, cursor: ChangeCursor) -> Option<Vec<u64>> {
        let log = self.log.lock().unwrap();
        // seq is assigned in push order, so the log is sorted: O(log n)
        // to find the cursor, O(dirty) to drain — the log can grow for a
        // whole bench pass without dragging the measurement.
        let start = log.partition_point(|(seq, _)| *seq < cursor.0);
        Some(log[start..].iter().map(|(_, uid)| *uid).collect())
    }
    fn listing_epoch(&self) -> Option<u64> {
        Some(0)
    }
}

struct NullExecutor;

impl CompactionExecutor for NullExecutor {
    fn execute(&mut self, _c: &Candidate, _p: &Prediction, now: u64) -> ExecutionResult {
        ExecutionResult {
            scheduled: true,
            job_id: Some(1),
            gbhr: 0.0,
            commit_due_ms: Some(now),
            error: None,
        }
    }
}

fn pipeline() -> AutoComp {
    // The matrix's MOOP cell (scenario policy 1) over the full
    // transform-aware trait set.
    AutoComp::new(AutoCompConfig {
        scope: ScopeStrategy::Table,
        policy: scenario_policy(1),
        trigger_label: "scenario-mix".to_string(),
        calibrate: false,
    })
    .with_trait(Box::new(FileCountReduction::default()))
    .with_trait(Box::new(ComputeCostGbhr::default()))
    .with_trait(Box::new(DeleteDebt))
    .with_trait(Box::new(SortDisorder))
    .with_trait(Box::new(PartitionSkewExcess))
}

/// SplitMix64 — same generator family as the workload crate.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Zipf-ish skew: min of three uniform draws, the commit-storm shape.
fn zipf_below(state: &mut u64, n: u64) -> u64 {
    let a = splitmix(state) % n;
    let b = splitmix(state) % n;
    let c = splitmix(state) % n;
    a.min(b).min(c)
}

const BURST: usize = 1_000;

fn bench_scenario_mix(c: &mut Criterion) {
    let n: u64 = 100_000;
    let lake = MixLake::new(n);

    // Non-vacuity gate once per pass: a cycle over this fleet must
    // actually select several distinct rewrite kinds.
    {
        let mut ac = pipeline();
        let report = ac.run_cycle(&lake, &mut NullExecutor, 0).expect("cycle");
        let mut kinds = [false; 4];
        for job in &report.executed {
            kinds[match job.prediction.kind {
                JobKind::Merge => 0,
                JobKind::SortByColumn => 1,
                JobKind::PartitionRelayout => 2,
                JobKind::DeletionVectorPurge => 3,
            }] = true;
        }
        let distinct = kinds.iter().filter(|k| **k).count();
        eprintln!(
            "SCENARIO_MIX fleet={n} executed={} distinct_kinds={distinct}",
            report.executed.len()
        );
        assert!(distinct >= 2, "mixed fleet must select multiple kinds");
    }

    let mut group = c.benchmark_group("scenario_mix");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
        let mut ac = pipeline();
        let mut observer = FleetObserver::new();
        let mut rng = 0x5eed_u64;
        let mut now = 0u64;
        // Prime the retained observation so iterations measure the
        // steady state, not the first cold fill.
        ac.run_cycle_incremental(&mut observer, &lake, &mut NullExecutor, now)
            .expect("prime");
        b.iter(|| {
            for _ in 0..BURST {
                lake.write(zipf_below(&mut rng, n));
            }
            now += 1_000;
            ac.run_cycle_incremental(&mut observer, &lake, &mut NullExecutor, now)
                .expect("cycle runs")
        })
    });
    group.finish();

    // Same-pass cold companion: identical churn, always-cold cycles.
    let mut group = c.benchmark_group("scenario_mix_cold");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
        let mut ac = pipeline().with_cycle_cache(false);
        let mut rng = 0x5eed_u64;
        let mut now = 0u64;
        b.iter(|| {
            for _ in 0..BURST {
                lake.write(zipf_below(&mut rng, n));
            }
            now += 1_000;
            ac.run_cycle(&lake, &mut NullExecutor, now).expect("cold")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scenario_mix);
criterion_main!(benches);
