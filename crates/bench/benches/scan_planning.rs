//! Criterion: scan planning cost vs metadata size — the paper's §1 claim
//! that small files bloat metadata and slow query planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lakesim_lst::{
    ColumnType, DataFile, Field, OpKind, PartitionFilter, PartitionKey, PartitionSpec,
    PartitionValue, Schema, Table, TableId, TableProperties, Transform,
};
use lakesim_storage::{FileId, MB};

fn table_with(files_per_partition: u64, partitions: i32) -> Table {
    let schema = Schema::new(vec![
        Field::new(1, "k", ColumnType::Int64, true),
        Field::new(2, "ds", ColumnType::Date, true),
    ])
    .expect("valid schema");
    let mut table = Table::new(
        TableId(1),
        "bench",
        "db",
        schema,
        PartitionSpec::single(2, Transform::Day, "ds"),
        TableProperties::default(),
        0,
    );
    let mut next = 1u64;
    for p in 0..partitions {
        let mut txn = table.begin(OpKind::Append);
        for _ in 0..files_per_partition {
            txn.add_file(DataFile::data(
                FileId(next),
                PartitionKey::single(PartitionValue::Date(p)),
                1000,
                16 * MB,
            ));
            next += 1;
        }
        table
            .commit(txn, u64::from(p as u32))
            .expect("append commits");
    }
    table
}

fn bench_scan_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_scan");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (files_per, partitions) in [(10u64, 100), (100, 100), (100, 1000)] {
        let table = table_with(files_per, partitions);
        let label = format!("{files_per}x{partitions}");
        group.bench_function(BenchmarkId::new("full", label.clone()), |b| {
            b.iter(|| table.plan_scan(&PartitionFilter::All))
        });
        group.bench_function(BenchmarkId::new("recent7", label.clone()), |b| {
            b.iter(|| table.plan_scan(&PartitionFilter::Recent { count: 7 }))
        });
        group.bench_function(BenchmarkId::new("sample_quarter", label), |b| {
            b.iter(|| {
                table.plan_scan(&PartitionFilter::Sample {
                    num: 1,
                    den: 4,
                    salt: 7,
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan_planning);
criterion_main!(benches);
