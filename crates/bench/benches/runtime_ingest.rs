//! Criterion: sustained ingest at fleet scale through the event-driven
//! continuous runtime vs. the fixed-cadence polled driver.
//!
//! One iteration = one simulated hour: ~1.08M commits (200ms ticks × 60
//! commits) against a 100K-table fleet. `runtime_ingest/event_loop/100000`
//! drives commits/completions/timers through `ContinuousRuntime`
//! (5K-table dirty watermark + 10-minute staleness backstop);
//! `runtime_ingest/polled/100000` replays the identical seeded commit
//! schedule through 15s-cadence `run_cycle_tracked_incremental` calls.
//! Decision-latency percentiles (commit event → covering round, simulated
//! clock) are printed per mode and recorded in `BENCH_ooda.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lakesim_workload::{
    run_sustained_ingest, run_sustained_polled, IngestReport, SustainedIngestConfig,
};

fn describe(mode: &str, report: &IngestReport) {
    eprintln!(
        "RUNTIME_INGEST {mode}: tables={} commits={} ({:.0}/h) rounds={} deferred={} \
         backlog_max={} executed={} settled={} snapshots={} latency_ms p50={} p95={} p99={} max={}",
        report.tables,
        report.commits,
        report.commits_per_hour,
        report.rounds,
        report.deferred_rounds,
        report.max_dirty_backlog,
        report.executed,
        report.settled,
        report.snapshots_saved,
        report.decision_p50_ms,
        report.decision_p95_ms,
        report.decision_p99_ms,
        report.decision_max_ms,
    );
}

fn bench_runtime_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_ingest");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let cfg = SustainedIngestConfig::default();
    let n = cfg.tables;

    // Acceptance sanity once per run (outside the timed loop): the
    // schedule sustains ≥1M simulated commits/hour and every commit gets
    // a latency sample.
    let event = run_sustained_ingest(&cfg);
    assert!(
        event.commits_per_hour >= 1_000_000.0,
        "arrival rate {} below 1M/h",
        event.commits_per_hour
    );
    assert_eq!(event.latency_samples, event.commits);
    describe("event_loop", &event);
    let polled = run_sustained_polled(&cfg);
    assert_eq!(polled.commits, event.commits, "same seeded schedule");
    describe("polled", &polled);

    group.bench_with_input(BenchmarkId::new("event_loop", n), &n, |b, _| {
        b.iter(|| run_sustained_ingest(&cfg))
    });
    group.bench_with_input(BenchmarkId::new("polled", n), &n, |b, _| {
        b.iter(|| run_sustained_polled(&cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_runtime_ingest);
criterion_main!(benches);
