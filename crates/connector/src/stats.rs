//! Shared, read-only candidate-stats production over a [`SimEnv`].
//!
//! Both observe tiers — the single-threaded [`LakesimConnector`] (one
//! `Rc<RefCell<SimEnv>>`) and the `Sync` [`BatchLakesimConnector`] (an
//! `Arc<RwLock<SimEnv>>`) — produce identical [`CandidateStats`] through
//! these builders. Everything here takes `&SimEnv`: the historical
//! mutable accesses (usage-window pruning) are replaced with the
//! catalog's read-only twins, which is what lets the batch tier fan
//! stats production out over threads holding only read locks.
//!
//! [`LakesimConnector`]: crate::LakesimConnector
//! [`BatchLakesimConnector`]: crate::BatchLakesimConnector

use std::collections::BTreeMap;
use std::sync::Arc;

use autocomp::{CandidateStats, NameInterner, QuotaSignal, SizeBucket, TableRef};
use lakesim_engine::SimEnv;
use lakesim_lst::{plan_partition_rewrite, plan_table_rewrite, BinPackConfig, TableId, TableStats};

use crate::observe::ObserveOptions;

/// Converts lakesim's [`TableStats`] into the standardized layout. With
/// `transform_signals`, the custom metrics driving transformation-aware
/// job classification ([`autocomp::JobKind::classify`]) are emitted:
/// `transforms_enabled`, the unsorted-bytes fraction, and (for tables
/// with ≥ 2 partitions) the max/mean partition-size ratio.
pub(crate) fn convert(
    table_stats: &TableStats,
    created_at_ms: u64,
    last_write_ms: Option<u64>,
    write_frequency: f64,
    quota: Option<QuotaSignal>,
    planned_reduction: Option<f64>,
    transform_signals: bool,
) -> CandidateStats {
    let mut histogram: Vec<SizeBucket> = table_stats
        .histogram
        .edges()
        .iter()
        .zip(table_stats.histogram.counts())
        .map(|(edge, count)| SizeBucket {
            upper_bytes: Some(*edge),
            count: *count,
        })
        .collect();
    if let Some(overflow) = table_stats
        .histogram
        .counts()
        .get(table_stats.histogram.edges().len())
    {
        histogram.push(SizeBucket {
            upper_bytes: None,
            count: *overflow,
        });
    }
    let mut stats = CandidateStats {
        file_count: table_stats.file_count,
        small_file_count: table_stats.small_file_count,
        small_bytes: table_stats.small_bytes,
        total_bytes: table_stats.total_bytes,
        delete_file_count: table_stats.delete_file_count,
        partition_count: table_stats.partition_count,
        target_file_size: table_stats.target_file_size,
        created_at_ms,
        last_write_ms,
        write_frequency_per_hour: write_frequency,
        quota,
        size_histogram: histogram,
        custom: Default::default(),
    };
    if let Some(planned) = planned_reduction {
        stats = stats.with_custom(autocomp::traits::PLANNED_REDUCTION_METRIC, planned);
    }
    if transform_signals {
        stats = stats.with_custom(autocomp::TRANSFORMS_ENABLED_METRIC, 1.0);
        if table_stats.total_bytes > 0 {
            stats = stats.with_custom(
                autocomp::SORT_DISORDER_METRIC,
                table_stats.unsorted_data_bytes as f64 / table_stats.total_bytes as f64,
            );
            if table_stats.partition_count >= 2 {
                // max/mean ratio: mean partition bytes = total/count.
                stats = stats.with_custom(
                    autocomp::PARTITION_SKEW_METRIC,
                    table_stats.max_partition_bytes as f64 * table_stats.partition_count as f64
                        / table_stats.total_bytes as f64,
                );
            }
        }
    }
    stats
}

fn bin_pack_config(options: &ObserveOptions, target: u64, min_input_files: usize) -> BinPackConfig {
    BinPackConfig {
        target_file_size: target,
        small_file_fraction: options.small_file_fraction,
        min_input_files,
    }
}

/// Lists the catalog's tables as [`TableRef`]s, sharing database-name
/// allocations through `interner` (one `Arc<str>` per database instead of
/// one per table per cycle).
pub(crate) fn list_refs(env: &SimEnv, interner: &mut NameInterner) -> Vec<TableRef> {
    env.catalog
        .table_ids()
        .into_iter()
        .filter_map(|id| {
            let entry = env.catalog.table(id).ok()?;
            Some(TableRef {
                table_uid: id.0,
                database: interner.get_or_intern(entry.table.database()),
                name: Arc::from(entry.table.name()),
                partitioned: entry.table.spec().is_partitioned(),
                compaction_enabled: entry.policy.compaction_enabled,
                is_intermediate: entry.policy.is_intermediate,
            })
        })
        .collect()
}

/// Read-only table-scope stats; `None` if the table vanished.
pub(crate) fn table_stats(
    env: &SimEnv,
    table_uid: u64,
    options: &ObserveOptions,
    quota: Option<QuotaSignal>,
) -> Option<CandidateStats> {
    let now = env.clock.now();
    let entry = env.catalog.table(TableId(table_uid)).ok()?;
    let target = entry.policy.target_file_size;
    let stats = entry.table.stats(target);
    let planned = options.compute_planned_estimates.then(|| {
        let cfg = bin_pack_config(options, target, entry.policy.min_input_files);
        plan_table_rewrite(&entry.table, &cfg).expected_reduction() as f64
    });
    Some(convert(
        &stats,
        entry.usage.created_at_ms,
        entry.usage.last_write_ms,
        entry.usage.write_frequency_per_hour_at(now),
        quota,
        planned,
        options.transform_signals,
    ))
}

/// Read-only per-partition stats; empty if the table vanished or is
/// unpartitioned.
pub(crate) fn partition_stats(
    env: &SimEnv,
    table_uid: u64,
    options: &ObserveOptions,
    quota: Option<QuotaSignal>,
) -> Vec<(String, CandidateStats)> {
    let now = env.clock.now();
    let Ok(entry) = env.catalog.table(TableId(table_uid)) else {
        return Vec::new();
    };
    let target = entry.policy.target_file_size;
    let created = entry.usage.created_at_ms;
    let last_write = entry.usage.last_write_ms;
    let freq = entry.usage.write_frequency_per_hour_at(now);
    entry
        .table
        .partition_keys()
        .into_iter()
        .map(|key| {
            let stats = entry.table.partition_stats(&key, target);
            let planned = options.compute_planned_estimates.then(|| {
                let cfg = bin_pack_config(options, target, entry.policy.min_input_files);
                plan_partition_rewrite(&entry.table, &key, &cfg).expected_reduction() as f64
            });
            (
                key.to_string(),
                convert(
                    &stats,
                    created,
                    last_write,
                    freq,
                    quota,
                    planned,
                    options.transform_signals,
                ),
            )
        })
        .collect()
}

/// Read-only snapshot-window stats (§4.1 snapshot scope): files added by
/// snapshots within `window_ms` of now that are still live.
pub(crate) fn snapshot_stats(
    env: &SimEnv,
    table_uid: u64,
    window_ms: u64,
    quota: Option<QuotaSignal>,
) -> Option<CandidateStats> {
    let now = env.clock.now();
    let entry = env.catalog.table(TableId(table_uid)).ok()?;
    let target = entry.policy.target_file_size;
    let cutoff = now.saturating_sub(window_ms);
    let mut fresh: std::collections::BTreeSet<lakesim_storage::FileId> = Default::default();
    for snap in entry.table.snapshots() {
        if snap.timestamp_ms >= cutoff {
            fresh.extend(snap.added.iter().copied());
        }
    }
    let mut histogram = lakesim_storage::SizeHistogram::new();
    let mut stats = TableStats {
        file_count: 0,
        small_file_count: 0,
        small_bytes: 0,
        total_bytes: 0,
        delete_file_count: 0,
        partition_count: 0,
        manifest_count: entry.table.manifests().len() as u64,
        snapshot_count: entry.table.snapshots().len() as u64,
        histogram: histogram.clone(),
        target_file_size: target,
        unsorted_data_bytes: 0,
        max_partition_bytes: 0,
    };
    let mut partitions = std::collections::BTreeSet::new();
    for f in entry.table.live_files() {
        if !fresh.contains(&f.file_id) {
            continue;
        }
        stats.file_count += 1;
        stats.total_bytes += f.file_size_bytes;
        partitions.insert(f.partition.clone());
        if f.content.is_deletes() {
            stats.delete_file_count += 1;
        } else {
            histogram.record(f.file_size_bytes);
            if f.file_size_bytes < target {
                stats.small_file_count += 1;
                stats.small_bytes += f.file_size_bytes;
            }
        }
    }
    stats.partition_count = partitions.len() as u64;
    stats.histogram = histogram;
    Some(convert(
        &stats,
        entry.usage.created_at_ms,
        entry.usage.last_write_ms,
        entry.usage.write_frequency_per_hour_at(now),
        quota,
        None,
        // Snapshot-window candidates never carry transform signals: the
        // window is a file subset, so whole-table sort/skew/purge
        // classification would mislabel it.
        false,
    ))
}

/// Memoizes per-database quota signals across the candidates of one
/// observe batch: the historical path re-read `fs.quota_usage` once per
/// table (and once per partitioned table's candidate set), which at fleet
/// scale is thousands of identical lookups per cycle. Entries are keyed
/// by an epoch of the storage layer's cumulative create/delete counters
/// plus its namespace-config counter, so any quota-changing event —
/// file churn or a `set_quota` edit — invalidates the memo while an
/// unchanged lake reuses it across cycles.
#[derive(Debug, Default)]
pub(crate) struct QuotaCache {
    epoch: (u64, u64, u64),
    by_db: BTreeMap<String, Option<QuotaSignal>>,
}

impl QuotaCache {
    /// Quota signal for `database`, from the memo when the epoch matches.
    pub(crate) fn get(&mut self, env: &SimEnv, database: &str) -> Option<QuotaSignal> {
        let rpc = env.fs.rpc_counters();
        let epoch = (rpc.creates, rpc.deletes, env.fs.config_epoch());
        if epoch != self.epoch {
            self.by_db.clear();
            self.epoch = epoch;
        }
        if let Some(cached) = self.by_db.get(database) {
            return *cached;
        }
        let quota = env.fs.quota_usage(database).ok().map(|q| QuotaSignal {
            used: q.used,
            total: q.quota,
        });
        self.by_db.insert(database.to_string(), quota);
        quota
    }
}

/// Resolves the database of `table_uid` and its (memoized) quota signal.
pub(crate) fn quota_for_table(
    env: &SimEnv,
    cache: &mut QuotaCache,
    table_uid: u64,
) -> Option<QuotaSignal> {
    let entry = env.catalog.table(TableId(table_uid)).ok()?;
    cache.get(env, entry.table.database())
}
