//! Optimize-after-write hook evaluation (§5 push mode).
//!
//! "Several existing architectures leverage hooks integrated within the
//! engine to enable automatic compaction in response to write
//! modifications, 'pushing' the compaction decision onto the engine."
//! The driver collects the tables touched by drained commits and asks the
//! hook whether each crossed its trigger threshold.

use autocomp::{AfterWriteHook, HookAction};
use lakesim_engine::SimEnv;
use lakesim_lst::TableId;

use crate::observe::LakesimConnector;
use crate::SharedEnv;

/// Evaluates an after-write hook against the given just-written tables,
/// returning each table's action (tables that vanished are skipped).
pub fn evaluate_hook(
    env: &SharedEnv,
    hook: &AfterWriteHook,
    written_tables: &[TableId],
) -> Vec<(TableId, HookAction)> {
    let connector = LakesimConnector::new(env.clone());
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for id in written_tables {
        if !seen.insert(*id) {
            continue;
        }
        if let Some(stats) = autocomp::LakeConnector::table_stats(&connector, id.0) {
            out.push((*id, hook.on_write(&stats)));
        }
    }
    out
}

/// Convenience: extracts the distinct tables written by a batch of commit
/// events (successful writes only).
pub fn written_tables(events: &[lakesim_engine::CommitEvent]) -> Vec<TableId> {
    let mut seen = std::collections::BTreeSet::new();
    events
        .iter()
        .filter(|e| e.succeeded)
        .filter(|e| seen.insert(e.table))
        .map(|e| e.table)
        .collect()
}

/// Feeds §5 deferred hook decisions into an incremental observer: every
/// [`HookAction::MarkDirty`] marks its table dirty, so the next cursor
/// observe re-fetches exactly the candidates the hooks flagged — "notify
/// the auto-compaction service \[to\] recalculate the candidate's traits"
/// without a full-fleet observe.
pub fn mark_dirty_from_actions(
    observer: &mut autocomp::FleetObserver,
    actions: &[(TableId, HookAction)],
) {
    for (table, action) in actions {
        if *action == HookAction::MarkDirty {
            observer.mark_dirty(table.0);
        }
    }
}

/// Marks every table of `database` dirty on an incremental observer —
/// the documented recipe for keeping incremental cycles exact across
/// **changelog-invisible shared signals**: a quota edit (or any
/// database-wide event) does not appear in the per-table commit
/// changelog, so reused entries would carry the stale quota until their
/// tables happen to be written. Force-dirtying the database re-fetches
/// its tables on the next observe — and, downstream, invalidates their
/// cycle-cache rows (see the staleness contract in
/// `autocomp::observe`).
///
/// Returns the number of tables marked. An unknown database is an error
/// (not a silent no-op): a typo'd or concurrently dropped name would
/// otherwise leave every table of the real database serving stale
/// signals with no indication anywhere.
pub fn mark_database_dirty(
    env: &SharedEnv,
    observer: &mut autocomp::FleetObserver,
    database: &str,
) -> lakesim_catalog::Result<usize> {
    let env = env.borrow();
    let tables = env.catalog.tables_in_database(database)?;
    let marked = tables.len();
    for id in tables {
        observer.mark_dirty(id.0);
    }
    Ok(marked)
}

/// Evaluates a hook directly against a mutable environment (used by
/// drivers that do not share the env). Stats come from the same shared
/// builders as the connector tiers (no quota signal — hooks predate the
/// candidate's database context).
pub fn evaluate_hook_direct(
    env: &mut SimEnv,
    hook: &AfterWriteHook,
    table: TableId,
) -> Option<HookAction> {
    let stats = crate::stats::table_stats(env, table.0, &crate::ObserveOptions::default(), None)?;
    Some(hook.on_write(&stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::share;
    use autocomp::{FileCountReduction, HookMode};
    use lakesim_catalog::TablePolicy;
    use lakesim_engine::{EnvConfig, FileSizePlan, WriteSpec};
    use lakesim_lst::{ColumnType, Field, PartitionKey, PartitionSpec, Schema, TableProperties};
    use lakesim_storage::MB;

    fn setup() -> (SimEnv, TableId) {
        let mut env = SimEnv::new(EnvConfig {
            seed: 8,
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", None).unwrap();
        let schema = Schema::new(vec![Field::new(1, "k", ColumnType::Int64, true)]).unwrap();
        let t = env
            .create_table(
                "db",
                "t",
                schema,
                PartitionSpec::unpartitioned(),
                TableProperties::default(),
                TablePolicy::default(),
            )
            .unwrap();
        (env, t)
    }

    fn hook(threshold: f64) -> AfterWriteHook {
        AfterWriteHook::new(
            HookMode::Immediate,
            Box::new(FileCountReduction::default()),
            threshold,
        )
    }

    #[test]
    fn hook_fires_after_enough_small_files() {
        let (mut env, t) = setup();
        let spec = WriteSpec::insert(
            t,
            PartitionKey::unpartitioned(),
            128 * MB,
            FileSizePlan::trickle(),
            "query",
        );
        env.submit_write(&spec, 0).unwrap();
        let events = env.drain_all();
        let written = written_tables(&events);
        assert_eq!(written, vec![t]);

        let action = evaluate_hook_direct(&mut env, &hook(5.0), t).unwrap();
        assert_eq!(action, HookAction::TriggerNow);
        let quiet = evaluate_hook_direct(&mut env, &hook(10_000.0), t).unwrap();
        assert_eq!(quiet, HookAction::Ignore);
    }

    #[test]
    fn shared_evaluation_deduplicates_tables() {
        let (mut env, t) = setup();
        let spec = WriteSpec::insert(
            t,
            PartitionKey::unpartitioned(),
            64 * MB,
            FileSizePlan::trickle(),
            "query",
        );
        env.submit_write(&spec, 0).unwrap();
        env.drain_all();
        let shared = share(env);
        let results = evaluate_hook(&shared, &hook(1.0), &[t, t, t]);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1, HookAction::TriggerNow);
    }

    #[test]
    fn vanished_tables_are_skipped() {
        let (env, _) = setup();
        let shared = share(env);
        let results = evaluate_hook(&shared, &hook(1.0), &[TableId(99)]);
        assert!(results.is_empty());
    }

    #[test]
    fn mark_dirty_actions_feed_the_observer() {
        let mut observer = autocomp::FleetObserver::new();
        let actions = vec![
            (TableId(1), HookAction::MarkDirty),
            (TableId(2), HookAction::Ignore),
            (TableId(3), HookAction::TriggerNow),
        ];
        mark_dirty_from_actions(&mut observer, &actions);
        // Only the MarkDirty table is pending; observing a lake without a
        // changelog still fetches fully, so verify via the deferred hook
        // path instead: a second MarkDirty for the same table dedupes.
        mark_dirty_from_actions(&mut observer, &actions);
        // The observer is opaque about pending marks; drive an observe
        // against a cursor-capable fake to assert the dirty fetch.
        let (mut env, t) = setup();
        let spec = WriteSpec::insert(
            t,
            PartitionKey::unpartitioned(),
            32 * MB,
            FileSizePlan::trickle(),
            "query",
        );
        env.submit_write(&spec, 0).unwrap();
        env.drain_all();
        let shared = share(env);
        let connector = crate::LakesimConnector::new(shared);
        let first = observer
            .observe(&connector, autocomp::ScopeStrategy::Table)
            .clone();
        assert_eq!(first.fetched_tables(), 1);
        // Mark the (only) table dirty although no write happened: the
        // next observe must re-fetch it despite a quiet changelog.
        observer.mark_dirty(t.0);
        let second = observer.observe(&connector, autocomp::ScopeStrategy::Table);
        assert_eq!(second.fetched_tables(), 1);
        assert_eq!(second.reused_tables(), 0);
    }
}
