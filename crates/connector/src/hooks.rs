//! Optimize-after-write hook evaluation (§5 push mode).
//!
//! "Several existing architectures leverage hooks integrated within the
//! engine to enable automatic compaction in response to write
//! modifications, 'pushing' the compaction decision onto the engine."
//! The driver collects the tables touched by drained commits and asks the
//! hook whether each crossed its trigger threshold.

use autocomp::{AfterWriteHook, HookAction};
use lakesim_engine::SimEnv;
use lakesim_lst::TableId;

use crate::observe::LakesimConnector;
use crate::SharedEnv;

/// Evaluates an after-write hook against the given just-written tables,
/// returning each table's action (tables that vanished are skipped).
pub fn evaluate_hook(
    env: &SharedEnv,
    hook: &AfterWriteHook,
    written_tables: &[TableId],
) -> Vec<(TableId, HookAction)> {
    let connector = LakesimConnector::new(env.clone());
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for id in written_tables {
        if !seen.insert(*id) {
            continue;
        }
        if let Some(stats) = autocomp::LakeConnector::table_stats(&connector, id.0) {
            out.push((*id, hook.on_write(&stats)));
        }
    }
    out
}

/// Convenience: extracts the distinct tables written by a batch of commit
/// events (successful writes only).
pub fn written_tables(events: &[lakesim_engine::CommitEvent]) -> Vec<TableId> {
    let mut seen = std::collections::BTreeSet::new();
    events
        .iter()
        .filter(|e| e.succeeded)
        .filter(|e| seen.insert(e.table))
        .map(|e| e.table)
        .collect()
}

/// Evaluates a hook directly against a mutable environment (used by
/// drivers that do not share the env).
pub fn evaluate_hook_direct(
    env: &mut SimEnv,
    hook: &AfterWriteHook,
    table: TableId,
) -> Option<HookAction> {
    let now = env.clock.now();
    let (created, last_write, freq) = {
        let entry = env.catalog.table_mut(table).ok()?;
        (
            entry.usage.created_at_ms,
            entry.usage.last_write_ms,
            entry.usage.write_frequency_per_hour(now),
        )
    };
    let entry = env.catalog.table(table).ok()?;
    let target = entry.policy.target_file_size;
    let table_stats = entry.table.stats(target);
    let mut histogram: Vec<autocomp::SizeBucket> = table_stats
        .histogram
        .edges()
        .iter()
        .zip(table_stats.histogram.counts())
        .map(|(edge, count)| autocomp::SizeBucket {
            upper_bytes: Some(*edge),
            count: *count,
        })
        .collect();
    if let Some(overflow) = table_stats
        .histogram
        .counts()
        .get(table_stats.histogram.edges().len())
    {
        histogram.push(autocomp::SizeBucket {
            upper_bytes: None,
            count: *overflow,
        });
    }
    let stats = autocomp::CandidateStats {
        file_count: table_stats.file_count,
        small_file_count: table_stats.small_file_count,
        small_bytes: table_stats.small_bytes,
        total_bytes: table_stats.total_bytes,
        delete_file_count: table_stats.delete_file_count,
        partition_count: table_stats.partition_count,
        target_file_size: target,
        created_at_ms: created,
        last_write_ms: last_write,
        write_frequency_per_hour: freq,
        quota: None,
        size_histogram: histogram,
        custom: Default::default(),
    };
    Some(hook.on_write(&stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::share;
    use autocomp::{FileCountReduction, HookMode};
    use lakesim_catalog::TablePolicy;
    use lakesim_engine::{EnvConfig, FileSizePlan, WriteSpec};
    use lakesim_lst::{ColumnType, Field, PartitionKey, PartitionSpec, Schema, TableProperties};
    use lakesim_storage::MB;

    fn setup() -> (SimEnv, TableId) {
        let mut env = SimEnv::new(EnvConfig {
            seed: 8,
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", None).unwrap();
        let schema = Schema::new(vec![Field::new(1, "k", ColumnType::Int64, true)]).unwrap();
        let t = env
            .create_table(
                "db",
                "t",
                schema,
                PartitionSpec::unpartitioned(),
                TableProperties::default(),
                TablePolicy::default(),
            )
            .unwrap();
        (env, t)
    }

    fn hook(threshold: f64) -> AfterWriteHook {
        AfterWriteHook::new(
            HookMode::Immediate,
            Box::new(FileCountReduction::default()),
            threshold,
        )
    }

    #[test]
    fn hook_fires_after_enough_small_files() {
        let (mut env, t) = setup();
        let spec = WriteSpec::insert(
            t,
            PartitionKey::unpartitioned(),
            128 * MB,
            FileSizePlan::trickle(),
            "query",
        );
        env.submit_write(&spec, 0).unwrap();
        let events = env.drain_all();
        let written = written_tables(&events);
        assert_eq!(written, vec![t]);

        let action = evaluate_hook_direct(&mut env, &hook(5.0), t).unwrap();
        assert_eq!(action, HookAction::TriggerNow);
        let quiet = evaluate_hook_direct(&mut env, &hook(10_000.0), t).unwrap();
        assert_eq!(quiet, HookAction::Ignore);
    }

    #[test]
    fn shared_evaluation_deduplicates_tables() {
        let (mut env, t) = setup();
        let spec = WriteSpec::insert(
            t,
            PartitionKey::unpartitioned(),
            64 * MB,
            FileSizePlan::trickle(),
            "query",
        );
        env.submit_write(&spec, 0).unwrap();
        env.drain_all();
        let shared = share(env);
        let results = evaluate_hook(&shared, &hook(1.0), &[t, t, t]);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1, HookAction::TriggerNow);
    }

    #[test]
    fn vanished_tables_are_skipped() {
        let (env, _) = setup();
        let shared = share(env);
        let results = evaluate_hook(&shared, &hook(1.0), &[TableId(99)]);
        assert!(results.is_empty());
    }
}
