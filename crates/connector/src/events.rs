//! Commit-event bridge: turns the engine's bounded commit changelog into
//! [`RuntimeEvent::Commit`]s for the continuous runtime's event loop.
//!
//! The [`hooks`](crate::hooks) module is the *push* half of §5's
//! optimize-after-write mode — a caller who already knows which tables a
//! write touched marks them dirty directly. [`CommitEventBridge`] is the
//! *pull-to-push* adapter for callers who only have the environment: it
//! tails [`lakesim_engine::SimEnv::changes_since`] from its own cursor and emits one
//! commit event per newly-written distinct table, stamped with the drain
//! time (the event loop's simulated clock). A production deployment would
//! drain a catalog notification stream the same way.
//!
//! If the bridge falls behind the bounded changelog's retention
//! (`changes_since` returns `None`), it cannot know *which* tables
//! changed — it emits a single [`RuntimeEvent::Flush`] instead, forcing a
//! covering decision round; the observer's own change-cursor chain makes
//! that round a full observe, so no dirtiness is lost.

use autocomp::RuntimeEvent;

use crate::SharedEnv;

/// Tails the engine changelog into runtime commit events.
#[derive(Debug, Clone)]
pub struct CommitEventBridge {
    cursor: u64,
}

impl CommitEventBridge {
    /// A bridge starting at the environment's current change cursor:
    /// only commits applied after construction produce events.
    pub fn new(env: &SharedEnv) -> Self {
        let cursor = env.borrow().change_cursor();
        CommitEventBridge { cursor }
    }

    /// A bridge starting at an explicit cursor (e.g. the cursor recorded
    /// alongside a snapshot, so a restarted bridge re-emits commits the
    /// crashed loop saw but never covered with a round).
    pub fn at_cursor(cursor: u64) -> Self {
        CommitEventBridge { cursor }
    }

    /// The changelog position up to which commits were already emitted.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Drains commits applied since the last drain into events stamped
    /// `at_ms`, advancing the cursor. When the cursor has fallen out of
    /// the bounded changelog's retention, returns a single
    /// [`RuntimeEvent::Flush`] (see the module docs).
    pub fn drain(&mut self, env: &SharedEnv, at_ms: u64) -> Vec<RuntimeEvent> {
        let env = env.borrow();
        let next = env.change_cursor();
        let events = match env.changes_since(self.cursor) {
            Some(tables) => tables
                .into_iter()
                .map(|table| RuntimeEvent::Commit {
                    at_ms,
                    table_uid: table.0,
                })
                .collect(),
            None => vec![RuntimeEvent::Flush { at_ms }],
        };
        self.cursor = next;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::share;
    use lakesim_catalog::TablePolicy;
    use lakesim_engine::{EnvConfig, FileSizePlan, SimEnv, WriteSpec};
    use lakesim_lst::{
        ColumnType, Field, PartitionKey, PartitionSpec, PartitionValue, Schema, TableId,
        TableProperties, Transform,
    };
    use lakesim_storage::MB;

    fn setup(tables: usize) -> (SharedEnv, Vec<TableId>) {
        let mut env = SimEnv::new(EnvConfig {
            seed: 11,
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", None).unwrap();
        let schema = Schema::new(vec![
            Field::new(1, "k", ColumnType::Int64, true),
            Field::new(2, "ds", ColumnType::Date, true),
        ])
        .unwrap();
        let ids = (0..tables)
            .map(|i| {
                env.create_table(
                    "db",
                    &format!("t{i}"),
                    schema.clone(),
                    PartitionSpec::single(2, Transform::Month, "m"),
                    TableProperties::default(),
                    TablePolicy::default(),
                )
                .unwrap()
            })
            .collect();
        (share(env), ids)
    }

    fn write(env: &SharedEnv, table: TableId, at_ms: u64) {
        let spec = WriteSpec::insert(
            table,
            PartitionKey::single(PartitionValue::Date(0)),
            8 * MB,
            FileSizePlan::trickle(),
            "query",
        );
        env.borrow_mut().submit_write(&spec, at_ms).unwrap();
        env.borrow_mut().drain_all();
    }

    #[test]
    fn drains_distinct_commits_once() {
        let (env, ids) = setup(3);
        let mut bridge = CommitEventBridge::new(&env);
        assert_eq!(bridge.drain(&env, 0), Vec::<RuntimeEvent>::new());

        write(&env, ids[0], 1_000);
        write(&env, ids[2], 2_000);
        write(&env, ids[0], 3_000);
        let events = bridge.drain(&env, 5_000);
        let uids: Vec<u64> = events
            .iter()
            .map(|e| match e {
                RuntimeEvent::Commit { at_ms, table_uid } => {
                    assert_eq!(*at_ms, 5_000);
                    *table_uid
                }
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        // Distinct tables in first-change order, duplicates collapsed.
        assert_eq!(uids, vec![ids[0].0, ids[2].0]);

        // Nothing new: the cursor advanced past everything drained.
        assert_eq!(bridge.drain(&env, 6_000), Vec::<RuntimeEvent>::new());
        write(&env, ids[1], 7_000);
        assert_eq!(
            bridge.drain(&env, 8_000),
            vec![RuntimeEvent::Commit {
                at_ms: 8_000,
                table_uid: ids[1].0
            }]
        );
    }

    #[test]
    fn stale_cursor_degrades_to_flush() {
        // A cursor below the changelog floor is unrepresentable through
        // normal draining; simulate a bridge restored from an ancient
        // snapshot by flooding the changelog past its retention cap
        // (2^16 entries). Writes round-robin across tables so no single
        // table's file list grows commit costs quadratic.
        let (env, ids) = setup(64);
        let mut bridge = CommitEventBridge::at_cursor(0);
        {
            let mut env = env.borrow_mut();
            for i in 0..((1 << 16) + 64u64) {
                let spec = WriteSpec::insert(
                    ids[(i % 64) as usize],
                    PartitionKey::single(PartitionValue::Date(0)),
                    MB,
                    FileSizePlan::trickle(),
                    "query",
                );
                env.submit_write(&spec, 2_000 + i).unwrap();
            }
            env.drain_all();
        }
        let events = bridge.drain(&env, 1_000_000);
        assert_eq!(events, vec![RuntimeEvent::Flush { at_ms: 1_000_000 }]);
        // The flush drain still advanced the cursor: the next drain is
        // incremental again.
        assert_eq!(bridge.drain(&env, 1_000_001), Vec::<RuntimeEvent>::new());
    }
}
