//! The act-side connector: candidate → bin-pack plan → engine rewrite job,
//! with completion polling over the engine's maintenance log.
//!
//! [`LakesimExecutor`] implements both act tiers: the fire-and-forget
//! [`CompactionExecutor`] (submit, return scheduling info) and the job
//! runtime's [`TrackedExecutor`] — [`poll`](TrackedExecutor::poll) drains
//! engine commits due by `now` and surfaces every maintenance record
//! appended since the last poll as a [`JobOutcome`], which is what lets
//! `AutoComp::run_cycle_tracked*` settle jobs, retry conflicts, and
//! auto-ingest feedback without any manual
//! [`FeedbackBridge`](crate::FeedbackBridge) plumbing.

use autocomp::{
    Candidate, CompactionExecutor, ExecutionError, ExecutionResult, JobKind, JobOutcome,
    JobOutcomeStatus, Prediction, ScopeKind, TrackedExecutor,
};
use lakesim_catalog::JobStatus;
use lakesim_engine::{EngineError, RewriteOptions};
use lakesim_lst::{
    plan_partition_rewrite, plan_table_rewrite, BinPackConfig, RewritePlan, TableId,
};

use crate::SharedEnv;

/// Options for job submission.
#[derive(Debug, Clone)]
pub struct ExecutorOptions {
    /// Cluster to run compaction on (the paper uses a dedicated 3-node
    /// cluster, §6).
    pub cluster: String,
    /// Executor parallelism per job.
    pub parallelism: usize,
    /// Small-file fraction for bin-packing input selection.
    pub small_file_fraction: f64,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            cluster: "compaction".to_string(),
            parallelism: 3,
            small_file_fraction: 0.75,
        }
    }
}

/// [`CompactionExecutor`] + [`TrackedExecutor`] implementation over the
/// simulated lake.
pub struct LakesimExecutor {
    env: SharedEnv,
    options: ExecutorOptions,
    /// Position in the maintenance log up to which outcomes were already
    /// reported by [`poll`](TrackedExecutor::poll). Starts at the log's
    /// current length, so an executor only reports jobs finished during
    /// its own lifetime.
    log_cursor: usize,
}

impl LakesimExecutor {
    /// Creates an executor over a shared environment.
    pub fn new(env: SharedEnv) -> Self {
        let options = ExecutorOptions::default();
        Self::with_options(env, options)
    }

    /// Creates an executor with custom options.
    pub fn with_options(env: SharedEnv, options: ExecutorOptions) -> Self {
        let log_cursor = env.borrow().maintenance.records().len();
        LakesimExecutor {
            env,
            options,
            log_cursor,
        }
    }

    /// The outcome-delivery cursor: maintenance-log position up to which
    /// [`poll`](TrackedExecutor::poll) has already reported outcomes.
    /// Record it in a snapshot so a restarted executor can resume
    /// delivery exactly where the crashed one stood.
    pub fn log_cursor(&self) -> usize {
        self.log_cursor
    }

    /// Rewinds (or advances) the outcome-delivery cursor — the restore
    /// half of the [`log_cursor`](Self::log_cursor) contract. After a
    /// crash, set the cursor from the snapshot and the next `poll`
    /// re-delivers every outcome the crashed process saw but did not
    /// durably settle; the tracker's settled-id dedupe makes the overlap
    /// harmless.
    pub fn set_log_cursor(&mut self, cursor: usize) {
        self.log_cursor = cursor;
    }

    fn plan_for(&self, candidate: &Candidate) -> Option<RewritePlan> {
        let env = self.env.borrow();
        let id = TableId(candidate.id.table_uid);
        let entry = env.catalog.table(id).ok()?;
        let config = BinPackConfig {
            target_file_size: entry.policy.target_file_size,
            small_file_fraction: self.options.small_file_fraction,
            min_input_files: entry.policy.min_input_files,
        };
        let plan = match candidate.id.scope {
            ScopeKind::Table | ScopeKind::Snapshot => plan_table_rewrite(&entry.table, &config),
            ScopeKind::Partition => {
                let label = candidate.id.partition.as_deref()?;
                // Map the opaque label back to the partition key.
                let key = entry
                    .table
                    .partition_keys()
                    .into_iter()
                    .find(|k| k.to_string() == label)?;
                plan_partition_rewrite(&entry.table, &key, &config)
            }
        };
        Some(plan)
    }
}

impl CompactionExecutor for LakesimExecutor {
    fn execute(
        &mut self,
        candidate: &Candidate,
        prediction: &Prediction,
        now_ms: u64,
    ) -> ExecutionResult {
        // Apply commits completed by now before planning, so the plan's
        // inputs are never already-replaced files.
        self.env.borrow_mut().drain_due(now_ms);
        let opts = RewriteOptions {
            cluster: self.options.cluster.clone(),
            parallelism: self.options.parallelism,
            trigger: prediction.trigger.clone(),
            predicted_reduction: prediction.reduction,
            predicted_gbhr: prediction.gbhr,
        };
        // Non-merge kinds are whole-table transformations: they bypass
        // bin-packing and route to the engine's transform entry points.
        let submitted = match prediction.kind {
            JobKind::Merge => {
                let Some(plan) = self.plan_for(candidate) else {
                    // The table (or partition) vanished: retrying cannot
                    // help.
                    return ExecutionResult {
                        scheduled: false,
                        error: Some(ExecutionError::permanent("candidate no longer resolvable")),
                        ..ExecutionResult::default()
                    };
                };
                if plan.is_empty() {
                    return ExecutionResult::default();
                }
                self.env.borrow_mut().submit_rewrite(&plan, &opts, now_ms)
            }
            JobKind::SortByColumn => {
                let id = TableId(candidate.id.table_uid);
                self.env.borrow_mut().submit_sort_rewrite(id, &opts, now_ms)
            }
            JobKind::PartitionRelayout => {
                let id = TableId(candidate.id.table_uid);
                self.env
                    .borrow_mut()
                    .submit_partition_relayout(id, &opts, now_ms)
            }
            JobKind::DeletionVectorPurge => {
                let id = TableId(candidate.id.table_uid);
                self.env
                    .borrow_mut()
                    .submit_deletion_purge(id, &opts, now_ms)
            }
        };
        match submitted {
            Ok(Some(job)) => ExecutionResult {
                scheduled: true,
                job_id: Some(job.job_id),
                gbhr: job.gbhr,
                commit_due_ms: Some(job.commit_due_ms),
                error: None,
            },
            Ok(None) => ExecutionResult::default(),
            Err(e) => ExecutionResult {
                scheduled: false,
                // Storage failures (quota pressure writing outputs, the
                // §7 failure mode) may clear by the next attempt; every
                // other engine error is structural.
                error: Some(match &e {
                    EngineError::Catalog(_) => {
                        ExecutionError::permanent("candidate no longer resolvable")
                    }
                    EngineError::Storage(_) => ExecutionError::transient(e.to_string()),
                    _ => ExecutionError::permanent(e.to_string()),
                }),
                ..ExecutionResult::default()
            },
        }
    }
}

impl TrackedExecutor for LakesimExecutor {
    /// Applies engine commits due by `now_ms`, then reports every
    /// maintenance record appended since the last poll (by any
    /// submitter — the runtime ignores jobs it does not track).
    fn poll(&mut self, now_ms: u64) -> Vec<JobOutcome> {
        let mut env = self.env.borrow_mut();
        env.drain_due(now_ms);
        let records = env.maintenance.records_from(self.log_cursor);
        self.log_cursor += records.len();
        records
            .iter()
            .map(|r| JobOutcome {
                job_id: r.job_id,
                table_uid: r.table.0,
                status: match r.status {
                    JobStatus::Succeeded => JobOutcomeStatus::Succeeded,
                    JobStatus::Conflicted => JobOutcomeStatus::Conflicted,
                    JobStatus::Failed => JobOutcomeStatus::Failed,
                },
                finished_at_ms: r.finished_at_ms,
                actual_reduction: r.actual_reduction,
                actual_gbhr: r.actual_gbhr,
            })
            .collect()
    }

    /// The maintenance-log delivery cursor (see
    /// [`log_cursor`](LakesimExecutor::log_cursor)) — rewindable via
    /// [`set_log_cursor`](LakesimExecutor::set_log_cursor) after a
    /// restore.
    fn delivery_cursor(&self) -> u64 {
        self.log_cursor as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::LakesimConnector;
    use crate::share;
    use autocomp::{CandidateId, CandidateStats, LakeConnector};
    use lakesim_catalog::{JobStatus, TablePolicy};
    use lakesim_engine::{EnvConfig, FileSizePlan, SimEnv, WriteSpec};
    use lakesim_lst::{
        ColumnType, ConflictMode, Field, PartitionKey, PartitionSpec, PartitionValue, Schema,
        TableProperties, Transform,
    };
    use lakesim_storage::MB;

    fn setup() -> (SharedEnv, u64) {
        let mut env = SimEnv::new(EnvConfig {
            seed: 4,
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", None).unwrap();
        let schema = Schema::new(vec![
            Field::new(1, "k", ColumnType::Int64, true),
            Field::new(2, "ds", ColumnType::Date, true),
        ])
        .unwrap();
        let t = env
            .create_table(
                "db",
                "events",
                schema,
                PartitionSpec::single(2, Transform::Month, "m"),
                TableProperties {
                    conflict_mode: ConflictMode::PartitionAware,
                    ..TableProperties::default()
                },
                TablePolicy::default(),
            )
            .unwrap();
        for p in 0..2 {
            let spec = WriteSpec::insert(
                t,
                PartitionKey::single(PartitionValue::Date(p)),
                128 * MB,
                FileSizePlan::trickle(),
                "query",
            );
            env.submit_write(&spec, (p as u64) * 10_000).unwrap();
        }
        env.drain_all();
        (share(env), t.0)
    }

    fn prediction() -> Prediction {
        Prediction {
            reduction: 10,
            gbhr: 0.5,
            trigger: "test".into(),
            kind: JobKind::Merge,
        }
    }

    #[test]
    fn table_scope_execution_compacts_whole_table() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env.clone());
        let tables = connector.list_tables();
        let candidate = autocomp::Candidate::new(
            CandidateId::table(uid),
            &tables[0],
            connector.table_stats(uid).unwrap(),
        );
        let mut exec = LakesimExecutor::new(env.clone());
        let result = exec.execute(&candidate, &prediction(), 1_000_000);
        assert!(result.scheduled, "{:?}", result.error);
        assert!(result.gbhr > 0.0);
        let due = result.commit_due_ms.unwrap();
        let before = env
            .borrow()
            .catalog
            .table(TableId(uid))
            .unwrap()
            .table
            .file_count();
        env.borrow_mut().drain_due(due);
        let after = env
            .borrow()
            .catalog
            .table(TableId(uid))
            .unwrap()
            .table
            .file_count();
        assert!(after < before);
        assert_eq!(env.borrow().maintenance.count(JobStatus::Succeeded), 1);
    }

    #[test]
    fn partition_scope_execution_targets_one_partition() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env.clone());
        let tables = connector.list_tables();
        let parts = connector.partition_stats(uid);
        let (label, stats) = parts[0].clone();
        let candidate = autocomp::Candidate::new(
            CandidateId::partition(uid, label.clone()),
            &tables[0],
            stats,
        );
        let mut exec = LakesimExecutor::new(env.clone());
        let result = exec.execute(&candidate, &prediction(), 1_000_000);
        assert!(result.scheduled);
        env.borrow_mut().drain_all();
        // The other partition's files are untouched.
        let other = connector.partition_stats(uid);
        let compacted = other.iter().find(|(l, _)| *l == label).unwrap();
        let untouched = other.iter().find(|(l, _)| *l != label).unwrap();
        assert!(compacted.1.file_count < untouched.1.file_count);
    }

    #[test]
    fn non_merge_predictions_route_to_transform_rewrites() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env.clone());
        let tables = connector.list_tables();
        let candidate = autocomp::Candidate::new(
            CandidateId::table(uid),
            &tables[0],
            connector.table_stats(uid).unwrap(),
        );
        let mut exec = LakesimExecutor::new(env.clone());
        let sort = Prediction {
            kind: JobKind::SortByColumn,
            ..prediction()
        };
        let result = exec.execute(&candidate, &sort, 1_000_000);
        assert!(result.scheduled, "{:?}", result.error);
        env.borrow_mut().drain_all();
        let rec = env.borrow().maintenance.records().last().unwrap().clone();
        assert_eq!(rec.kind, lakesim_catalog::RewriteKind::Sort);
        assert_eq!(rec.trigger, "test");
        // Everything now sorted: a second sort prediction is a quiet no-op.
        let now = env.borrow().clock.now();
        let again = exec.execute(&candidate, &sort, now + 1);
        assert!(!again.scheduled);
        assert!(again.error.is_none());
    }

    #[test]
    fn non_merge_prediction_on_missing_table_is_permanent() {
        let (env, _) = setup();
        let mut exec = LakesimExecutor::new(env);
        let ghost = autocomp::Candidate {
            id: CandidateId::table(999),
            database: "db".into(),
            table_name: "ghost".into(),
            compaction_enabled: true,
            is_intermediate: false,
            stats: CandidateStats::default(),
        };
        let purge = Prediction {
            kind: JobKind::DeletionVectorPurge,
            ..prediction()
        };
        let result = exec.execute(&ghost, &purge, 0);
        assert!(!result.scheduled);
        let err = result.error.unwrap();
        assert!(
            matches!(err, ExecutionError::Permanent(_)),
            "missing table must not be retried"
        );
    }

    #[test]
    fn unresolvable_candidate_reports_error() {
        let (env, _) = setup();
        let mut exec = LakesimExecutor::new(env);
        let ghost = autocomp::Candidate {
            id: CandidateId::table(999),
            database: "db".into(),
            table_name: "ghost".into(),
            compaction_enabled: true,
            is_intermediate: false,
            stats: CandidateStats::default(),
        };
        let result = exec.execute(&ghost, &prediction(), 0);
        assert!(!result.scheduled);
        assert!(result.error.is_some());
    }

    #[test]
    fn compact_table_yields_empty_plan_noop() {
        let (env, uid) = setup();
        // Compact once.
        let connector = LakesimConnector::new(env.clone());
        let tables = connector.list_tables();
        let candidate = autocomp::Candidate::new(
            CandidateId::table(uid),
            &tables[0],
            connector.table_stats(uid).unwrap(),
        );
        let mut exec = LakesimExecutor::new(env.clone());
        let r1 = exec.execute(&candidate, &prediction(), 1_000_000);
        env.borrow_mut().drain_all();
        assert!(r1.scheduled);
        // Second attempt: nothing worth rewriting → not scheduled, no error.
        let refreshed = autocomp::Candidate::new(
            CandidateId::table(uid),
            &tables[0],
            connector.table_stats(uid).unwrap(),
        );
        let now = env.borrow().clock.now();
        let r2 = exec.execute(&refreshed, &prediction(), now + 1);
        assert!(!r2.scheduled);
        assert!(r2.error.is_none());
    }
}
