//! Feedback bridge: maintenance log → pipeline estimation feedback.
//!
//! Completes the §3.3 act→observe loop: after the engine drains rewrite
//! commits, their maintenance records (predicted vs. actual reduction and
//! cost) are streamed into [`autocomp::EstimationFeedback`], which the
//! pipeline can use for calibration (§7).
//!
//! # Migration: manual bridge → automatic ingestion
//!
//! Since the act-phase job runtime landed, drivers no longer need this
//! bridge for the steady-state loop: attach a tracker
//! (`AutoComp::with_job_tracker`) and drive cycles through the
//! `run_cycle_tracked*` entry points with [`crate::LakesimExecutor`] —
//! its `TrackedExecutor::poll` surfaces the same maintenance records as
//! job outcomes, and settled successes are ingested into calibration
//! automatically (using the *tracked* prediction rather than re-reading
//! it from the log). Keep the bridge for drivers that settle outside the
//! pipeline — replaying a pre-recorded maintenance log, importing
//! history from before the tracker existed, or feeding a second pipeline
//! that never submits jobs itself. Mixing both on one pipeline would
//! double-count outcomes the tracker already ingested.

use autocomp::{CandidateId, FeedbackRecord};
use lakesim_catalog::JobStatus;
use lakesim_engine::SimEnv;

/// Incremental exporter of maintenance records.
#[derive(Debug, Default, Clone)]
pub struct FeedbackBridge {
    cursor: usize,
}

impl FeedbackBridge {
    /// Creates a bridge starting at the beginning of the log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains new *successful* maintenance records into feedback records.
    /// Conflicted/failed jobs are skipped (they have no meaningful
    /// actuals); the cursor still advances past them.
    pub fn drain_new(&mut self, env: &SimEnv) -> Vec<FeedbackRecord> {
        let records = env.maintenance.records_from(self.cursor);
        self.cursor += records.len();
        let mut out = Vec::new();
        for r in records {
            if r.status != JobStatus::Succeeded {
                continue;
            }
            out.push(FeedbackRecord {
                candidate: if r.scope.starts_with("partition") {
                    CandidateId::partition(
                        r.table.0,
                        r.scope.trim_start_matches("partition ").to_string(),
                    )
                } else {
                    CandidateId::table(r.table.0)
                },
                at_ms: r.finished_at_ms,
                predicted_reduction: r.predicted_reduction,
                actual_reduction: r.actual_reduction,
                predicted_gbhr: r.predicted_gbhr,
                actual_gbhr: r.actual_gbhr,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lakesim_catalog::MaintenanceRecord;
    use lakesim_engine::EnvConfig;
    use lakesim_lst::TableId;

    fn env_with_records(statuses: &[JobStatus]) -> SimEnv {
        let mut env = SimEnv::new(EnvConfig::default());
        for (i, status) in statuses.iter().enumerate() {
            let job_id = env.maintenance.next_job_id();
            env.maintenance.push(MaintenanceRecord {
                job_id,
                table: TableId(1),
                scope: if i % 2 == 0 {
                    "table".to_string()
                } else {
                    "partition (d3)".to_string()
                },
                trigger: "periodic".into(),
                scheduled_at_ms: 0,
                finished_at_ms: i as u64,
                status: *status,
                kind: lakesim_catalog::RewriteKind::Merge,
                predicted_reduction: 10,
                actual_reduction: 8,
                predicted_gbhr: 1.0,
                actual_gbhr: 1.2,
            });
        }
        env
    }

    #[test]
    fn drains_only_new_successes() {
        let env = env_with_records(&[
            JobStatus::Succeeded,
            JobStatus::Conflicted,
            JobStatus::Succeeded,
        ]);
        let mut bridge = FeedbackBridge::new();
        let first = bridge.drain_new(&env);
        assert_eq!(first.len(), 2);
        // Second drain yields nothing new.
        assert!(bridge.drain_new(&env).is_empty());
    }

    #[test]
    fn partition_scopes_map_to_partition_ids() {
        let env = env_with_records(&[JobStatus::Succeeded, JobStatus::Succeeded]);
        let mut bridge = FeedbackBridge::new();
        let records = bridge.drain_new(&env);
        assert_eq!(records[0].candidate, CandidateId::table(1));
        assert_eq!(records[1].candidate, CandidateId::partition(1, "(d3)"));
        assert_eq!(records[0].predicted_reduction, 10);
        assert_eq!(records[0].actual_reduction, 8);
    }
}
