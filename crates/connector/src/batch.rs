//! The `Sync` batch tier over the simulated lake.
//!
//! PR 1's parallel orient had to leave stats *fetch* on the caller
//! thread: the single-threaded connector shares the environment through
//! `Rc<RefCell<SimEnv>>`, which is not `Sync`. This module provides the
//! shareable tier — [`SyncSharedEnv`] wraps the environment in
//! `Arc<RwLock<_>>`, and [`BatchLakesimConnector`] implements
//! [`BatchLakeConnector`] with read-only stats production (shared with
//! the sequential tier via `crate::stats`), so the provided
//! `observe()` fans per-table stats out over scoped threads, each worker
//! holding only a read lock.
//!
//! Determinism is preserved (NFR2): workers are handed position-stable
//! chunks and stats production never mutates the environment, so a batch
//! observation is bit-identical to the sequential connector's over the
//! same lake state — pinned by the parity suite.

use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

use autocomp::{
    BatchLakeConnector, CandidateStats, ChangeCursor, NameInterner, ObserveFault, TableRef,
};
use lakesim_engine::SimEnv;

use crate::faults::ObserveFaultScript;
use crate::observe::ObserveOptions;
use crate::stats::{self, QuotaCache};

/// Thread-shareable handle to the simulation environment.
pub type SyncSharedEnv = Arc<RwLock<SimEnv>>;

/// Wraps an environment for sharing across threads (the batch tier's
/// counterpart of [`crate::share`]).
pub fn share_sync(env: SimEnv) -> SyncSharedEnv {
    Arc::new(RwLock::new(env))
}

/// [`BatchLakeConnector`] implementation over the simulated lake: the
/// same stats as [`crate::LakesimConnector`], produced under read locks
/// so `observe()` can fan out.
pub struct BatchLakesimConnector {
    env: SyncSharedEnv,
    options: ObserveOptions,
    interner: Mutex<NameInterner>,
    quota: Mutex<QuotaCache>,
    /// Optional scripted fault schedule consumed by the `try_*` reads
    /// (see [`crate::faults`]); `None` never faults.
    faults: Option<Arc<ObserveFaultScript>>,
}

impl BatchLakesimConnector {
    /// Creates a batch-tier connector over a shareable environment.
    pub fn new(env: SyncSharedEnv) -> Self {
        Self::with_options(env, ObserveOptions::default())
    }

    /// Creates a batch-tier connector with custom options.
    pub fn with_options(env: SyncSharedEnv, options: ObserveOptions) -> Self {
        BatchLakesimConnector {
            env,
            options,
            interner: Mutex::new(NameInterner::new()),
            quota: Mutex::new(QuotaCache::default()),
            faults: None,
        }
    }

    /// Attaches a scripted fault schedule (builder style); see
    /// [`crate::LakesimConnector::with_fault_script`].
    pub fn with_fault_script(mut self, script: Arc<ObserveFaultScript>) -> Self {
        self.faults = Some(script);
        self
    }

    fn injected_stats_fault(&self, table_uid: u64) -> Option<ObserveFault> {
        self.faults.as_ref().and_then(|s| s.pop_stats(table_uid))
    }

    fn env(&self) -> RwLockReadGuard<'_, SimEnv> {
        self.env.read().expect("environment lock poisoned")
    }

    fn quota_for(&self, env: &SimEnv, table_uid: u64) -> Option<autocomp::QuotaSignal> {
        stats::quota_for_table(env, &mut self.quota.lock().expect("quota memo"), table_uid)
    }
}

impl BatchLakeConnector for BatchLakesimConnector {
    fn list_tables(&self) -> Vec<TableRef> {
        let env = self.env();
        stats::list_refs(&env, &mut self.interner.lock().expect("interner"))
    }

    fn table_stats(&self, table_uid: u64) -> Option<CandidateStats> {
        let env = self.env();
        let quota = self.quota_for(&env, table_uid);
        stats::table_stats(&env, table_uid, &self.options, quota)
    }

    fn partition_stats(&self, table_uid: u64) -> Vec<(String, CandidateStats)> {
        let env = self.env();
        let quota = self.quota_for(&env, table_uid);
        stats::partition_stats(&env, table_uid, &self.options, quota)
    }

    fn snapshot_stats(&self, table_uid: u64, window_ms: u64) -> Option<CandidateStats> {
        let env = self.env();
        let quota = self.quota_for(&env, table_uid);
        stats::snapshot_stats(&env, table_uid, window_ms, quota)
    }

    fn fleet_cursor(&self) -> Option<ChangeCursor> {
        Some(ChangeCursor(self.env().change_cursor()))
    }

    fn listing_epoch(&self) -> Option<u64> {
        // See `LakesimConnector::listing_epoch`: create/drop/policy-scoped
        // registry epoch, stable across data commits.
        Some(self.env().catalog.registry_epoch())
    }

    fn changes_since(&self, cursor: ChangeCursor) -> Option<Vec<u64>> {
        self.env()
            .changes_since(cursor.0)
            .map(|tables| tables.into_iter().map(|t| t.0).collect())
    }

    // Fallible tier — same injection-before-read discipline as the
    // sequential connector, so vanish keeps surfacing as `Ok(None)`.

    fn try_list_tables(&self) -> Result<Vec<TableRef>, ObserveFault> {
        if let Some(fault) = self.faults.as_ref().and_then(|s| s.pop_listing()) {
            return Err(fault);
        }
        Ok(self.list_tables())
    }

    fn try_table_stats(&self, table_uid: u64) -> Result<Option<CandidateStats>, ObserveFault> {
        if let Some(fault) = self.injected_stats_fault(table_uid) {
            return Err(fault);
        }
        Ok(self.table_stats(table_uid))
    }

    fn try_partition_stats(
        &self,
        table_uid: u64,
    ) -> Result<Vec<(String, CandidateStats)>, ObserveFault> {
        if let Some(fault) = self.injected_stats_fault(table_uid) {
            return Err(fault);
        }
        Ok(self.partition_stats(table_uid))
    }

    fn try_snapshot_stats(
        &self,
        table_uid: u64,
        window_ms: u64,
    ) -> Result<Option<CandidateStats>, ObserveFault> {
        if let Some(fault) = self.injected_stats_fault(table_uid) {
            return Err(fault);
        }
        Ok(self.snapshot_stats(table_uid, window_ms))
    }

    fn try_changes_since(&self, cursor: ChangeCursor) -> Result<Option<Vec<u64>>, ObserveFault> {
        match self.faults.as_ref().and_then(|s| s.pop_changelog()) {
            Some(crate::faults::ChangelogEvent::Fault(fault)) => Err(fault),
            Some(crate::faults::ChangelogEvent::Overflow) => Ok(None),
            None => Ok(self.changes_since(cursor)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocomp::{LakeConnector, ObserveRequest, ScopeStrategy};
    use lakesim_catalog::TablePolicy;
    use lakesim_engine::{EnvConfig, FileSizePlan, WriteSpec};
    use lakesim_lst::{
        ColumnType, Field, PartitionKey, PartitionSpec, PartitionValue, Schema, TableProperties,
        Transform,
    };
    use lakesim_storage::MB;

    fn build_env(tables: u64) -> SimEnv {
        let mut env = SimEnv::new(EnvConfig {
            seed: 11,
            ..EnvConfig::default()
        });
        for i in 0..tables {
            // One database per table so a write dirties exactly one
            // table's quota signal (keeps incremental == cold comparable).
            let db = format!("db{i}");
            env.create_database(&db, "tenant", Some(1_000_000)).unwrap();
            let schema = Schema::new(vec![
                Field::new(1, "k", ColumnType::Int64, true),
                Field::new(2, "ds", ColumnType::Date, true),
            ])
            .unwrap();
            let spec = if i % 2 == 0 {
                PartitionSpec::single(2, Transform::Month, "m")
            } else {
                PartitionSpec::unpartitioned()
            };
            let t = env
                .create_table(
                    &db,
                    &format!("t{i}"),
                    schema,
                    spec,
                    TableProperties::default(),
                    TablePolicy::default(),
                )
                .unwrap();
            let write = WriteSpec::insert(
                t,
                if i % 2 == 0 {
                    PartitionKey::single(PartitionValue::Date(i as i32))
                } else {
                    PartitionKey::unpartitioned()
                },
                16 * MB,
                FileSizePlan::trickle(),
                "query",
            );
            env.submit_write(&write, i * 1000).unwrap();
        }
        env.drain_all();
        env
    }

    #[test]
    fn batch_observation_matches_sequential_tier() {
        for scope in [
            ScopeStrategy::Table,
            ScopeStrategy::Partition,
            ScopeStrategy::Hybrid,
            ScopeStrategy::Snapshot {
                window_ms: u64::MAX,
            },
        ] {
            let sequential = {
                let shared = crate::share(build_env(7));
                let connector = crate::LakesimConnector::new(shared);
                connector.observe(&ObserveRequest::fresh(scope))
            };
            let batched = {
                let shared = share_sync(build_env(7));
                let connector = BatchLakesimConnector::new(shared);
                BatchLakeConnector::observe(&connector, &ObserveRequest::fresh(scope))
            };
            assert_eq!(sequential, batched, "scope {scope:?}");
        }
    }

    #[test]
    fn batch_cursor_feeds_incremental_observe() {
        let shared = share_sync(build_env(6));
        let connector = BatchLakesimConnector::new(shared.clone());
        let first =
            BatchLakeConnector::observe(&connector, &ObserveRequest::fresh(ScopeStrategy::Table));
        assert!(first.cursor().is_some());
        // Write table 2, then observe incrementally: one fetch, rest reused.
        {
            let mut env = shared.write().unwrap();
            let now = env.clock.now();
            let spec = WriteSpec::insert(
                lakesim_lst::TableId(2),
                PartitionKey::single(PartitionValue::Date(2)),
                8 * MB,
                FileSizePlan::trickle(),
                "query",
            );
            env.submit_write(&spec, now + 1).unwrap();
            env.drain_all();
        }
        let second = BatchLakeConnector::observe(
            &connector,
            &ObserveRequest::incremental(ScopeStrategy::Table, &first),
        );
        assert_eq!(second.fetched_tables(), 1);
        assert_eq!(second.reused_tables(), 5);
        // The dirty table's refreshed stats match a cold fetch.
        let cold =
            BatchLakeConnector::observe(&connector, &ObserveRequest::fresh(ScopeStrategy::Table));
        assert_eq!(second.to_candidates(), cold.to_candidates());
    }
}
