//! The observe-side connector: catalog/LST/storage → `CandidateStats`.

use std::sync::Arc;

use autocomp::{CandidateStats, LakeConnector, QuotaSignal, SizeBucket, TableRef};
use lakesim_lst::{plan_partition_rewrite, plan_table_rewrite, BinPackConfig, TableId, TableStats};

use crate::SharedEnv;

/// Options controlling stats production.
#[derive(Debug, Clone)]
pub struct ObserveOptions {
    /// Also compute the partition-aware `planned_reduction` custom metric
    /// by dry-running the bin-packing planner (§7's estimator refinement).
    /// Costs a planning pass per candidate.
    pub compute_planned_estimates: bool,
    /// Fraction of the target size below which a file counts as rewrite
    /// input for the planned estimate (Iceberg default 0.75).
    pub small_file_fraction: f64,
}

impl Default for ObserveOptions {
    fn default() -> Self {
        ObserveOptions {
            compute_planned_estimates: false,
            small_file_fraction: 0.75,
        }
    }
}

/// [`LakeConnector`] implementation over the simulated lake.
pub struct LakesimConnector {
    env: SharedEnv,
    options: ObserveOptions,
}

impl LakesimConnector {
    /// Creates a connector over a shared environment.
    pub fn new(env: SharedEnv) -> Self {
        LakesimConnector {
            env,
            options: ObserveOptions::default(),
        }
    }

    /// Creates a connector with custom options.
    pub fn with_options(env: SharedEnv, options: ObserveOptions) -> Self {
        LakesimConnector { env, options }
    }

    fn convert(
        &self,
        table_stats: &TableStats,
        created_at_ms: u64,
        last_write_ms: Option<u64>,
        write_frequency: f64,
        quota: Option<QuotaSignal>,
        planned_reduction: Option<f64>,
    ) -> CandidateStats {
        let mut histogram: Vec<SizeBucket> = table_stats
            .histogram
            .edges()
            .iter()
            .zip(table_stats.histogram.counts())
            .map(|(edge, count)| SizeBucket {
                upper_bytes: Some(*edge),
                count: *count,
            })
            .collect();
        if let Some(overflow) = table_stats
            .histogram
            .counts()
            .get(table_stats.histogram.edges().len())
        {
            histogram.push(SizeBucket {
                upper_bytes: None,
                count: *overflow,
            });
        }
        let mut stats = CandidateStats {
            file_count: table_stats.file_count,
            small_file_count: table_stats.small_file_count,
            small_bytes: table_stats.small_bytes,
            total_bytes: table_stats.total_bytes,
            delete_file_count: table_stats.delete_file_count,
            partition_count: table_stats.partition_count,
            target_file_size: table_stats.target_file_size,
            created_at_ms,
            last_write_ms,
            write_frequency_per_hour: write_frequency,
            quota,
            size_histogram: histogram,
            custom: Default::default(),
        };
        if let Some(planned) = planned_reduction {
            stats = stats.with_custom(autocomp::traits::PLANNED_REDUCTION_METRIC, planned);
        }
        stats
    }

    fn bin_pack_config(&self, target_file_size: u64, min_input_files: usize) -> BinPackConfig {
        BinPackConfig {
            target_file_size,
            small_file_fraction: self.options.small_file_fraction,
            min_input_files,
        }
    }
}

impl LakeConnector for LakesimConnector {
    fn list_tables(&self) -> Vec<TableRef> {
        let env = self.env.borrow();
        env.catalog
            .table_ids()
            .into_iter()
            .filter_map(|id| {
                let entry = env.catalog.table(id).ok()?;
                Some(TableRef {
                    table_uid: id.0,
                    database: Arc::from(entry.table.database()),
                    name: Arc::from(entry.table.name()),
                    partitioned: entry.table.spec().is_partitioned(),
                    compaction_enabled: entry.policy.compaction_enabled,
                    is_intermediate: entry.policy.is_intermediate,
                })
            })
            .collect()
    }

    fn table_stats(&self, table_uid: u64) -> Option<CandidateStats> {
        let mut env = self.env.borrow_mut();
        let now = env.clock.now();
        let id = TableId(table_uid);
        // Pull usage with mutable access first (frequency pruning), then
        // read the rest immutably.
        let (created, last_write, freq) = {
            let entry = env.catalog.table_mut(id).ok()?;
            (
                entry.usage.created_at_ms,
                entry.usage.last_write_ms,
                entry.usage.write_frequency_per_hour(now),
            )
        };
        let entry = env.catalog.table(id).ok()?;
        let target = entry.policy.target_file_size;
        let stats = entry.table.stats(target);
        let planned = self.options.compute_planned_estimates.then(|| {
            let cfg = self.bin_pack_config(target, entry.policy.min_input_files);
            plan_table_rewrite(&entry.table, &cfg).expected_reduction() as f64
        });
        let quota = env
            .fs
            .quota_usage(entry.table.database())
            .ok()
            .map(|q| QuotaSignal {
                used: q.used,
                total: q.quota,
            });
        Some(self.convert(&stats, created, last_write, freq, quota, planned))
    }

    fn partition_stats(&self, table_uid: u64) -> Vec<(String, CandidateStats)> {
        let mut env = self.env.borrow_mut();
        let now = env.clock.now();
        let id = TableId(table_uid);
        let (created, last_write, freq) = match env.catalog.table_mut(id) {
            Ok(entry) => (
                entry.usage.created_at_ms,
                entry.usage.last_write_ms,
                entry.usage.write_frequency_per_hour(now),
            ),
            Err(_) => return Vec::new(),
        };
        let Ok(entry) = env.catalog.table(id) else {
            return Vec::new();
        };
        let target = entry.policy.target_file_size;
        let quota = env
            .fs
            .quota_usage(entry.table.database())
            .ok()
            .map(|q| QuotaSignal {
                used: q.used,
                total: q.quota,
            });
        entry
            .table
            .partition_keys()
            .into_iter()
            .map(|key| {
                let stats = entry.table.partition_stats(&key, target);
                let planned = self.options.compute_planned_estimates.then(|| {
                    let cfg = self.bin_pack_config(target, entry.policy.min_input_files);
                    plan_partition_rewrite(&entry.table, &key, &cfg).expected_reduction() as f64
                });
                (
                    key.to_string(),
                    self.convert(&stats, created, last_write, freq, quota, planned),
                )
            })
            .collect()
    }

    fn snapshot_stats(&self, table_uid: u64, window_ms: u64) -> Option<CandidateStats> {
        let mut env = self.env.borrow_mut();
        let now = env.clock.now();
        let id = TableId(table_uid);
        let (created, last_write, freq) = {
            let entry = env.catalog.table_mut(id).ok()?;
            (
                entry.usage.created_at_ms,
                entry.usage.last_write_ms,
                entry.usage.write_frequency_per_hour(now),
            )
        };
        let entry = env.catalog.table(id).ok()?;
        let target = entry.policy.target_file_size;
        let cutoff = now.saturating_sub(window_ms);
        // Files added by snapshots inside the freshness window, still live.
        let mut fresh: std::collections::BTreeSet<lakesim_storage::FileId> = Default::default();
        for snap in entry.table.snapshots() {
            if snap.timestamp_ms >= cutoff {
                fresh.extend(snap.added.iter().copied());
            }
        }
        let mut histogram = lakesim_storage::SizeHistogram::new();
        let mut stats = TableStats {
            file_count: 0,
            small_file_count: 0,
            small_bytes: 0,
            total_bytes: 0,
            delete_file_count: 0,
            partition_count: 0,
            manifest_count: entry.table.manifests().len() as u64,
            snapshot_count: entry.table.snapshots().len() as u64,
            histogram: histogram.clone(),
            target_file_size: target,
        };
        let mut partitions = std::collections::BTreeSet::new();
        for f in entry.table.live_files() {
            if !fresh.contains(&f.file_id) {
                continue;
            }
            stats.file_count += 1;
            stats.total_bytes += f.file_size_bytes;
            partitions.insert(f.partition.clone());
            if f.content.is_deletes() {
                stats.delete_file_count += 1;
            } else {
                histogram.record(f.file_size_bytes);
                if f.file_size_bytes < target {
                    stats.small_file_count += 1;
                    stats.small_bytes += f.file_size_bytes;
                }
            }
        }
        stats.partition_count = partitions.len() as u64;
        stats.histogram = histogram;
        let quota = env
            .fs
            .quota_usage(entry.table.database())
            .ok()
            .map(|q| QuotaSignal {
                used: q.used,
                total: q.quota,
            });
        Some(self.convert(&stats, created, last_write, freq, quota, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::share;
    use lakesim_catalog::TablePolicy;
    use lakesim_engine::{EnvConfig, FileSizePlan, SimEnv, WriteSpec};
    use lakesim_lst::{
        ColumnType, Field, PartitionKey, PartitionSpec, PartitionValue, Schema, TableProperties,
        Transform,
    };
    use lakesim_storage::MB;

    fn setup() -> (SharedEnv, u64) {
        let mut env = SimEnv::new(EnvConfig {
            seed: 3,
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", Some(100_000)).unwrap();
        let schema = Schema::new(vec![
            Field::new(1, "k", ColumnType::Int64, true),
            Field::new(2, "ds", ColumnType::Date, true),
        ])
        .unwrap();
        let t = env
            .create_table(
                "db",
                "events",
                schema,
                PartitionSpec::single(2, Transform::Month, "m"),
                TableProperties::default(),
                TablePolicy::default(),
            )
            .unwrap();
        for p in 0..3 {
            let spec = WriteSpec::insert(
                t,
                PartitionKey::single(PartitionValue::Date(p)),
                64 * MB,
                FileSizePlan::trickle(),
                "query",
            );
            env.submit_write(&spec, (p as u64) * 100_000).unwrap();
        }
        env.drain_all();
        (share(env), t.0)
    }

    #[test]
    fn lists_tables_with_flags() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env);
        let tables = connector.list_tables();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].table_uid, uid);
        assert!(tables[0].partitioned);
        assert!(tables[0].compaction_enabled);
    }

    #[test]
    fn table_stats_carry_quota_and_histogram() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env);
        let stats = connector.table_stats(uid).unwrap();
        assert!(stats.file_count > 3);
        assert_eq!(stats.small_file_count, stats.file_count); // all trickle files small
        assert_eq!(stats.partition_count, 3);
        let quota = stats.quota.unwrap();
        assert!(quota.used > 0 && quota.total == 100_000);
        assert!(!stats.size_histogram.is_empty());
        let total_in_hist: u64 = stats.size_histogram.iter().map(|b| b.count).sum();
        assert_eq!(total_in_hist, stats.file_count); // no delete files here
    }

    #[test]
    fn partition_stats_sum_to_table_stats() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env);
        let table = connector.table_stats(uid).unwrap();
        let parts = connector.partition_stats(uid);
        assert_eq!(parts.len(), 3);
        let sum_files: u64 = parts.iter().map(|(_, s)| s.file_count).sum();
        assert_eq!(sum_files, table.file_count);
        // Labels are the partition display strings.
        assert!(parts.iter().all(|(label, _)| label.starts_with('(')));
    }

    #[test]
    fn planned_estimates_respect_partitions() {
        let (env, uid) = setup();
        let connector = LakesimConnector::with_options(
            env,
            ObserveOptions {
                compute_planned_estimates: true,
                small_file_fraction: 0.75,
            },
        );
        let stats = connector.table_stats(uid).unwrap();
        let planned = stats
            .custom_metric(autocomp::traits::PLANNED_REDUCTION_METRIC)
            .unwrap();
        // Partition-aware estimate never exceeds the naive count.
        assert!(planned <= stats.small_file_count as f64);
        assert!(planned > 0.0);
    }

    #[test]
    fn snapshot_stats_cover_only_fresh_files() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env.clone());
        let now = env.borrow().clock.now();
        // Window covering only the last write.
        let fresh = connector.snapshot_stats(uid, 1).unwrap();
        let all = connector.snapshot_stats(uid, now + 1).unwrap();
        assert!(fresh.file_count < all.file_count);
        assert!(all.file_count > 0);
    }

    #[test]
    fn missing_table_yields_none() {
        let (env, _) = setup();
        let connector = LakesimConnector::new(env);
        assert!(connector.table_stats(999).is_none());
        assert!(connector.partition_stats(999).is_empty());
    }
}
