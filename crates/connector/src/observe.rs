//! The observe-side connector: catalog/LST/storage → `CandidateStats`.
//!
//! [`LakesimConnector`] is the single-threaded tier over the shared
//! `Rc<RefCell<SimEnv>>`. Stats production itself is read-only (shared
//! with the batch tier through `crate::stats`); per-cycle costs are
//! amortized with a database-name interner and a per-batch quota memo,
//! and the engine's commit changelog is surfaced as a change cursor so
//! incremental (dirty-set) observes re-fetch only written tables.

use std::cell::RefCell;
use std::sync::Arc;

use autocomp::{CandidateStats, ChangeCursor, LakeConnector, NameInterner, ObserveFault, TableRef};

use crate::faults::ObserveFaultScript;
use crate::stats::{self, QuotaCache};
use crate::SharedEnv;

/// Options controlling stats production.
#[derive(Debug, Clone)]
pub struct ObserveOptions {
    /// Also compute the partition-aware `planned_reduction` custom metric
    /// by dry-running the bin-packing planner (§7's estimator refinement).
    /// Costs a planning pass per candidate.
    pub compute_planned_estimates: bool,
    /// Fraction of the target size below which a file counts as rewrite
    /// input for the planned estimate (Iceberg default 0.75).
    pub small_file_fraction: f64,
    /// Emit the transformation-classification custom metrics
    /// (`transforms_enabled`, sort disorder, partition skew) so the
    /// decide phase can label candidates with non-merge
    /// [`autocomp::JobKind`]s. Off by default: pre-existing pipelines
    /// keep classifying everything as merge, bit-for-bit.
    pub transform_signals: bool,
}

impl Default for ObserveOptions {
    fn default() -> Self {
        ObserveOptions {
            compute_planned_estimates: false,
            small_file_fraction: 0.75,
            transform_signals: false,
        }
    }
}

/// [`LakeConnector`] implementation over the simulated lake
/// (single-threaded tier; see [`crate::BatchLakesimConnector`] for the
/// `Sync` tier).
pub struct LakesimConnector {
    env: SharedEnv,
    options: ObserveOptions,
    /// Shares one `Arc<str>` per database across the fleet listing.
    interner: RefCell<NameInterner>,
    /// One quota lookup per database per storage epoch, instead of one
    /// per table/partition candidate.
    quota: RefCell<QuotaCache>,
    /// Optional scripted fault schedule consumed by the `try_*` reads
    /// (see [`crate::faults`]); `None` never faults.
    faults: Option<Arc<ObserveFaultScript>>,
}

impl LakesimConnector {
    /// Creates a connector over a shared environment.
    pub fn new(env: SharedEnv) -> Self {
        Self::with_options(env, ObserveOptions::default())
    }

    /// Creates a connector with custom options.
    pub fn with_options(env: SharedEnv, options: ObserveOptions) -> Self {
        LakesimConnector {
            env,
            options,
            interner: RefCell::new(NameInterner::new()),
            quota: RefCell::new(QuotaCache::default()),
            faults: None,
        }
    }

    /// Attaches a scripted fault schedule (builder style): the `try_*`
    /// reads consume it before touching the environment, so injected
    /// faults surface as `Err` and never masquerade as vanished tables.
    pub fn with_fault_script(mut self, script: Arc<ObserveFaultScript>) -> Self {
        self.faults = Some(script);
        self
    }

    fn injected_stats_fault(&self, table_uid: u64) -> Option<ObserveFault> {
        self.faults.as_ref().and_then(|s| s.pop_stats(table_uid))
    }
}

impl LakeConnector for LakesimConnector {
    fn list_tables(&self) -> Vec<TableRef> {
        let env = self.env.borrow();
        stats::list_refs(&env, &mut self.interner.borrow_mut())
    }

    fn table_stats(&self, table_uid: u64) -> Option<CandidateStats> {
        let env = self.env.borrow();
        let quota = stats::quota_for_table(&env, &mut self.quota.borrow_mut(), table_uid);
        stats::table_stats(&env, table_uid, &self.options, quota)
    }

    fn partition_stats(&self, table_uid: u64) -> Vec<(String, CandidateStats)> {
        let env = self.env.borrow();
        let quota = stats::quota_for_table(&env, &mut self.quota.borrow_mut(), table_uid);
        stats::partition_stats(&env, table_uid, &self.options, quota)
    }

    fn snapshot_stats(&self, table_uid: u64, window_ms: u64) -> Option<CandidateStats> {
        let env = self.env.borrow();
        let quota = stats::quota_for_table(&env, &mut self.quota.borrow_mut(), table_uid);
        stats::snapshot_stats(&env, table_uid, window_ms, quota)
    }

    fn fleet_cursor(&self) -> Option<ChangeCursor> {
        Some(ChangeCursor(self.env.borrow().change_cursor()))
    }

    fn listing_epoch(&self) -> Option<u64> {
        // The catalog's registry epoch moves only on create/drop/policy
        // edits — not on data commits — so an unchanged value lets the
        // observe drivers share the prior cycle's listing wholesale.
        Some(self.env.borrow().catalog.registry_epoch())
    }

    fn changes_since(&self, cursor: ChangeCursor) -> Option<Vec<u64>> {
        self.env
            .borrow()
            .changes_since(cursor.0)
            .map(|tables| tables.into_iter().map(|t| t.0).collect())
    }

    // The fallible tier: consult the scripted fault schedule first, then
    // run the real (infallible in simulation) read. `Ok(None)` therefore
    // always means the table genuinely vanished — drop-reason wording
    // downstream stays byte-identical to the unfaulted connector.

    fn try_list_tables(&self) -> Result<Vec<TableRef>, ObserveFault> {
        if let Some(fault) = self.faults.as_ref().and_then(|s| s.pop_listing()) {
            return Err(fault);
        }
        Ok(self.list_tables())
    }

    fn try_table_stats(&self, table_uid: u64) -> Result<Option<CandidateStats>, ObserveFault> {
        if let Some(fault) = self.injected_stats_fault(table_uid) {
            return Err(fault);
        }
        Ok(self.table_stats(table_uid))
    }

    fn try_partition_stats(
        &self,
        table_uid: u64,
    ) -> Result<Vec<(String, CandidateStats)>, ObserveFault> {
        if let Some(fault) = self.injected_stats_fault(table_uid) {
            return Err(fault);
        }
        Ok(self.partition_stats(table_uid))
    }

    fn try_snapshot_stats(
        &self,
        table_uid: u64,
        window_ms: u64,
    ) -> Result<Option<CandidateStats>, ObserveFault> {
        if let Some(fault) = self.injected_stats_fault(table_uid) {
            return Err(fault);
        }
        Ok(self.snapshot_stats(table_uid, window_ms))
    }

    fn try_changes_since(&self, cursor: ChangeCursor) -> Result<Option<Vec<u64>>, ObserveFault> {
        match self.faults.as_ref().and_then(|s| s.pop_changelog()) {
            Some(crate::faults::ChangelogEvent::Fault(fault)) => Err(fault),
            Some(crate::faults::ChangelogEvent::Overflow) => Ok(None),
            None => Ok(self.changes_since(cursor)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::share;
    use autocomp::{FleetObserver, ScopeStrategy};
    use lakesim_catalog::TablePolicy;
    use lakesim_engine::{EnvConfig, FileSizePlan, SimEnv, WriteSpec};
    use lakesim_lst::{
        ColumnType, Field, PartitionKey, PartitionSpec, PartitionValue, Schema, TableProperties,
        Transform,
    };
    use lakesim_storage::MB;

    fn setup() -> (SharedEnv, u64) {
        let mut env = SimEnv::new(EnvConfig {
            seed: 3,
            ..EnvConfig::default()
        });
        env.create_database("db", "tenant", Some(100_000)).unwrap();
        let schema = Schema::new(vec![
            Field::new(1, "k", ColumnType::Int64, true),
            Field::new(2, "ds", ColumnType::Date, true),
        ])
        .unwrap();
        let t = env
            .create_table(
                "db",
                "events",
                schema,
                PartitionSpec::single(2, Transform::Month, "m"),
                TableProperties::default(),
                TablePolicy::default(),
            )
            .unwrap();
        for p in 0..3 {
            let spec = WriteSpec::insert(
                t,
                PartitionKey::single(PartitionValue::Date(p)),
                64 * MB,
                FileSizePlan::trickle(),
                "query",
            );
            env.submit_write(&spec, (p as u64) * 100_000).unwrap();
        }
        env.drain_all();
        (share(env), t.0)
    }

    #[test]
    fn lists_tables_with_flags() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env);
        let tables = connector.list_tables();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].table_uid, uid);
        assert!(tables[0].partitioned);
        assert!(tables[0].compaction_enabled);
    }

    #[test]
    fn table_stats_carry_quota_and_histogram() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env);
        let stats = connector.table_stats(uid).unwrap();
        assert!(stats.file_count > 3);
        assert_eq!(stats.small_file_count, stats.file_count); // all trickle files small
        assert_eq!(stats.partition_count, 3);
        let quota = stats.quota.unwrap();
        assert!(quota.used > 0 && quota.total == 100_000);
        assert!(!stats.size_histogram.is_empty());
        let total_in_hist: u64 = stats.size_histogram.iter().map(|b| b.count).sum();
        assert_eq!(total_in_hist, stats.file_count); // no delete files here
    }

    #[test]
    fn partition_stats_sum_to_table_stats() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env);
        let table = connector.table_stats(uid).unwrap();
        let parts = connector.partition_stats(uid);
        assert_eq!(parts.len(), 3);
        let sum_files: u64 = parts.iter().map(|(_, s)| s.file_count).sum();
        assert_eq!(sum_files, table.file_count);
        // Labels are the partition display strings.
        assert!(parts.iter().all(|(label, _)| label.starts_with('(')));
    }

    #[test]
    fn planned_estimates_respect_partitions() {
        let (env, uid) = setup();
        let connector = LakesimConnector::with_options(
            env,
            ObserveOptions {
                compute_planned_estimates: true,
                small_file_fraction: 0.75,
                transform_signals: false,
            },
        );
        let stats = connector.table_stats(uid).unwrap();
        let planned = stats
            .custom_metric(autocomp::traits::PLANNED_REDUCTION_METRIC)
            .unwrap();
        // Partition-aware estimate never exceeds the naive count.
        assert!(planned <= stats.small_file_count as f64);
        assert!(planned > 0.0);
    }

    #[test]
    fn transform_signals_are_opt_in() {
        let (env, uid) = setup();
        let plain = LakesimConnector::new(env.clone());
        let stats = plain.table_stats(uid).unwrap();
        assert!(stats
            .custom_metric(autocomp::TRANSFORMS_ENABLED_METRIC)
            .is_none());
        let connector = LakesimConnector::with_options(
            env,
            ObserveOptions {
                transform_signals: true,
                ..ObserveOptions::default()
            },
        );
        let stats = connector.table_stats(uid).unwrap();
        assert_eq!(
            stats.custom_metric(autocomp::TRANSFORMS_ENABLED_METRIC),
            Some(1.0)
        );
        // Every ingest write is unsorted, so disorder is 1.0; the three
        // equal partitions carry no skew above the mean.
        assert_eq!(
            stats.custom_metric(autocomp::SORT_DISORDER_METRIC),
            Some(1.0)
        );
        let skew = stats
            .custom_metric(autocomp::PARTITION_SKEW_METRIC)
            .unwrap();
        assert!(
            (1.0..1.5).contains(&skew),
            "even partitions ⇒ skew ≈ 1: {skew}"
        );
    }

    #[test]
    fn snapshot_stats_cover_only_fresh_files() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env.clone());
        let now = env.borrow().clock.now();
        // Window covering only the last write.
        let fresh = connector.snapshot_stats(uid, 1).unwrap();
        let all = connector.snapshot_stats(uid, now + 1).unwrap();
        assert!(fresh.file_count < all.file_count);
        assert!(all.file_count > 0);
    }

    #[test]
    fn missing_table_yields_none() {
        let (env, _) = setup();
        let connector = LakesimConnector::new(env);
        assert!(connector.table_stats(999).is_none());
        assert!(connector.partition_stats(999).is_empty());
    }

    #[test]
    fn cursor_surfaces_the_engine_changelog() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env.clone());
        let cursor = connector.fleet_cursor().unwrap();
        assert_eq!(connector.changes_since(cursor), Some(Vec::new()));
        let spec = WriteSpec::insert(
            lakesim_lst::TableId(uid),
            PartitionKey::single(PartitionValue::Date(9)),
            16 * MB,
            FileSizePlan::trickle(),
            "query",
        );
        {
            let mut env = env.borrow_mut();
            let now = env.clock.now();
            env.submit_write(&spec, now + 1).unwrap();
            env.drain_all();
        }
        assert_eq!(connector.changes_since(cursor), Some(vec![uid]));
    }

    #[test]
    fn incremental_observe_reuses_quiet_tables() {
        let (env, _) = setup();
        let connector = LakesimConnector::new(env.clone());
        let mut observer = FleetObserver::new();
        let first = observer
            .observe(&connector, ScopeStrategy::Hybrid)
            .to_candidates();
        // No writes in between: the second observe reuses everything and
        // reproduces the same candidates.
        let second = observer.observe(&connector, ScopeStrategy::Hybrid);
        assert_eq!(second.reused_tables(), 1);
        assert_eq!(second.fetched_tables(), 0);
        assert_eq!(second.to_candidates(), first);
    }

    #[test]
    fn quota_memo_invalidates_on_quota_edits() {
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env.clone());
        let before = connector.table_stats(uid).unwrap().quota.unwrap();
        assert_eq!(before.total, 100_000);
        // A quota edit with no file churn must still bust the memo.
        env.borrow_mut().fs.set_quota("db", Some(50_000)).unwrap();
        let after = connector.table_stats(uid).unwrap().quota.unwrap();
        assert_eq!(after.total, 50_000);
        assert_eq!(after.used, before.used);
    }

    #[test]
    fn listing_epoch_shares_listings_until_registry_changes() {
        use std::sync::Arc;
        let (env, uid) = setup();
        let connector = LakesimConnector::new(env.clone());
        let mut observer = FleetObserver::new();
        let first = observer.observe(&connector, ScopeStrategy::Table).clone();
        assert!(first.listing_epoch().is_some());

        // A data commit moves the changelog but not the registry epoch:
        // the next observe re-fetches the dirty table yet shares the
        // prior listing (one Arc bump — PR 3's fleet-listing reuse now
        // engages on the simulated lake).
        {
            let mut env = env.borrow_mut();
            let now = env.clock.now();
            let spec = WriteSpec::insert(
                lakesim_lst::TableId(uid),
                PartitionKey::single(PartitionValue::Date(7)),
                16 * MB,
                FileSizePlan::trickle(),
                "query",
            );
            env.submit_write(&spec, now + 1).unwrap();
            env.drain_all();
        }
        let second = observer.observe(&connector, ScopeStrategy::Table).clone();
        assert_eq!(second.fetched_tables(), 1);
        assert!(
            Arc::ptr_eq(&first.tables()[0].database, &second.tables()[0].database),
            "unchanged registry epoch ⇒ shared listing"
        );
        assert_eq!(first.listing_epoch(), second.listing_epoch());

        // A policy edit bumps the registry epoch: the listing is
        // re-materialized and carries the new descriptor.
        env.borrow_mut()
            .catalog
            .update_policy(lakesim_lst::TableId(uid), |p| p.compaction_enabled = false)
            .unwrap();
        let third = observer.observe(&connector, ScopeStrategy::Table);
        assert_ne!(second.listing_epoch(), third.listing_epoch());
        assert!(!third.tables()[0].compaction_enabled);
    }

    #[test]
    fn injected_faults_never_masquerade_as_drops() {
        let (env, uid) = setup();
        let script = crate::ObserveFaultScript::new();
        let connector = LakesimConnector::new(env).with_fault_script(script.clone());
        // A genuinely missing table is a state signal even with faults
        // armed: `Ok(None)`, exactly the unfaulted drop path.
        assert!(matches!(connector.try_table_stats(999), Ok(None)));
        // A scripted fault is `Err` — the read failed, nothing vanished.
        script.fault_stats(uid, autocomp::ObserveFault::transient("stats endpoint 503"));
        assert!(connector.try_table_stats(uid).is_err());
        // One fault per read: the schedule drained, so the retry heals.
        assert!(script.drained());
        assert!(matches!(connector.try_table_stats(uid), Ok(Some(_))));
        // Partition and snapshot shapes share the per-table queue.
        script.fault_stats(uid, autocomp::ObserveFault::permanent("acl revoked"));
        assert!(connector.try_partition_stats(uid).is_err());
        assert!(connector.try_snapshot_stats(uid, u64::MAX).unwrap().is_some());
    }

    #[test]
    fn shared_names_are_interned_across_listings() {
        let (env, _) = setup();
        let connector = LakesimConnector::new(env);
        let a = connector.list_tables();
        let b = connector.list_tables();
        assert!(std::sync::Arc::ptr_eq(&a[0].database, &b[0].database));
    }
}
