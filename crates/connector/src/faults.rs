//! Deterministic observe-side fault injection for the simulated lake.
//!
//! The lakesim substrate is an in-memory simulation: its reads cannot
//! actually fail. To exercise the pipeline's degradation machinery
//! ([`autocomp::ObserveDegradation`]) against the *real* connector
//! tiers, both [`LakesimConnector`](crate::LakesimConnector) and
//! [`BatchLakesimConnector`](crate::BatchLakesimConnector) accept an
//! optional [`ObserveFaultScript`]: a scripted schedule of
//! [`ObserveFault`]s consumed by their `try_*` implementations before
//! the real read runs.
//!
//! Scripts are strictly deterministic: each read kind (listing,
//! changelog, per-table stats) drains its own FIFO queue — one fault per
//! `try_*` call — so a test's fault schedule replays bit-identically
//! run to run. An empty queue means the read succeeds, which is how a
//! schedule "heals": once the scripted faults drain, the connector is
//! indistinguishable from an unfaulted one, the precondition for the
//! reconvergence contract pinned by `tests/connector_faults.rs`.
//!
//! The vanish-vs-fault split is preserved by construction: injection
//! happens *before* the real read, so a dropped table still surfaces as
//! `Ok(None)` (the state signal, with its drop-reason wording
//! untouched) and an injected fault always surfaces as `Err` — faults
//! never masquerade as drops.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use autocomp::ObserveFault;

/// One scripted outcome of a `try_changes_since` call: a read fault, or
/// a retention overflow (`Ok(None)` — the mid-stream "cursor fell out of
/// retention" answer, which is *not* retried and forces one full
/// observe).
#[derive(Debug)]
pub enum ChangelogEvent {
    /// The changelog read fails with the given fault.
    Fault(ObserveFault),
    /// The changelog read succeeds but answers `None`: the cursor fell
    /// out of the bounded changelog's retention.
    Overflow,
}

#[derive(Debug, Default)]
struct ScriptState {
    listing: VecDeque<ObserveFault>,
    changelog: VecDeque<ChangelogEvent>,
    stats: BTreeMap<u64, VecDeque<ObserveFault>>,
}

/// A scripted, internally synchronized fault schedule shared between a
/// test and the connector tier(s) it drives (clone the [`Arc`]).
///
/// Queue semantics per read kind: `fault_*` pushes append, each `try_*`
/// call on an attached connector pops at most one fault from the
/// matching queue. Stats queues are keyed by table uid and consulted by
/// `try_table_stats`, `try_partition_stats` *and* `try_snapshot_stats`
/// (one shared queue per table — a faulted table faults whichever stats
/// shape the scope asks for).
#[derive(Debug, Default)]
pub struct ObserveFaultScript {
    state: Mutex<ScriptState>,
}

impl ObserveFaultScript {
    /// A fresh, empty (never-faulting) script behind an [`Arc`].
    pub fn new() -> Arc<Self> {
        Arc::new(ObserveFaultScript::default())
    }

    /// Schedules a fault for the next unconsumed `try_list_tables` call.
    pub fn fault_listing(&self, fault: ObserveFault) {
        self.state.lock().expect("fault script").listing.push_back(fault);
    }

    /// Schedules a fault for the next unconsumed `try_changes_since`
    /// call.
    pub fn fault_changelog(&self, fault: ObserveFault) {
        self.state
            .lock()
            .expect("fault script")
            .changelog
            .push_back(ChangelogEvent::Fault(fault));
    }

    /// Schedules a retention overflow for the next unconsumed
    /// `try_changes_since` call: the read succeeds but answers `None`
    /// ("cursor fell out of retention") without the real changelog
    /// having to be flooded past its cap.
    pub fn overflow_changelog(&self) {
        self.state
            .lock()
            .expect("fault script")
            .changelog
            .push_back(ChangelogEvent::Overflow);
    }

    /// Schedules a fault for `table_uid`'s next unconsumed stats read
    /// (table, partition, or snapshot shape).
    pub fn fault_stats(&self, table_uid: u64, fault: ObserveFault) {
        self.state
            .lock()
            .expect("fault script")
            .stats
            .entry(table_uid)
            .or_default()
            .push_back(fault);
    }

    /// Drops every unconsumed fault — the "infrastructure healed" event
    /// for schedules whose reads were never re-issued (a listing fault
    /// armed while the registry epoch let the observer reuse its prior
    /// listing, a stats fault on a table that never turned dirty).
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("fault script");
        state.listing.clear();
        state.changelog.clear();
        state.stats.clear();
    }

    /// Whether every scheduled fault has been consumed (the schedule has
    /// healed).
    pub fn drained(&self) -> bool {
        let state = self.state.lock().expect("fault script");
        state.listing.is_empty()
            && state.changelog.is_empty()
            && state.stats.values().all(|q| q.is_empty())
    }

    /// Consumes the next scheduled listing fault, if any. Public so
    /// connectors outside this crate (e.g. bench harness lakes) can
    /// implement their own `try_list_tables` over a script with the same
    /// one-fault-per-read discipline.
    pub fn pop_listing(&self) -> Option<ObserveFault> {
        self.state.lock().expect("fault script").listing.pop_front()
    }

    /// Consumes the next scheduled changelog event, if any (see
    /// [`pop_listing`](Self::pop_listing) for why this is public).
    pub fn pop_changelog(&self) -> Option<ChangelogEvent> {
        self.state.lock().expect("fault script").changelog.pop_front()
    }

    /// Consumes `table_uid`'s next scheduled stats fault, if any (see
    /// [`pop_listing`](Self::pop_listing) for why this is public).
    pub fn pop_stats(&self, table_uid: u64) -> Option<ObserveFault> {
        self.state
            .lock()
            .expect("fault script")
            .stats
            .get_mut(&table_uid)
            .and_then(|q| q.pop_front())
    }
}
