//! # autocomp-lakesim
//!
//! Connector binding the platform-agnostic [`autocomp`] pipeline to the
//! lakesim substrate (storage + LST + catalog + engine) — the Fig. 5
//! integration: AutoComp as "a standalone component that supports both
//! push and pull operations" against the control plane.
//!
//! The observe side comes in the two tiers of the batched API:
//!
//! * [`LakesimConnector`] implements [`autocomp::LakeConnector`]
//!   (single-threaded tier over `Rc<RefCell<SimEnv>>`): it lists catalog
//!   tables and converts LST/catalog/storage state into the standardized
//!   [`autocomp::CandidateStats`] layout — quota signal (§7) memoized
//!   once per database per batch, database names interned — and surfaces
//!   the engine's commit changelog as a change cursor, so
//!   `observe(&ObserveRequest)` with a prior observation re-fetches only
//!   the tables written since the last cycle (§5's optimize-after-write
//!   mode without full-fleet observe cost). Incremental caveat: reused
//!   entries keep the prior cycle's quota signal and write-frequency
//!   values for quiet tables (bounded staleness, see
//!   `autocomp::observe`'s staleness contract); interleave cold observes
//!   when exact fleetwide quota pressure matters.
//! * [`BatchLakesimConnector`] implements
//!   [`autocomp::BatchLakeConnector`] (the `Sync` tier over
//!   [`SyncSharedEnv`], an `Arc<RwLock<SimEnv>>`): identical stats,
//!   produced under read locks so `observe()` fans stats production out
//!   over scoped threads. Both tiers share the read-only builders in the
//!   private `stats` module and are parity-tested bit-identical.
//!
//! The act side is unchanged in shape:
//!
//! * [`LakesimExecutor`] implements [`autocomp::CompactionExecutor`]: it
//!   plans bin-pack rewrites at the candidate's scope and submits them to
//!   the engine's compaction cluster. Executed rewrites land in the
//!   engine changelog, so incremental observers automatically re-fetch
//!   compacted tables next cycle.
//! * [`FeedbackBridge`] streams completed maintenance records back into
//!   the pipeline's estimation feedback (§3.3's act→observe loop).
//! * [`hooks`] evaluates optimize-after-write hooks against just-written
//!   tables (§5 push mode) and can feed `MarkDirty` decisions straight
//!   into a [`autocomp::FleetObserver`].
//!
//! The sequential tier shares the [`SimEnv`] through an `Rc<RefCell<_>>`:
//! the pipeline's observe phase reads while the act phase mutates,
//! strictly sequentially (single-threaded simulation, NFR2).

#![warn(missing_docs)]

pub mod batch;
pub mod events;
pub mod executor;
pub mod faults;
pub mod feedback;
pub mod hooks;
pub mod observe;
mod stats;

use std::cell::RefCell;
use std::rc::Rc;

use lakesim_engine::SimEnv;

pub use batch::{share_sync, BatchLakesimConnector, SyncSharedEnv};
pub use events::CommitEventBridge;
pub use executor::{ExecutorOptions, LakesimExecutor};
pub use faults::{ChangelogEvent, ObserveFaultScript};
pub use feedback::FeedbackBridge;
pub use hooks::{evaluate_hook, mark_database_dirty, mark_dirty_from_actions};
pub use observe::{LakesimConnector, ObserveOptions};

/// Shared handle to the simulation environment.
pub type SharedEnv = Rc<RefCell<SimEnv>>;

/// Wraps an environment for sharing between connector and executor.
pub fn share(env: SimEnv) -> SharedEnv {
    Rc::new(RefCell::new(env))
}

/// Temporarily shares an exclusively borrowed environment so connector +
/// executor pairs can run against it, then returns ownership.
///
/// This is the glue for drivers that own `&mut SimEnv` (e.g. the workload
/// stream runner's tick callback) and want to run an AutoComp cycle inside
/// the callback. The closure must drop every `SharedEnv` clone it creates
/// before returning.
///
/// # Panics
/// Panics if the closure leaks a clone of the shared handle.
pub fn with_shared_env<R>(env: &mut SimEnv, f: impl FnOnce(&SharedEnv) -> R) -> R {
    let owned = std::mem::replace(env, SimEnv::new(lakesim_engine::EnvConfig::default()));
    let shared = share(owned);
    let result = f(&shared);
    let owned = Rc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("with_shared_env closure leaked a SharedEnv clone"))
        .into_inner();
    *env = owned;
    result
}
