//! Plain-text table rendering for explainable decision reports (NFR2).

/// Renders an aligned plain-text table. Columns are sized to their widest
/// cell; the header is underlined with dashes.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with three decimals, the fixed precision used across
/// reports so diffs stay stable.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = render_table(
            &["id", "score"],
            &[
                vec!["t1".to_string(), "0.900".to_string()],
                vec!["t2/long-partition".to_string(), "0.100".to_string()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("id"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Column 2 aligned: 'score' column starts at the same offset.
        let off0 = lines[0].find("score").unwrap();
        let off2 = lines[2].find("0.900").unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(fmt_f64(1.0 / 3.0), "0.333");
        assert_eq!(fmt_f64(2.0), "2.000");
    }
}
