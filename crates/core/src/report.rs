//! Plain-text table rendering for explainable decision reports (NFR2).

use crate::matrix::TraitMatrix;
use crate::rank::RankedEntry;

/// Renders an aligned plain-text table. Columns are sized to their widest
/// cell; the header is underlined with dashes.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with three decimals, the fixed precision used across
/// reports so diffs stay stable.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.3}")
}

/// Builds the decision-table rows for the report's top `limit` ranked
/// entries. Trait cells list columns alphabetically (the order the seed's
/// `BTreeMap` iteration produced); notes render lazily here — only these
/// rows ever pay the formatting cost.
pub fn decision_rows(
    matrix: &TraitMatrix,
    ranked: &[RankedEntry],
    limit: usize,
) -> Vec<Vec<String>> {
    let name_order = matrix.trait_ids_by_name();
    ranked
        .iter()
        .take(limit)
        .map(|e| {
            let traits = name_order
                .iter()
                .map(|id| {
                    format!(
                        "{}={}",
                        matrix.trait_name(*id),
                        fmt_f64(matrix.value(e.index, *id))
                    )
                })
                .collect::<Vec<_>>()
                .join(" ");
            vec![
                e.id.to_string(),
                fmt_f64(e.score),
                if e.selected { "yes" } else { "no" }.to_string(),
                traits,
                e.note.to_string(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = render_table(
            &["id", "score"],
            &[
                vec!["t1".to_string(), "0.900".to_string()],
                vec!["t2/long-partition".to_string(), "0.100".to_string()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("id"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Column 2 aligned: 'score' column starts at the same offset.
        let off0 = lines[0].find("score").unwrap();
        let off2 = lines[2].find("0.900").unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(fmt_f64(1.0 / 3.0), "0.333");
        assert_eq!(fmt_f64(2.0), "2.000");
    }
}
