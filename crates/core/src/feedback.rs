//! The feedback loop (§3.3, §7): predicted vs. actual outcomes.
//!
//! "AutoComp also supports an optional feedback loop from the act phase
//! back to the observe phase" (§3.3). §7 quantifies why it matters: a
//! compaction task's cost was under-estimated by 19% and its file-count
//! reduction over-estimated by 28%. This module accumulates those
//! comparisons and derives multiplicative calibration factors the
//! pipeline can optionally apply to future predictions — the "further
//! refinement" the paper calls for.

use crate::candidate::CandidateId;

/// One prediction-vs-outcome observation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackRecord {
    /// Candidate the job compacted.
    pub candidate: CandidateId,
    /// When the job finished.
    pub at_ms: u64,
    /// Predicted file-count reduction.
    pub predicted_reduction: i64,
    /// Achieved file-count reduction.
    pub actual_reduction: i64,
    /// Predicted cost (GBHr).
    pub predicted_gbhr: f64,
    /// Actual cost (GBHr).
    pub actual_gbhr: f64,
}

/// One running mean over streamed observations.
#[derive(Debug, Clone, Copy, Default)]
struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    fn push(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }

    fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
}

/// Accumulated estimator feedback with calibration.
///
/// Biases and calibration factors are maintained as running sums at
/// [`record`](Self::record) time, so reading them each cycle is O(1)
/// instead of a rescan of the whole feedback history — at fleet scale the
/// history grows by thousands of jobs per cycle and the seed's
/// recompute-on-read was itself becoming framework overhead.
///
/// The raw [`records`](Self::records) history is still retained in full —
/// only the accessor reads it now, and long-lived deployments ingesting
/// thousands of jobs per cycle should expect it to grow without bound
/// (seed behavior, preserved for audit/replay); windowed retention is a
/// caller policy, not something this accumulator imposes.
#[derive(Debug, Clone, Default)]
pub struct EstimationFeedback {
    records: Vec<FeedbackRecord>,
    reduction_bias: RunningMean,
    cost_bias: RunningMean,
    reduction_ratio: RunningMean,
    cost_ratio: RunningMean,
}

impl EstimationFeedback {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one observation, updating the running aggregates.
    pub fn record(&mut self, record: FeedbackRecord) {
        if record.actual_reduction != 0 {
            self.reduction_bias.push(
                (record.predicted_reduction - record.actual_reduction) as f64
                    / record.actual_reduction as f64,
            );
        }
        if record.actual_gbhr > 0.0 {
            self.cost_bias
                .push((record.predicted_gbhr - record.actual_gbhr) / record.actual_gbhr);
        }
        if record.predicted_reduction > 0 {
            self.reduction_ratio.push(clamp_ratio(
                record.actual_reduction as f64 / record.predicted_reduction as f64,
            ));
        }
        if record.predicted_gbhr > 0.0 {
            self.cost_ratio
                .push(clamp_ratio(record.actual_gbhr / record.predicted_gbhr));
        }
        self.records.push(record);
    }

    /// All observations.
    pub fn records(&self) -> &[FeedbackRecord] {
        &self.records
    }

    /// Mean signed relative error of the reduction estimator (positive =
    /// over-estimation, the §7 direction). `None` without usable data.
    pub fn reduction_bias(&self) -> Option<f64> {
        self.reduction_bias.mean()
    }

    /// Mean signed relative error of the cost estimator (negative =
    /// under-estimation, the §7 direction).
    pub fn cost_bias(&self) -> Option<f64> {
        self.cost_bias.mean()
    }

    /// Multiplicative calibration factor for future reduction estimates:
    /// `actual ≈ factor × predicted`. 1.0 without data.
    pub fn reduction_calibration(&self) -> f64 {
        self.reduction_ratio.mean().unwrap_or(1.0)
    }

    /// Multiplicative calibration factor for future cost estimates.
    pub fn cost_calibration(&self) -> f64 {
        self.cost_ratio.mean().unwrap_or(1.0)
    }
}

impl EstimationFeedback {
    /// Writes the calibration aggregates into a snapshot. The raw
    /// [`records`](Self::records) history is deliberately **not**
    /// persisted: it is audit-only (nothing downstream reads it back),
    /// unbounded, and the calibration the pipeline applies is a pure
    /// function of these running means — persisting the sums as raw
    /// IEEE-754 bits keeps post-restore calibration bit-identical.
    pub(crate) fn snapshot_write(&self, enc: &mut lakesim_storage::Encoder) {
        for mean in [
            &self.reduction_bias,
            &self.cost_bias,
            &self.reduction_ratio,
            &self.cost_ratio,
        ] {
            enc.put_f64(mean.sum);
            enc.put_u64(mean.n);
        }
    }

    /// Restores the calibration aggregates from a snapshot (leaving the
    /// audit history empty).
    pub(crate) fn snapshot_read(
        dec: &mut lakesim_storage::Decoder<'_>,
    ) -> Result<Self, lakesim_storage::CodecError> {
        let mut means = [RunningMean::default(); 4];
        for mean in &mut means {
            mean.sum = dec.take_f64("feedback mean sum")?;
            mean.n = dec.take_u64("feedback mean count")?;
        }
        Ok(EstimationFeedback {
            records: Vec::new(),
            reduction_bias: means[0],
            cost_bias: means[1],
            reduction_ratio: means[2],
            cost_ratio: means[3],
        })
    }
}

/// Clamp individual ratios to a sane band so one pathological job cannot
/// swing the calibration.
fn clamp_ratio(ratio: f64) -> f64 {
    ratio.clamp(0.1, 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(pred_red: i64, act_red: i64, pred_cost: f64, act_cost: f64) -> FeedbackRecord {
        FeedbackRecord {
            candidate: CandidateId::table(1),
            at_ms: 0,
            predicted_reduction: pred_red,
            actual_reduction: act_red,
            predicted_gbhr: pred_cost,
            actual_gbhr: act_cost,
        }
    }

    #[test]
    fn biases_match_paper_directions() {
        let mut f = EstimationFeedback::new();
        // §7: reduction over-estimated 28%, cost under-estimated (108 vs 129).
        f.record(record(128, 100, 108.0, 129.0));
        let rb = f.reduction_bias().unwrap();
        let cb = f.cost_bias().unwrap();
        assert!(rb > 0.0, "over-estimation is positive bias");
        assert!(cb < 0.0, "under-estimation is negative bias");
    }

    #[test]
    fn calibration_corrects_systematic_error() {
        let mut f = EstimationFeedback::new();
        // Predictions consistently 2× too high on reduction, 20% low on cost.
        for _ in 0..10 {
            f.record(record(100, 50, 80.0, 100.0));
        }
        assert!((f.reduction_calibration() - 0.5).abs() < 1e-9);
        assert!((f.cost_calibration() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn empty_feedback_is_neutral() {
        let f = EstimationFeedback::new();
        assert_eq!(f.reduction_bias(), None);
        assert_eq!(f.cost_bias(), None);
        assert_eq!(f.reduction_calibration(), 1.0);
        assert_eq!(f.cost_calibration(), 1.0);
    }

    #[test]
    fn pathological_ratios_are_clamped() {
        let mut f = EstimationFeedback::new();
        f.record(record(1, 1_000_000, 0.001, 1000.0));
        assert!(f.reduction_calibration() <= 10.0);
        assert!(f.cost_calibration() <= 10.0);
    }
}
