//! # autocomp
//!
//! The paper's primary contribution: **AutoComp**, a framework for
//! automatic, scalable data compaction of log-structured tables,
//! structured as an 'Observe, Orient, Decide, Act' (OODA) loop (§3.3):
//!
//! * **Observe** — [`scope`] generates compaction *candidates* (table /
//!   partition / hybrid scope, FR1) and fills them with a standardized
//!   statistics layout ([`stats::CandidateStats`], §4.1) fetched through a
//!   platform-agnostic [`connector::LakeConnector`] (NFR3).
//! * **Orient** — [`traits`] computes decision *traits* from those
//!   statistics: benefit traits (file-count reduction ΔF, file entropy)
//!   and cost traits (compute cost GBHr), §4.2.
//! * **Decide** — [`rank`] ranks candidates: threshold policies for the
//!   unconstrained scenario, weighted-sum MOOP scalarization with min–max
//!   normalization for the resource-constrained scenario, top-k and
//!   budget-constrained (dynamic-k) selection, and the production
//!   quota-aware weighting `w1 = 0.5 × (1 + Used/Total)` (§4.3, §7).
//! * **Act** — [`schedule`] orders the selected work units (parallel
//!   across tables, sequential within a table, §4.4/§6) and
//!   [`pipeline::AutoComp`] submits them through a
//!   [`connector::CompactionExecutor`].
//!
//! [`trigger`] provides the two §5 execution modes (periodic and
//! optimize-after-write); [`feedback`] closes the loop with predicted-vs-
//! actual estimator accuracy (§7). Every phase is deterministic and every
//! cycle produces an explainable [`pipeline::CycleReport`] (NFR2).
//!
//! This crate depends only on `std`: it talks to a concrete lake purely
//! through the connector traits, which is what lets the same pipeline run
//! against the simulated lake here, or any other LST/catalog (NFR3).

#![warn(missing_docs)]

pub mod candidate;
pub mod connector;
pub mod error;
pub mod feedback;
pub mod filter;
pub mod pipeline;
pub mod rank;
pub mod report;
pub mod schedule;
pub mod scope;
pub mod stats;
pub mod traits;
pub mod trigger;

pub use candidate::{Candidate, CandidateId, ScopeKind, TableRef};
pub use connector::{CompactionExecutor, ExecutionResult, LakeConnector, Prediction};
pub use error::AutoCompError;
pub use feedback::{EstimationFeedback, FeedbackRecord};
pub use filter::{
    AlreadyCompactFilter, CandidateFilter, CompactionDisabledFilter, FilterDecision,
    IntermediateTableFilter, MinSizeFilter, RecentWriteActivityFilter, RecentlyCreatedFilter,
};
pub use pipeline::{AutoComp, AutoCompConfig, CycleReport};
pub use rank::{RankedEntry, RankingPolicy, TraitWeight};
pub use schedule::{AllParallelScheduler, ParallelTablesScheduler, ScheduledJob, Scheduler, StrictSequentialScheduler};
pub use scope::ScopeStrategy;
pub use stats::{CandidateStats, QuotaSignal, SizeBucket};
pub use traits::{
    ComputeCostGbhr, FileCountReduction, FileEntropy, TraitComputer, TraitDirection,
};
pub use trigger::{AfterWriteHook, HookAction, HookMode, PeriodicTrigger};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, AutoCompError>;
