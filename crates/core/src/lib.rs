//! # autocomp
//!
//! The paper's primary contribution: **AutoComp**, a framework for
//! automatic, scalable data compaction of log-structured tables,
//! structured as an 'Observe, Orient, Decide, Act' (OODA) loop (§3.3):
//!
//! * **Observe** — one batched `observe()` call captures the fleet as a
//!   [`observe::FleetObservation`]: table descriptors plus a standardized
//!   statistics layout ([`stats::CandidateStats`], §4.1) at the
//!   configured candidate scope (table / partition / hybrid / snapshot,
//!   FR1), fetched through a platform-agnostic connector tier (NFR3) and
//!   consumed by index. [`scope`] materializes the observation into
//!   candidates.
//! * **Orient** — [`traits`] computes decision *traits* from those
//!   statistics: benefit traits (file-count reduction ΔF, file entropy)
//!   and cost traits (compute cost GBHr), §4.2.
//! * **Decide** — [`rank`] ranks candidates: threshold policies for the
//!   unconstrained scenario, weighted-sum MOOP scalarization with min–max
//!   normalization for the resource-constrained scenario, top-k and
//!   budget-constrained (dynamic-k) selection, and the production
//!   quota-aware weighting `w1 = 0.5 × (1 + Used/Total)` (§4.3, §7).
//! * **Act** — [`schedule`] orders the selected work units (parallel
//!   across tables, sequential within a table, §4.4/§6) and
//!   [`pipeline::AutoComp`] submits them through a
//!   [`connector::CompactionExecutor`].
//!
//! [`trigger`] provides the two §5 execution modes (periodic and
//! optimize-after-write); [`feedback`] closes the loop with predicted-vs-
//! actual estimator accuracy (§7). Every phase is deterministic and every
//! cycle produces an explainable [`pipeline::CycleReport`] (NFR2).
//!
//! # The batched, snapshot-oriented observe path
//!
//! The observe side is a two-tier connector API (see [`connector`]):
//!
//! * [`connector::LakeConnector`] — the single-threaded tier. Connectors
//!   implement the per-table primitives and inherit a batched
//!   `observe(&ObserveRequest) -> FleetObservation` entry point that
//!   drives the historical per-table pull protocol, so every pre-batch
//!   connector keeps working unchanged.
//! * [`connector::BatchLakeConnector`] — the `Sync` tier: same
//!   primitives, but stats production fans out over scoped threads in
//!   position-stable chunks, bit-identical to the sequential tier.
//!   [`connector::BatchAsLake`] / [`connector::SyncAsBatch`] adapt
//!   between the tiers.
//!
//! Observations are snapshots that persist across cycles: a connector
//! with a change cursor ([`observe::ChangeCursor`], fed by after-write
//! hooks and executed compactions) lets [`observe::FleetObserver`] run
//! **incremental** cycles that re-fetch stats only for tables written
//! since the prior cycle — the §5 optimize-after-write mode stops paying
//! full-fleet observe cost.
//!
//! # The columnar decide path
//!
//! At the paper's fleet scale (§6–§7: ~21K tables growing toward 100K
//! per cycle), framework overhead — not compaction itself — bounds how
//! often the OODA loop can run. The orient/decide hot path is therefore
//! columnar:
//!
//! * [`matrix::TraitMatrix`] interns trait names once per cycle into
//!   dense [`matrix::TraitId`]s and stores all values in one flat
//!   column-major `Vec<f64>`, so normalization, scalarization and cost
//!   lookups are index arithmetic over contiguous columns — no
//!   per-candidate maps, no string-keyed probes, and **zero per-candidate
//!   allocations** in the decide phase.
//! * Orient fills trait columns in parallel chunks over scoped threads
//!   for large fleets; the fill is position-stable, so results are
//!   bit-identical to sequential runs. Filtering retains survivors in
//!   place (no fleet-sized reallocation), and NaN trait values are
//!   sanitized into dropped candidates instead of aborting the cycle.
//! * [`rank::rank_and_select`] replaces the seed's full fleet sort with
//!   partial selection (`select_nth_unstable_by` plus a sort of the
//!   selected head): for n candidates and k selections the decide phase
//!   is **O(n + k log k)**; only the selected set and the report's top
//!   rows ([`rank::RANKED_PREFIX_MIN`]) are materialized in exact rank
//!   order, and budgeted (dynamic-k) policies expand the sorted region
//!   lazily with doubling chunks. Decision notes are a lazy
//!   [`rank::DecisionNote`] enum rendered on `Display`, so the fleet tail
//!   never pays `format!` costs.
//!
//! This crate depends on `std` plus the workspace's `lakesim_storage`
//! codec layer (for the [`durability`] snapshot/journal formats): it
//! talks to a concrete lake purely through the connector traits, which is
//! what lets the same pipeline run against the simulated lake here, or
//! any other LST/catalog (NFR3). [`durability`] makes the retained
//! cross-cycle state (observation chain, cycle cache, rank memo, job
//! ledger, calibration) survive a process restart.

#![warn(missing_docs)]

pub mod act;
pub mod cache;
pub mod candidate;
pub mod connector;
pub mod durability;
pub mod error;
pub mod feedback;
pub mod filter;
pub mod kind;
pub mod matrix;
pub mod observe;
mod par;
pub mod pipeline;
pub mod rank;
pub mod report;
pub mod runtime;
pub mod schedule;
pub mod scope;
pub mod stats;
pub mod telemetry;
pub mod traits;
pub mod trigger;

pub use act::{
    pump_completions, CompletionSink, JobLedgerSummary, JobOutcome, JobOutcomeStatus,
    JobRuntimeConfig, JobTracker, TrackedExecutor, Untracked,
};
pub use cache::CycleCacheStats;
pub use candidate::{Candidate, CandidateId, CandidateView, ScopeKind, TableRef};
pub use connector::{
    BatchAsLake, BatchLakeConnector, CompactionExecutor, ExecutionError, ExecutionResult,
    LakeConnector, ObserveFault, Prediction, SyncAsBatch,
};
pub use durability::{
    JournalEvent, JournalingExecutor, RecoveryReport, ReplayExecutor, ReplaySummary,
    SnapshotContext,
};
pub use error::AutoCompError;
pub use feedback::{EstimationFeedback, FeedbackRecord};
pub use filter::{
    AlreadyCompactFilter, CandidateFilter, CompactionDisabledFilter, FilterDecision,
    IntermediateTableFilter, MinSizeFilter, RecentWriteActivityFilter, RecentlyCreatedFilter,
};
pub use kind::{JobKind, PARTITION_SKEW_METRIC, SORT_DISORDER_METRIC, TRANSFORMS_ENABLED_METRIC};
pub use matrix::{TraitId, TraitMatrix};
pub use observe::{
    ChangeCursor, DegradeReason, FallbackCause, FleetObservation, FleetObserver, NameInterner,
    ObserveDegradation, ObserveRecoveryPolicy, ObserveRequest, Quarantined, TableObservation,
};
pub use pipeline::{AutoComp, AutoCompConfig, CycleReport};
pub use rank::{
    DecisionNote, RankCycleStats, RankSource, RankedEntries, RankedEntry, RankingPolicy,
    TraitWeight, RANKED_PREFIX_MIN,
};
pub use runtime::{
    ContinuousRuntime, FleetHealth, RoundReport, RuntimeConfig, RuntimeEvent, RuntimeStats,
    TriggerCause, STALL_AFTER_STALE_LISTINGS,
};
pub use schedule::{
    AllParallelScheduler, ParallelTablesScheduler, ScheduledJob, Scheduler,
    StrictSequentialScheduler,
};
pub use scope::ScopeStrategy;
pub use stats::{CandidateStats, QuotaSignal, SizeBucket};
pub use telemetry::{
    FleetHealthReport, HistogramSnapshot, Log2Histogram, PhaseSpan, TelemetryRegistry,
    TelemetrySink,
};
pub use traits::{
    ComputeCostGbhr, DeleteDebt, FileCountReduction, FileEntropy, PartitionSkewExcess,
    SortDisorder, TraitComputer, TraitDirection,
};
pub use trigger::{AfterWriteHook, HookAction, HookMode, PeriodicTrigger};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, AutoCompError>;
