//! The batched, snapshot-oriented observe API.
//!
//! The original connector protocol was a chatty per-table pull: one
//! `list_tables()` round-trip, then one `table_stats()` /
//! `partition_stats()` call per table. At the paper's fleet scale (§6–§7,
//! 21K → 100K tables per cycle) that shape caps the OODA cadence: stats
//! production cannot fan out, nothing is reused between cycles, and every
//! cycle pays the full-fleet cost even when almost nothing changed.
//!
//! This module replaces that protocol with a single entry point,
//! `observe(&ObserveRequest) -> FleetObservation`:
//!
//! * [`FleetObservation`] is a self-contained snapshot of the fleet —
//!   table descriptors plus per-table stats, indexed positionally, with
//!   `Arc<str>`-shared names — that [`to_candidates`] and the pipeline
//!   consume by index.
//! * [`ObserveRequest`] carries the scope strategy and, optionally, the
//!   *prior* observation. When the connector supports a change cursor
//!   ([`ChangeCursor`], fed by after-write hooks and the executor's commit
//!   log), an incremental observe re-fetches stats only for the tables
//!   written since the prior cycle and reuses the prior entries for the
//!   rest — the §5 optimize-after-write mode stops paying full-fleet
//!   observe cost.
//! * [`FleetObserver`] is the small session object that threads the prior
//!   observation and externally-marked dirty tables (§5
//!   [`HookAction::MarkDirty`]) through consecutive cycles.
//!
//! Two driver functions implement the protocol for the two connector
//! tiers: [`pull_observe`] (sequential, the compatibility default every
//! [`LakeConnector`] inherits) and [`batch_observe`] (stats production
//! fans out over scoped threads for [`BatchLakeConnector`]s). Both are
//! position-stable, so for identical lake state every path yields an
//! identical observation — the parity contract the golden tests pin.
//!
//! # Staleness contract of incremental observe
//!
//! A reused entry is byte-for-byte the *prior cycle's* stats. That is
//! exact when a quiet table's stats are a pure function of its own
//! unwritten state, and **bounded staleness** when they embed
//! time-decaying or shared signals: a database quota moved by a sibling
//! table's write, a write-frequency window that decays with the clock,
//! or a snapshot-window scope whose files age out. Connectors whose
//! changelog cannot capture those signals trade that staleness — at most
//! one dirty-cycle old, refreshed whenever the table itself is written
//! or [`FleetObserver::mark_dirty`]/[`FleetObserver::reset`] intervene —
//! for skipping the full-fleet fetch. Drivers that need exact fleetwide
//! signals on a cadence should interleave periodic cold observes
//! (`reset()` before the cycle), or force-dirty the affected tables
//! (e.g. every table of a database whose quota was edited). The
//! staleness suite (`tests/staleness_contract.rs`) pins this contract
//! executable: sibling-write quota moves, write-frequency decay and
//! snapshot-window aging are each exact after a cold observe, frozen
//! under reuse, and reconverge exactly after a reset.
//!
//! # Freshness, and what downstream caches key on
//!
//! Every observation knows, per entry, whether it was **fetched this
//! pass** ([`FleetObservation::is_fresh`]) or reused verbatim, and which
//! snapshot it was incrementally derived from
//! ([`FleetObservation::prior_cursor`]). Together these are the
//! invalidation contract for cross-cycle caches (the pipeline's
//! `CycleCache`): a cached per-table artifact is valid iff it was
//! computed against the observation whose cursor equals `prior_cursor()`
//! *and* the table's entry is not fresh — force-dirtied tables land in
//! the fresh chunk even when the changelog never saw a write, precisely
//! so caches invalidate their rows. See [`crate::pipeline`] and the
//! cache-epoch rules documented there.
//!
//! # Dirty-overwrite assembly (the steady-state fast path)
//!
//! When the prior observation's listing is literally shared
//! (`Arc::ptr_eq` under an unchanged [`LakeConnector::listing_epoch`])
//! and the connector answers the changelog query, the incremental
//! observe skips planning entirely: the new observation **is** the prior
//! one — chunk table cloned wholesale (one `Arc` bump per chunk), entry
//! table shared outright on a quiet pass or clone-and-patched at exactly
//! the dirty positions otherwise. Dirty uids resolve to positions
//! through a uid → position index retained (lazily built, `Arc`-shared)
//! across the observation chain, so per-pass work is O(dirty) lookups +
//! fetches instead of the O(n) merge-scan planning walk. The planning
//! path remains for listing changes, scope changes, and connectors
//! without a listing epoch.
//!
//! # Arena-chunk compaction
//!
//! Each incremental pass adds one fresh chunk and imports the prior
//! chunks its reused entries live in. Without intervention a long-lived
//! observer would retain dead entries forever (a chunk stays alive while
//! *any* of its entries is referenced) and accumulate one sliver chunk
//! per cycle. The planning assembly therefore rewrites imported chunks
//! into a dedicated compaction chunk when fewer than half their entries
//! are still live ([`ARENA_COMPACT_MIN_LIVE`]) or when they hold less
//! than `1/64` of the fleet ([`ARENA_COMPACT_SMALL_DIVISOR`]); the
//! dirty-overwrite fast path instead amortizes — dead slots accumulate
//! until the same bounds would be violated, then one O(n) rebuild folds
//! every reused entry into a single compaction chunk. Consequences,
//! pinned by the soak suite (`tests/incremental_soak.rs`) on both paths:
//! [`FleetObservation::arena_live_density`] never drops below 1/2 and
//! [`FleetObservation::arena_chunk_count`] stays ≤ 2 × 64 + 2 no matter
//! how many cycles run. The compaction chunk is distinct from the fresh
//! chunk, so relocated entries do not read as freshly fetched.
//!
//! # Degradation contract (fault-tolerant observe)
//!
//! Both drivers consume only the fallible `try_*` connector surface
//! ([`ObserveFault`]`{Transient, Permanent}`) and **never fail the
//! round**: every fault degrades along a documented path, recorded on
//! the observation's [`ObserveDegradation`] so the runtime's health
//! state machine and telemetry can surface it. The exact conditions,
//! in the order they are evaluated:
//!
//! * **Listing fault** (`try_list_tables`): transient faults retry with
//!   capped-exponential backoff — the act-phase shape, notional (the
//!   drivers never sleep; the accumulated wait is charged against
//!   [`ObserveRecoveryPolicy::retry_deadline_ms`]). On a permanent
//!   fault or an exhausted budget, the *prior listing is reused*
//!   (`listing_stale_passes` increments; the recorded listing epoch
//!   stays the prior's, so a healed listing re-lists). With no prior to
//!   carry, the pass returns an empty **stalled husk** observation —
//!   the loop is blind and says so (`stalled`).
//! * **Changelog fault** (`try_changes_since`): same retry budget; on
//!   exhaustion/permanent the pass falls back to a **full observe**
//!   (`fallback = `[`FallbackCause::ChangelogFault`]). A mid-stream
//!   `Ok(None)` under a prior that carried a cursor is **retention
//!   overflow** ([`FallbackCause::ChangelogOverflow`]) — no retry
//!   (overflow is definitive), one full observe resynchronizes.
//! * **Per-table stats fault** (`try_table_stats` /
//!   `try_partition_stats` / `try_snapshot_stats`): no in-pass retry.
//!   The *prior entry is spliced* (carry-forward: stale but
//!   self-consistent values), the table enters the **quarantine set**
//!   with capped-exponential backoff *in passes*
//!   ([`ObserveRecoveryPolicy::quarantine_release`]), and once the
//!   backoff expires the table is re-force-dirtied automatically. Each
//!   consecutive faulted re-fetch increments the quarantine attempt
//!   count; past [`ObserveRecoveryPolicy::max_carry_attempts`] the
//!   entry is **retired** to [`TableObservation::Missing`] (the table
//!   leaves the candidate set until it heals) — so a carried entry's
//!   staleness is bounded by the sum of the first `max_carry_attempts`
//!   quarantine backoffs. A successful re-fetch clears the record.
//! * **Vanish is never a fault**: `Ok(None)` from a stats read still
//!   means the table vanished and yields `Missing` exactly as before —
//!   see the connector module docs' vanish-vs-fault split.
//! * **Fallback/reset conditions**: a scope change drops carry and
//!   quarantine state (prior entries have the wrong shape); snapshot
//!   restore resets all degradation bookkeeping (the restored
//!   observation is a clean baseline); [`FleetObserver::reset`] starts
//!   a fresh chain.
//!
//! Reconvergence is the contract the chaos suite
//! (`tests/connector_faults.rs`) pins: after faults heal, quarantined
//! tables are re-fetched as their backoffs expire and cycles become
//! bit-identical to a never-faulted twin's. Degradation metadata is
//! excluded from [`FleetObservation`] equality for the same reason
//! arena chunking is: it describes *how* the snapshot was obtained, not
//! fleet content.
//!
//! [`to_candidates`]: FleetObservation::to_candidates
//! [`HookAction::MarkDirty`]: crate::trigger::HookAction::MarkDirty
//! [`LakeConnector`]: crate::connector::LakeConnector
//! [`BatchLakeConnector`]: crate::connector::BatchLakeConnector
//! [`ObserveFault`]: crate::connector::ObserveFault

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

use crate::candidate::{Candidate, CandidateId, ScopeKind, TableRef};
use crate::connector::{BatchLakeConnector, LakeConnector, ObserveFault};
use crate::par;
use crate::scope::ScopeStrategy;
use crate::stats::CandidateStats;

/// Opaque, connector-scoped position in a lake's change stream.
///
/// A connector that can answer "which tables were written since this
/// point?" hands out cursors from `fleet_cursor()` and interprets them in
/// `changes_since()`. Cursors from different connectors (or different
/// environments) are not comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChangeCursor(pub u64);

/// Parameters of one observe pass.
#[derive(Debug, Clone)]
pub struct ObserveRequest<'a> {
    /// Candidate scoping strategy; decides which stats are fetched per
    /// table (table-, partition- or snapshot-window-scope).
    pub scope: ScopeStrategy,
    /// Prior cycle's observation. When present (with a cursor, matching
    /// scope, and a connector-supported changelog) the observe pass is
    /// incremental: only tables written since the prior cursor — plus
    /// `force_dirty` and newly listed tables — are re-fetched. Reused
    /// entries carry the prior cycle's values verbatim (see the module
    /// docs' staleness contract).
    pub prior: Option<&'a FleetObservation>,
    /// Tables to re-fetch regardless of the changelog (externally known
    /// dirty tables, e.g. §5 after-write hooks in `MarkDirty` mode).
    pub force_dirty: Vec<u64>,
    /// Recovery policy applied when connector reads fault (see the
    /// module docs' degradation contract).
    pub recovery: ObserveRecoveryPolicy,
}

impl<'a> ObserveRequest<'a> {
    /// A full (cold) observe: every table's stats are fetched.
    pub fn fresh(scope: ScopeStrategy) -> Self {
        ObserveRequest {
            scope,
            prior: None,
            force_dirty: Vec::new(),
            recovery: ObserveRecoveryPolicy::default(),
        }
    }

    /// An incremental observe against `prior`. Falls back to a full
    /// fetch when the connector has no changelog, the prior carries no
    /// cursor, or the scope changed.
    pub fn incremental(scope: ScopeStrategy, prior: &'a FleetObservation) -> Self {
        ObserveRequest {
            scope,
            prior: Some(prior),
            force_dirty: Vec::new(),
            recovery: ObserveRecoveryPolicy::default(),
        }
    }

    /// Adds externally known dirty tables (builder style).
    pub fn with_force_dirty(mut self, uids: impl IntoIterator<Item = u64>) -> Self {
        self.force_dirty.extend(uids);
        self
    }

    /// Overrides the fault-recovery policy (builder style).
    pub fn with_recovery(mut self, recovery: ObserveRecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }
}

/// Why an observe pass abandoned the incremental path and fell back to
/// a full fetch. Recorded on [`ObserveDegradation::fallback`] and
/// counted under `autocomp_observe_full_fallback_total{cause=...}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackCause {
    /// The connector supports a changelog (the prior pass obtained a
    /// cursor) but answered `None` mid-stream: the cursor predates its
    /// retention. Definitive — not retried; one full observe
    /// resynchronizes the chain.
    ChangelogOverflow,
    /// The changelog read faulted permanently or exhausted the retry
    /// budget. One full observe resynchronizes the chain.
    ChangelogFault,
}

impl FallbackCause {
    /// Interned telemetry label for this cause.
    pub fn label(&self) -> &'static str {
        match self {
            FallbackCause::ChangelogOverflow => "changelog-overflow",
            FallbackCause::ChangelogFault => "changelog-fault",
        }
    }
}

/// One cause of observe-side degradation, labelled for telemetry and
/// for the runtime health state machine's `Degraded{reasons}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeReason {
    /// At least one entry is a carried-forward stale splice.
    CarryForward,
    /// At least one table sits in the quarantine set.
    Quarantine,
    /// At least one quarantined table exhausted its carry budget and
    /// reads as [`TableObservation::Missing`] until it heals.
    Retired,
    /// The changelog degraded (overflow or fault) and the pass fell
    /// back to a full observe.
    ChangelogFallback,
    /// The listing read faulted transiently and was retried.
    ListingRetry,
    /// The changelog read faulted transiently and was retried.
    ChangelogRetry,
    /// The listing read kept faulting; the prior listing was reused.
    ListingStale,
}

impl DegradeReason {
    /// Interned telemetry label for this reason.
    pub fn label(&self) -> &'static str {
        match self {
            DegradeReason::CarryForward => "carry-forward",
            DegradeReason::Quarantine => "quarantine",
            DegradeReason::Retired => "retired",
            DegradeReason::ChangelogFallback => "changelog-fallback",
            DegradeReason::ListingRetry => "listing-retry",
            DegradeReason::ChangelogRetry => "changelog-retry",
            DegradeReason::ListingStale => "listing-stale",
        }
    }
}

/// Per-source recovery policy of the observe drivers (see the module
/// docs' degradation contract): capped-exponential retry-with-deadline
/// for listing/changelog reads, carry-forward + quarantine for
/// per-table stats reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserveRecoveryPolicy {
    /// Extra attempts after a transient listing/changelog fault.
    pub max_retries: u32,
    /// Base of the capped-exponential retry backoff (the act-phase
    /// shape). Notional: the drivers never sleep — the accumulated wait
    /// is charged against [`retry_deadline_ms`](Self::retry_deadline_ms)
    /// so retry behavior stays deterministic.
    pub retry_backoff_ms: u64,
    /// Ceiling of one retry's backoff.
    pub retry_backoff_cap_ms: u64,
    /// Cumulative notional-backoff budget per read; a retry whose
    /// backoff would exceed it gives up instead.
    pub retry_deadline_ms: u64,
    /// Consecutive faulted fetches a table's stale prior entry may be
    /// carried before the entry is retired to `Missing`.
    pub max_carry_attempts: u32,
    /// Base quarantine backoff, measured in observe *passes* (the
    /// observe path carries no wall clock).
    pub quarantine_backoff_passes: u64,
    /// Ceiling of the quarantine backoff, in passes.
    pub quarantine_backoff_cap_passes: u64,
}

impl Default for ObserveRecoveryPolicy {
    fn default() -> Self {
        ObserveRecoveryPolicy {
            max_retries: 3,
            retry_backoff_ms: 250,
            retry_backoff_cap_ms: 2_000,
            retry_deadline_ms: 4_000,
            max_carry_attempts: 8,
            quarantine_backoff_passes: 1,
            quarantine_backoff_cap_passes: 8,
        }
    }
}

impl ObserveRecoveryPolicy {
    /// Notional backoff before retry `attempt` (1-based): the act-phase
    /// capped-exponential shape.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        self.retry_backoff_ms
            .saturating_mul(1u64 << shift)
            .min(self.retry_backoff_cap_ms)
    }

    /// Pass at which a table quarantined after `attempts` consecutive
    /// faults is re-force-dirtied: capped-exponential in passes, never
    /// sooner than the next pass.
    pub fn quarantine_release(&self, pass: u64, attempts: u32) -> u64 {
        let shift = attempts.saturating_sub(1).min(16);
        let wait = self
            .quarantine_backoff_passes
            .saturating_mul(1u64 << shift)
            .min(self.quarantine_backoff_cap_passes)
            .max(1);
        pass.saturating_add(wait)
    }
}

/// Quarantine record of one table whose stats read faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quarantined {
    /// Consecutive faulted fetch attempts.
    pub attempts: u32,
    /// Pass at which the backoff expires and the table is
    /// re-force-dirtied automatically.
    pub release_pass: u64,
    /// `true` while the entry is the carried-forward stale splice;
    /// `false` once it was retired to `Missing` (carry budget spent, or
    /// nothing to carry).
    pub carried: bool,
}

/// Degradation metadata of one observe pass: what faulted, what was
/// carried, and what the recovery machinery is tracking. Rides on the
/// [`FleetObservation`] but is excluded from its equality — it
/// describes how the snapshot was obtained, not fleet content.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObserveDegradation {
    /// Monotone observe-pass counter along the observation chain.
    /// Quarantine backoffs are measured against it. Resets with a fresh
    /// chain (no prior) and on snapshot restore.
    pub pass: u64,
    /// Quarantined tables by uid: consecutive fault attempts, backoff
    /// release pass, and whether the entry is carried or retired.
    pub quarantine: BTreeMap<u64, Quarantined>,
    /// Stats reads that faulted this pass.
    pub stats_faults: u32,
    /// Transient listing-read retries spent this pass.
    pub listing_retries: u32,
    /// Transient changelog-read retries spent this pass.
    pub changelog_retries: u32,
    /// Consecutive passes the table listing has been reused because the
    /// listing read kept faulting (`0` = listing current).
    pub listing_stale_passes: u32,
    /// Why this pass abandoned the incremental path, if it did.
    pub fallback: Option<FallbackCause>,
    /// The listing read faulted with no prior to carry: this
    /// observation is an empty husk and the loop is blind until the
    /// listing heals.
    pub stalled: bool,
}

impl ObserveDegradation {
    /// Entries currently carried forward (stale splices).
    pub fn carried_entries(&self) -> usize {
        self.quarantine.values().filter(|q| q.carried).count()
    }

    /// Entries retired to `Missing` after exhausting their carry budget.
    pub fn retired_entries(&self) -> usize {
        self.quarantine.values().filter(|q| !q.carried).count()
    }

    /// Number of quarantined tables.
    pub fn quarantine_depth(&self) -> usize {
        self.quarantine.len()
    }

    /// Whether this pass ran (or is still running) degraded in any way.
    pub fn is_degraded(&self) -> bool {
        self.stalled || !self.reasons().is_empty()
    }

    /// Active degradation reasons, in a fixed deterministic order.
    pub fn reasons(&self) -> Vec<DegradeReason> {
        let mut out = Vec::new();
        if self.carried_entries() > 0 {
            out.push(DegradeReason::CarryForward);
        }
        if !self.quarantine.is_empty() {
            out.push(DegradeReason::Quarantine);
        }
        if self.retired_entries() > 0 {
            out.push(DegradeReason::Retired);
        }
        if self.fallback.is_some() {
            out.push(DegradeReason::ChangelogFallback);
        }
        if self.listing_retries > 0 {
            out.push(DegradeReason::ListingRetry);
        }
        if self.changelog_retries > 0 {
            out.push(DegradeReason::ChangelogRetry);
        }
        if self.listing_stale_passes > 0 {
            out.push(DegradeReason::ListingStale);
        }
        out
    }

    /// Uids whose quarantine backoff has expired by `pass` (due for a
    /// forced re-fetch).
    pub fn due_for_retry(&self, pass: u64) -> Vec<u64> {
        self.quarantine
            .iter()
            .filter(|(_, q)| q.release_pass <= pass)
            .map(|(uid, _)| *uid)
            .collect()
    }
}

/// Stats observed for one table, shaped by the scope strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum TableObservation {
    /// The table vanished mid-observe or yielded no stats in scope.
    Missing,
    /// Single-candidate stats (table scope, or snapshot-window scope).
    Table(CandidateStats),
    /// Per-partition stats, keyed by the connector's opaque labels.
    Partitions(Vec<(String, CandidateStats)>),
}

/// Index of one observation entry into the arena: `(chunk, offset)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntryRef {
    chunk: u32,
    offset: u32,
}

/// A batched snapshot of the observable fleet: table descriptors plus
/// per-table stats in positional (index-aligned) form.
///
/// Observations are self-contained values: they can be held across
/// cycles, diffed against a change cursor, and consumed repeatedly by
/// index without further connector round-trips. Stats live in
/// `Arc`-shared arena chunks (one chunk per observe pass) addressed by
/// `(chunk, offset)` entries: a cold observe allocates exactly one chunk
/// for the whole fleet, and an incremental observe reuses prior entries
/// by importing their chunks — one refcount bump per *chunk*, an 8-byte
/// entry copy per table, and zero stats clones.
#[derive(Debug, Clone)]
pub struct FleetObservation {
    scope: ScopeStrategy,
    tables: Arc<Vec<TableRef>>,
    /// Connector listing epoch the table list was captured under, if the
    /// connector reports one ([`LakeConnector::listing_epoch`]): lets the
    /// next incremental observe share this listing (one `Arc` bump)
    /// instead of re-materializing 100K descriptors per cycle.
    listing_epoch: Option<u64>,
    /// Per-table entry refs, `Arc`-shared so the dirty-overwrite fast
    /// path can either share them outright (quiet cycle: one refcount
    /// bump) or clone-and-patch only the dirty positions.
    entries: Arc<Vec<EntryRef>>,
    chunks: Vec<Arc<Vec<TableObservation>>>,
    /// Lazily built uid → listing-position index, shared across the
    /// observation chain while the listing itself is shared. This is the
    /// retained structure behind the dirty-overwrite assembly: mapping a
    /// changelog's dirty uids to positions costs O(dirty) lookups
    /// instead of an O(n) planning walk. Also serves act-phase retry
    /// re-scoring ([`Self::position_of_uid`]).
    uid_index: Arc<OnceLock<HashMap<u64, u32>>>,
    cursor: Option<ChangeCursor>,
    /// Chunk holding the entries fetched from the connector *this pass*
    /// (`None` when an incremental pass fetched nothing). Everything else
    /// was reused verbatim from the prior observation — the invariant
    /// downstream caches key on (see [`Self::is_fresh`]).
    fresh_chunk: Option<u32>,
    /// Cursor of the prior observation this one was derived from
    /// incrementally; `None` for cold observations. Lets per-cycle caches
    /// verify they are splicing against the exact snapshot their rows
    /// were computed from.
    prior_cursor: Option<ChangeCursor>,
    fetched: usize,
    reused: usize,
    /// Fault/degradation metadata of the pass that produced this
    /// observation (see the module docs' degradation contract). Not part
    /// of logical equality.
    degradation: ObserveDegradation,
}

/// An imported arena chunk is rewritten (its live entries cloned into a
/// dedicated compaction chunk) once fewer than half its entries are still
/// referenced — long-lived incremental observers otherwise retain dead
/// entries until every table of a chunk happens to be re-fetched.
pub const ARENA_COMPACT_MIN_LIVE: (usize, usize) = (1, 2);

/// Imported chunks smaller than `fleet / ARENA_COMPACT_SMALL_DIVISOR`
/// entries are folded into the compaction chunk regardless of density, so
/// the per-cycle dirty-set chunks cannot accumulate without bound.
/// Together with the density rule this caps the chunk count at
/// `2 × ARENA_COMPACT_SMALL_DIVISOR + 2`.
pub const ARENA_COMPACT_SMALL_DIVISOR: usize = 64;

impl PartialEq for FleetObservation {
    /// Logical equality: same scope, cursor, tables and per-table
    /// entries. Arena chunking (how entries are grouped) is
    /// representation, not content, and does not participate.
    fn eq(&self, other: &Self) -> bool {
        self.scope == other.scope
            && self.cursor == other.cursor
            && self.tables == other.tables
            && self.entries.len() == other.entries.len()
            && (0..self.entries.len()).all(|i| self.entry(i) == other.entry(i))
    }
}

impl FleetObservation {
    /// Builds an observation from parallel `tables`/`stats` vectors (one
    /// arena chunk). Exposed for connectors that produce observations
    /// directly (e.g. from a native batch-stats RPC) instead of via the
    /// drivers.
    ///
    /// # Panics
    /// Panics if the vectors disagree in length.
    pub fn from_parts(
        scope: ScopeStrategy,
        tables: Vec<TableRef>,
        stats: Vec<TableObservation>,
        cursor: Option<ChangeCursor>,
    ) -> Self {
        Self::assemble_cold(scope, Arc::new(tables), None, stats, cursor)
    }

    /// Cold assembly over an already-shared table listing (the drivers'
    /// path: the listing may be reused from the prior observation when
    /// the connector's listing epoch is unchanged).
    fn assemble_cold(
        scope: ScopeStrategy,
        tables: Arc<Vec<TableRef>>,
        listing_epoch: Option<u64>,
        stats: Vec<TableObservation>,
        cursor: Option<ChangeCursor>,
    ) -> Self {
        assert_eq!(tables.len(), stats.len(), "tables/stats length mismatch");
        let fetched = tables.len();
        FleetObservation {
            scope,
            entries: Arc::new(
                (0..tables.len() as u32)
                    .map(|offset| EntryRef { chunk: 0, offset })
                    .collect(),
            ),
            tables,
            listing_epoch,
            chunks: vec![Arc::new(stats)],
            uid_index: Arc::new(OnceLock::new()),
            cursor,
            fresh_chunk: Some(0),
            prior_cursor: None,
            fetched,
            reused: 0,
            degradation: ObserveDegradation::default(),
        }
    }

    /// Lazily built uid → listing-position index, shared (one `Arc` bump)
    /// across consecutive observations over the same listing.
    fn uid_index(&self) -> &HashMap<u64, u32> {
        self.uid_index.get_or_init(|| {
            self.tables
                .iter()
                .enumerate()
                .map(|(i, t)| (t.table_uid, i as u32))
                .collect()
        })
    }

    /// Listing position of `table_uid`, if the table is currently listed.
    /// Backed by the retained uid index (built once per listing, then
    /// shared across the incremental observation chain).
    pub fn position_of_uid(&self, table_uid: u64) -> Option<usize> {
        self.uid_index().get(&table_uid).map(|p| *p as usize)
    }

    /// Whether this observation shares its entry table with `other`
    /// (a single `Arc` bump, the quiet-cycle fast path of the
    /// dirty-overwrite assembly). Diagnostic accessor for tests pinning
    /// that a quiet incremental observe does O(1) assembly work.
    pub fn entries_shared_with(&self, other: &FleetObservation) -> bool {
        Arc::ptr_eq(&self.entries, &other.entries)
    }

    /// Shared handle on the table listing (for listing reuse across
    /// incremental observes, and for the cycle cache's descriptor
    /// verification).
    pub(crate) fn tables_shared(&self) -> Arc<Vec<TableRef>> {
        Arc::clone(&self.tables)
    }

    /// Scope strategy the stats were fetched under.
    pub fn scope(&self) -> ScopeStrategy {
        self.scope
    }

    /// Change cursor as of this observation, if the connector supports
    /// one. Feed it back (via [`ObserveRequest::incremental`]) to observe
    /// only the delta next cycle.
    pub fn cursor(&self) -> Option<ChangeCursor> {
        self.cursor
    }

    /// Number of observed tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Observed table descriptors, in connector order.
    pub fn tables(&self) -> &[TableRef] {
        &self.tables
    }

    /// Connector listing epoch the table list was captured under, if any.
    pub fn listing_epoch(&self) -> Option<u64> {
        self.listing_epoch
    }

    /// Stats entry for the table at `index`.
    pub fn entry(&self, index: usize) -> &TableObservation {
        let e = self.entries[index];
        &self.chunks[e.chunk as usize][e.offset as usize]
    }

    /// Tables whose stats were fetched from the connector this pass.
    pub fn fetched_tables(&self) -> usize {
        self.fetched
    }

    /// Tables whose stats were reused from the prior observation.
    pub fn reused_tables(&self) -> usize {
        self.reused
    }

    /// Whether the entry at `index` was fetched from the connector *this
    /// pass* (as opposed to reused verbatim from the prior observation).
    /// Cold observations are fresh everywhere; incremental observations
    /// are fresh exactly for the dirty set — changelog hits, `force_dirty`
    /// tables (even when the changelog missed them), and newly listed
    /// tables. Downstream per-table caches must invalidate on fresh
    /// entries: a fresh entry's stats may differ from the prior cycle's.
    pub fn is_fresh(&self, index: usize) -> bool {
        self.fresh_chunk
            .is_some_and(|fc| self.entries[index].chunk == fc)
    }

    /// Cursor of the prior observation this one was incrementally derived
    /// from, or `None` for cold observations. A cache keyed on the cursor
    /// chain splices only when this matches the cursor of the observation
    /// its rows were computed against.
    pub fn prior_cursor(&self) -> Option<ChangeCursor> {
        self.prior_cursor
    }

    /// Degradation metadata of the pass that produced this observation:
    /// carried/quarantined tables, retries spent, fallback cause,
    /// listing staleness. Empty on a fault-free pass.
    pub fn degradation(&self) -> &ObserveDegradation {
        &self.degradation
    }

    /// Number of arena chunks currently backing the observation.
    pub fn arena_chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total entry slots across all arena chunks (live + dead).
    pub fn arena_slot_count(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Fraction of arena slots still referenced by an entry. Arena
    /// compaction keeps this at or above 1/2 (the
    /// [`ARENA_COMPACT_MIN_LIVE`] threshold): surviving imported chunks
    /// are at least half live, and the compaction + fresh chunks are fully
    /// live by construction.
    pub fn arena_live_density(&self) -> f64 {
        let slots = self.arena_slot_count();
        if slots == 0 {
            1.0
        } else {
            self.entries.len() as f64 / slots as f64
        }
    }

    /// Number of candidates [`to_candidates`](Self::to_candidates) will
    /// produce.
    pub fn candidate_count(&self) -> usize {
        (0..self.entries.len())
            .map(|i| match self.entry(i) {
                TableObservation::Missing => 0,
                TableObservation::Table(_) => 1,
                TableObservation::Partitions(parts) => parts.len(),
            })
            .sum()
    }

    pub(crate) fn single_scope(&self) -> ScopeKind {
        match self.scope {
            ScopeStrategy::Snapshot { .. } => ScopeKind::Snapshot,
            _ => ScopeKind::Table,
        }
    }

    /// Materializes the candidates of this observation, in deterministic
    /// order: tables in connector order, partitions in connector-reported
    /// order (NFR2) — exactly the output of the per-table pull path over
    /// the same lake state.
    pub fn to_candidates(&self) -> Vec<Candidate> {
        let single_scope = self.single_scope();
        let mut out = Vec::with_capacity(self.candidate_count());
        for (index, table) in self.tables.iter().enumerate() {
            match self.entry(index) {
                TableObservation::Missing => {}
                TableObservation::Table(stats) => {
                    let id = CandidateId {
                        table_uid: table.table_uid,
                        scope: single_scope,
                        partition: None,
                    };
                    out.push(Candidate::new(id, table, stats.clone()));
                }
                TableObservation::Partitions(parts) => {
                    for (label, stats) in parts {
                        out.push(Candidate::new(
                            CandidateId::partition(table.table_uid, label.clone()),
                            table,
                            stats.clone(),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Consuming variant of [`to_candidates`](Self::to_candidates):
    /// uniquely held arena chunks (every cold observation's) move their
    /// stats and table names into the candidates instead of cloning them
    /// — the zero-copy path for cycles that do not retain the
    /// observation. Output is identical to `to_candidates`.
    pub fn into_candidates(mut self) -> Vec<Candidate> {
        let single_scope = self.single_scope();
        // Fast path — a cold observation uniquely holding one identity
        // chunk and its own table listing (the overwhelmingly common
        // non-retained case): drain the chunk in step with the tables, no
        // per-entry indirection and no intermediate re-collection.
        if self.chunks.len() == 1
            && Arc::strong_count(&self.chunks[0]) == 1
            && Arc::strong_count(&self.tables) == 1
            && self
                .entries
                .iter()
                .enumerate()
                .all(|(i, e)| e.chunk == 0 && e.offset as usize == i)
        {
            let chunk = Arc::try_unwrap(self.chunks.pop().expect("one chunk"))
                .unwrap_or_else(|_| unreachable!("strong count was 1"));
            let tables =
                Arc::try_unwrap(self.tables).unwrap_or_else(|_| unreachable!("strong count was 1"));
            let mut out = Vec::with_capacity(tables.len());
            for (table, stat) in tables.into_iter().zip(chunk) {
                push_candidate(&mut out, table, stat, single_scope);
            }
            return out;
        }
        self.into_candidates_general(single_scope)
    }

    /// General consuming path: unwrap each chunk once — owned chunks
    /// yield entries by move, still-shared chunks (alive in a retained
    /// prior) by clone.
    fn into_candidates_general(self, single_scope: ScopeKind) -> Vec<Candidate> {
        enum Unwrapped {
            Owned(Vec<Option<TableObservation>>),
            Shared(Arc<Vec<TableObservation>>),
        }
        let mut chunks: Vec<Unwrapped> = self
            .chunks
            .into_iter()
            .map(|chunk| match Arc::try_unwrap(chunk) {
                Ok(owned) => Unwrapped::Owned(owned.into_iter().map(Some).collect()),
                Err(shared) => Unwrapped::Shared(shared),
            })
            .collect();
        let mut out = Vec::new();
        let tables: Vec<TableRef> = match Arc::try_unwrap(self.tables) {
            Ok(owned) => owned,
            Err(shared) => shared.as_ref().clone(),
        };
        for (table, e) in tables.into_iter().zip(self.entries.iter().copied()) {
            let stat = match &mut chunks[e.chunk as usize] {
                Unwrapped::Owned(slots) => slots[e.offset as usize]
                    .take()
                    .expect("each entry referenced once"),
                Unwrapped::Shared(chunk) => chunk[e.offset as usize].clone(),
            };
            push_candidate(&mut out, table, stat, single_scope);
        }
        out
    }
}

impl FleetObservation {
    /// Writes the observation into a snapshot: scope, cursor keys, the
    /// table listing (database names interned) and every entry's stats
    /// in positional order. Arena chunking is representation, not
    /// content, so entries are flattened — the restored observation
    /// holds one chunk.
    pub(crate) fn snapshot_write(&self, enc: &mut lakesim_storage::Encoder) {
        use crate::durability::{put_scope, put_stats};
        put_scope(enc, self.scope);
        enc.put_opt_u64(self.listing_epoch);
        enc.put_opt_u64(self.cursor.map(|c| c.0));
        // Distinct database names once, then per-table indexes.
        let mut databases: Vec<&str> = Vec::new();
        let mut db_index: HashMap<&str, u32> = HashMap::new();
        for table in self.tables.iter() {
            let next = databases.len() as u32;
            db_index.entry(&table.database).or_insert_with(|| {
                databases.push(&table.database);
                next
            });
        }
        enc.put_u64(databases.len() as u64);
        for db in &databases {
            enc.put_str(db);
        }
        enc.put_u64(self.tables.len() as u64);
        for table in self.tables.iter() {
            enc.put_u64(table.table_uid);
            enc.put_u32(db_index[&*table.database]);
            // The three descriptor booleans pack into one flags byte so
            // the fixed head of a table record is a single 13-byte read
            // on restore.
            enc.put_u8(
                table.partitioned as u8
                    | (table.compaction_enabled as u8) << 1
                    | (table.is_intermediate as u8) << 2,
            );
            enc.put_str(&table.name);
        }
        for index in 0..self.tables.len() {
            match self.entry(index) {
                TableObservation::Missing => enc.put_u8(0),
                TableObservation::Table(stats) => {
                    enc.put_u8(1);
                    put_stats(enc, stats);
                }
                TableObservation::Partitions(parts) => {
                    enc.put_u8(2);
                    enc.put_u64(parts.len() as u64);
                    for (label, stats) in parts {
                        enc.put_str(label);
                        put_stats(enc, stats);
                    }
                }
            }
        }
    }

    /// Restores an observation from a snapshot. The result is marked
    /// nowhere-fresh (`fresh_chunk = None`, `prior_cursor = None`): its
    /// entries are reused state, not a new fetch, and the *next*
    /// incremental observe derives freshness from the changelog against
    /// the restored cursor exactly as it would have against the
    /// original.
    pub(crate) fn snapshot_restore(
        dec: &mut lakesim_storage::Decoder<'_>,
    ) -> Result<FleetObservation, lakesim_storage::CodecError> {
        use crate::durability::{take_scope, take_stats};
        use lakesim_storage::CodecError;
        let scope = take_scope(dec)?;
        let listing_epoch = dec.take_opt_u64("listing epoch")?;
        let cursor = dec.take_opt_u64("observation cursor")?.map(ChangeCursor);
        let db_count = dec.take_len(8, "database table")?;
        let mut databases: Vec<Arc<str>> = Vec::with_capacity(db_count);
        for _ in 0..db_count {
            databases.push(Arc::from(dec.take_str("database name")?));
        }
        // The fleet-scale loops below preallocate exactly and decode
        // each record's fixed head with one bounds check — restore cost
        // is what the warm-vs-cold tradeoff hinges on, so the decode
        // side is kept at memcpy-like cost where the layout allows.
        let table_count = dec.take_len(14, "table listing")?;
        let mut tables = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            let head = dec.take_raw(13, "table record")?;
            let table_uid = u64::from_le_bytes(head[..8].try_into().unwrap());
            let db = u32::from_le_bytes(head[8..12].try_into().unwrap()) as usize;
            let flags = head[12];
            if flags > 0b111 {
                return Err(CodecError::Invalid("table flags"));
            }
            let database = databases
                .get(db)
                .cloned()
                .ok_or(CodecError::Invalid("table database index out of bounds"))?;
            // Table names are near-unique across a fleet, so they are
            // allocated directly; interning them (as the listing path
            // does for databases) would cost a map lookup per table
            // for no sharing. Database names share through the
            // snapshot's own distinct-name table above.
            let name = Arc::from(dec.take_str("table name")?);
            tables.push(TableRef {
                table_uid,
                database,
                name,
                partitioned: flags & 1 != 0,
                compaction_enabled: flags & 2 != 0,
                is_intermediate: flags & 4 != 0,
            });
        }
        let mut stats = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            stats.push(match dec.take_u8("entry tag")? {
                0 => TableObservation::Missing,
                1 => TableObservation::Table(take_stats(dec)?),
                2 => {
                    let parts = (0..dec.take_len(8, "partition entries")?)
                        .map(|_| {
                            Ok((
                                dec.take_str("partition label")?.to_string(),
                                take_stats(dec)?,
                            ))
                        })
                        .collect::<Result<Vec<_>, CodecError>>()?;
                    TableObservation::Partitions(parts)
                }
                _ => return Err(CodecError::Invalid("entry tag")),
            });
        }
        let reused = tables.len();
        Ok(FleetObservation {
            scope,
            entries: Arc::new(
                (0..reused as u32)
                    .map(|offset| EntryRef { chunk: 0, offset })
                    .collect(),
            ),
            tables: Arc::new(tables),
            listing_epoch,
            chunks: vec![Arc::new(stats)],
            uid_index: Arc::new(OnceLock::new()),
            cursor,
            fresh_chunk: None,
            prior_cursor: None,
            fetched: 0,
            reused,
            // A restored observation is a clean baseline: quarantine and
            // carry bookkeeping do not survive a restore.
            degradation: ObserveDegradation::default(),
        })
    }
}

/// Appends the candidate(s) of one consumed `(table, stat)` pair,
/// moving the table descriptor and stats payload.
fn push_candidate(
    out: &mut Vec<Candidate>,
    table: TableRef,
    stat: TableObservation,
    single_scope: ScopeKind,
) {
    match stat {
        TableObservation::Missing => {}
        TableObservation::Table(stats) => {
            let id = CandidateId {
                table_uid: table.table_uid,
                scope: single_scope,
                partition: None,
            };
            out.push(Candidate::from_table(id, table, stats));
        }
        TableObservation::Partitions(parts) => {
            for (label, stats) in parts {
                out.push(Candidate::new(
                    CandidateId::partition(table.table_uid, label),
                    &table,
                    stats,
                ));
            }
        }
    }
}

/// Threads incremental observe state — the prior observation plus
/// externally marked dirty tables — through consecutive cycles.
#[derive(Debug, Default)]
pub struct FleetObserver {
    prior: Option<FleetObservation>,
    pending_dirty: BTreeSet<u64>,
    recovery: ObserveRecoveryPolicy,
}

impl FleetObserver {
    /// A fresh observer; its first observe is always a full fetch.
    pub fn new() -> Self {
        FleetObserver::default()
    }

    /// Overrides the fault-recovery policy applied to every observe this
    /// observer drives.
    pub fn set_recovery(&mut self, recovery: ObserveRecoveryPolicy) {
        self.recovery = recovery;
    }

    /// Marks a table dirty so the next observe re-fetches its stats even
    /// if the connector's changelog missed the write — the landing point
    /// for §5 [`HookAction::MarkDirty`](crate::trigger::HookAction).
    pub fn mark_dirty(&mut self, table_uid: u64) {
        self.pending_dirty.insert(table_uid);
    }

    /// Drops the retained observation; the next observe is full.
    pub fn reset(&mut self) {
        self.prior = None;
        self.pending_dirty.clear();
    }

    /// The most recent observation, if any.
    pub fn last(&self) -> Option<&FleetObservation> {
        self.prior.as_ref()
    }

    /// Observes through a single-threaded connector, incrementally when
    /// possible, and retains the result for the next cycle.
    pub fn observe(
        &mut self,
        connector: &dyn LakeConnector,
        scope: ScopeStrategy,
    ) -> &FleetObservation {
        let observation = {
            let request = self.request(scope);
            connector.observe(&request)
        };
        self.retain(observation)
    }

    /// Observes through a batch-tier connector (parallel stats fan-out),
    /// incrementally when possible, and retains the result.
    pub fn observe_batch(
        &mut self,
        connector: &dyn BatchLakeConnector,
        scope: ScopeStrategy,
    ) -> &FleetObservation {
        let observation = {
            let request = self.request(scope);
            connector.observe(&request)
        };
        self.retain(observation)
    }

    fn request(&self, scope: ScopeStrategy) -> ObserveRequest<'_> {
        ObserveRequest {
            scope,
            prior: self.prior.as_ref(),
            force_dirty: self.pending_dirty.iter().copied().collect(),
            recovery: self.recovery,
        }
    }

    fn retain(&mut self, observation: FleetObservation) -> &FleetObservation {
        self.pending_dirty.clear();
        self.prior = Some(observation);
        self.prior.as_ref().expect("just set")
    }

    /// Tables marked dirty but not yet folded into an observe — captured
    /// by snapshots so a restore re-fetches exactly what a crash-free run
    /// would have.
    pub(crate) fn pending_dirty(&self) -> &BTreeSet<u64> {
        &self.pending_dirty
    }

    /// Installs a snapshot-restored observation (and its not-yet-consumed
    /// dirty marks) as the prior for the next incremental observe.
    pub(crate) fn restore_prior(&mut self, observation: FleetObservation, dirty: BTreeSet<u64>) {
        self.prior = Some(observation);
        self.pending_dirty = dirty;
    }
}

/// Shares `Arc<str>` name allocations across repeated interning — e.g.
/// the database names of a 100K-table fleet listed every cycle collapse
/// to one allocation per database instead of one per table.
#[derive(Debug, Default)]
pub struct NameInterner {
    map: BTreeMap<String, Arc<str>>,
}

impl NameInterner {
    /// A fresh, empty interner.
    pub fn new() -> Self {
        NameInterner::default()
    }

    /// Returns the shared `Arc<str>` for `name`, allocating on first use.
    pub fn get_or_intern(&mut self, name: &str) -> Arc<str> {
        if let Some(shared) = self.map.get(name) {
            return shared.clone();
        }
        let shared: Arc<str> = Arc::from(name);
        self.map.insert(name.to_string(), shared.clone());
        shared
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// ---------------------------------------------------------------------
// Observe drivers.
// ---------------------------------------------------------------------

/// Per-table fetch-or-reuse decision of an incremental observe plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchPlan {
    /// Fetch fresh stats from the connector.
    Fetch,
    /// Reuse the prior observation's entry at this index.
    Reuse(usize),
}

/// Unifies the two connector tiers' fallible stats methods for the
/// shared drivers. The drivers consume only this `try_*` surface;
/// infallible connectors flow through the trait defaults' `Ok`
/// wrapping at zero behavioral cost.
trait StatsSource {
    fn try_table_stats(&self, table_uid: u64) -> Result<Option<CandidateStats>, ObserveFault>;
    #[allow(clippy::type_complexity)]
    fn try_partition_stats(
        &self,
        table_uid: u64,
    ) -> Result<Vec<(String, CandidateStats)>, ObserveFault>;
    fn try_snapshot_stats(
        &self,
        table_uid: u64,
        window_ms: u64,
    ) -> Result<Option<CandidateStats>, ObserveFault>;
}

struct SeqSource<'a, C: ?Sized>(&'a C);

impl<C: LakeConnector + ?Sized> StatsSource for SeqSource<'_, C> {
    fn try_table_stats(&self, table_uid: u64) -> Result<Option<CandidateStats>, ObserveFault> {
        self.0.try_table_stats(table_uid)
    }
    fn try_partition_stats(
        &self,
        table_uid: u64,
    ) -> Result<Vec<(String, CandidateStats)>, ObserveFault> {
        self.0.try_partition_stats(table_uid)
    }
    fn try_snapshot_stats(
        &self,
        table_uid: u64,
        window_ms: u64,
    ) -> Result<Option<CandidateStats>, ObserveFault> {
        self.0.try_snapshot_stats(table_uid, window_ms)
    }
}

struct BatchSource<'a, C: ?Sized>(&'a C);

impl<C: BatchLakeConnector + ?Sized> StatsSource for BatchSource<'_, C> {
    fn try_table_stats(&self, table_uid: u64) -> Result<Option<CandidateStats>, ObserveFault> {
        self.0.try_table_stats(table_uid)
    }
    fn try_partition_stats(
        &self,
        table_uid: u64,
    ) -> Result<Vec<(String, CandidateStats)>, ObserveFault> {
        self.0.try_partition_stats(table_uid)
    }
    fn try_snapshot_stats(
        &self,
        table_uid: u64,
        window_ms: u64,
    ) -> Result<Option<CandidateStats>, ObserveFault> {
        self.0.try_snapshot_stats(table_uid, window_ms)
    }
}

/// Fetches one table's stats under `scope` — the exact per-scope calls of
/// the historical per-table pull protocol, preserved verbatim so batched
/// observations stay bit-identical to it. `Ok(None)` from a stats read
/// still means *vanished* and yields `Missing`; only `Err` (the read
/// failed) propagates for the carry-forward machinery to absorb.
fn fetch_one(
    source: &impl StatsSource,
    table: &TableRef,
    scope: ScopeStrategy,
) -> Result<TableObservation, ObserveFault> {
    Ok(match scope {
        ScopeStrategy::Table => match source.try_table_stats(table.table_uid)? {
            Some(stats) => TableObservation::Table(stats),
            None => TableObservation::Missing,
        },
        ScopeStrategy::Partition => {
            TableObservation::Partitions(source.try_partition_stats(table.table_uid)?)
        }
        ScopeStrategy::Hybrid => {
            if table.partitioned {
                TableObservation::Partitions(source.try_partition_stats(table.table_uid)?)
            } else {
                match source.try_table_stats(table.table_uid)? {
                    Some(stats) => TableObservation::Table(stats),
                    None => TableObservation::Missing,
                }
            }
        }
        ScopeStrategy::Snapshot { window_ms } => {
            match source.try_snapshot_stats(table.table_uid, window_ms)? {
                Some(stats) => TableObservation::Table(stats),
                None => TableObservation::Missing,
            }
        }
    })
}

/// Gate of the dirty-overwrite fast path: engaged only when the prior
/// observation's listing is literally shared (`Arc::ptr_eq` — unchanged
/// listing epoch), the scope matches, and the changelog answered
/// (`changes` resolved by the driver, retries already spent). Returns
/// the combined dirty uid set (changelog hits plus `force_dirty`);
/// `None` falls back to the planning path.
fn fast_path_dirty(
    tables: &Arc<Vec<TableRef>>,
    request: &ObserveRequest<'_>,
    changes: Option<&Vec<u64>>,
) -> Option<Vec<u64>> {
    let prior = request.prior?;
    if prior.scope() != request.scope || !Arc::ptr_eq(tables, &prior.tables) {
        return None;
    }
    prior.cursor()?;
    let mut dirty = changes?.clone();
    dirty.extend(request.force_dirty.iter().copied());
    Some(dirty)
}

/// Plans the fetch-or-reuse decision per listed table. Returns a plan
/// only when an incremental pass is possible; `None` means full fetch.
///
/// The common steady state — an unchanged table listing — is planned with
/// a positional uid comparison; a uid→index map over the prior is built
/// lazily only once a position mismatches (tables created, dropped, or
/// reordered), so the planner costs O(n) when nothing moved.
fn make_plans(
    tables: &[TableRef],
    request: &ObserveRequest<'_>,
    changes: Option<&Vec<u64>>,
) -> Option<Vec<FetchPlan>> {
    let prior = request.prior?;
    if prior.scope() != request.scope {
        return None;
    }
    prior.cursor()?;
    let mut dirty: Vec<u64> = changes?.clone();
    dirty.extend(request.force_dirty.iter().copied());
    dirty.sort_unstable();
    dirty.dedup();
    let prior_tables = prior.tables();
    let mut fallback_index: Option<BTreeMap<u64, usize>> = None;
    // Dirty-set membership via a merge scan: connectors list tables in a
    // stable order that is almost always uid-ascending, so one pointer
    // into the sorted dirty set amortizes to O(n + d); any out-of-order
    // uid falls back to a binary search for just that table.
    let mut dirty_ptr = 0usize;
    let mut last_uid = 0u64;
    let mut is_dirty = move |uid: u64| -> bool {
        if uid >= last_uid {
            last_uid = uid;
            while dirty_ptr < dirty.len() && dirty[dirty_ptr] < uid {
                dirty_ptr += 1;
            }
            dirty_ptr < dirty.len() && dirty[dirty_ptr] == uid
        } else {
            dirty.binary_search(&uid).is_ok()
        }
    };
    Some(
        tables
            .iter()
            .enumerate()
            .map(|(pos, t)| {
                if is_dirty(t.table_uid) {
                    return FetchPlan::Fetch;
                }
                if prior_tables
                    .get(pos)
                    .is_some_and(|p| p.table_uid == t.table_uid)
                {
                    return FetchPlan::Reuse(pos);
                }
                let index = fallback_index.get_or_insert_with(|| {
                    prior_tables
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (p.table_uid, i))
                        .collect()
                });
                match index.get(&t.table_uid) {
                    Some(idx) => FetchPlan::Reuse(*idx),
                    None => FetchPlan::Fetch,
                }
            })
            .collect(),
    )
}

/// Assembles an incremental observation: freshly fetched entries land in
/// one new arena chunk; reused entries import their prior chunk (one
/// `Arc` bump per chunk) and copy the 8-byte entry ref. Imported chunks
/// that fell below the live-density threshold (or shrank to a sliver of
/// the fleet) are compacted: their live entries are cloned into a
/// dedicated compaction chunk so the old chunk — and the dead entries it
/// retains — can be freed once the prior observation is dropped.
fn assemble_incremental(
    scope: ScopeStrategy,
    tables: Arc<Vec<TableRef>>,
    listing_epoch: Option<u64>,
    plans: &[FetchPlan],
    fetched: Vec<TableObservation>,
    prior: &FleetObservation,
    cursor: Option<ChangeCursor>,
) -> FleetObservation {
    const FRESH: u32 = u32::MAX;
    // `fetched` is compact (one entry per Fetch plan, in plan order):
    // building a fleet-sized Option vector just to hold a 1% dirty set
    // was measurable memory traffic at 100K tables.
    let mut fresh: Vec<TableObservation> = fetched;
    debug_assert_eq!(
        fresh.len(),
        plans
            .iter()
            .filter(|p| matches!(p, FetchPlan::Fetch))
            .count(),
        "one fetched stat per fetch plan"
    );
    let mut entries: Vec<EntryRef> = Vec::with_capacity(tables.len());
    let mut chunks: Vec<Arc<Vec<TableObservation>>> = Vec::new();
    // prior chunk index → imported chunk index (lazily assigned).
    let mut imported: Vec<u32> = vec![FRESH; prior.chunks.len()];
    let mut reused = 0usize;
    let mut next_fresh = 0u32;
    for plan in plans {
        match plan {
            FetchPlan::Fetch => {
                entries.push(EntryRef {
                    chunk: FRESH,
                    offset: next_fresh,
                });
                next_fresh += 1;
            }
            FetchPlan::Reuse(idx) => {
                reused += 1;
                let prior_entry = prior.entries[*idx];
                let slot = &mut imported[prior_entry.chunk as usize];
                if *slot == FRESH {
                    *slot = chunks.len() as u32;
                    chunks.push(prior.chunks[prior_entry.chunk as usize].clone());
                }
                entries.push(EntryRef {
                    chunk: *slot,
                    offset: prior_entry.offset,
                });
            }
        }
    }

    // Arena compaction over the imported chunks. The compaction chunk is
    // distinct from the fresh chunk so reused-but-relocated entries do not
    // read as freshly fetched downstream.
    let total = entries.len();
    let mut live = vec![0usize; chunks.len()];
    for e in &entries {
        if e.chunk != FRESH {
            live[e.chunk as usize] += 1;
        }
    }
    let (live_num, live_den) = ARENA_COMPACT_MIN_LIVE;
    let compact_chunk: Vec<bool> = chunks
        .iter()
        .zip(&live)
        .map(|(c, l)| {
            l * live_den < c.len() * live_num || c.len() * ARENA_COMPACT_SMALL_DIVISOR < total
        })
        .collect();
    if compact_chunk.iter().any(|c| *c) {
        let mut survivors: Vec<Arc<Vec<TableObservation>>> = Vec::new();
        let mut new_index: Vec<u32> = vec![FRESH; chunks.len()];
        for (i, chunk) in chunks.iter().enumerate() {
            if !compact_chunk[i] {
                new_index[i] = survivors.len() as u32;
                survivors.push(chunk.clone());
            }
        }
        let compact_index = survivors.len() as u32;
        let mut compacted: Vec<TableObservation> = Vec::new();
        for e in entries.iter_mut() {
            if e.chunk == FRESH {
                continue;
            }
            let old = e.chunk as usize;
            if compact_chunk[old] {
                let stat = chunks[old][e.offset as usize].clone();
                *e = EntryRef {
                    chunk: compact_index,
                    offset: compacted.len() as u32,
                };
                compacted.push(stat);
            } else {
                e.chunk = new_index[old];
            }
        }
        if !compacted.is_empty() {
            survivors.push(Arc::new(compacted));
        }
        chunks = survivors;
    }

    let fresh_chunk = if fresh.is_empty() {
        None
    } else {
        fresh.shrink_to_fit();
        let idx = chunks.len() as u32;
        chunks.push(Arc::new(fresh));
        for e in entries.iter_mut().filter(|e| e.chunk == FRESH) {
            e.chunk = idx;
        }
        Some(idx)
    };
    let fetched = tables.len() - reused;
    // Keep the uid index riding along whenever the listing itself is
    // shared — positions cannot have moved, so the retained index stays
    // exact for the next dirty-overwrite pass.
    let uid_index = if Arc::ptr_eq(&tables, &prior.tables) {
        Arc::clone(&prior.uid_index)
    } else {
        Arc::new(OnceLock::new())
    };
    FleetObservation {
        scope,
        tables,
        listing_epoch,
        entries: Arc::new(entries),
        chunks,
        uid_index,
        cursor,
        fresh_chunk,
        prior_cursor: prior.cursor(),
        fetched,
        reused,
        degradation: ObserveDegradation::default(),
    }
}

/// The dirty-overwrite incremental assembly: when the listing is shared
/// with the prior observation (`Arc::ptr_eq`), the new observation is the
/// prior's chunk table cloned wholesale (one `Arc` bump per chunk) with
/// only the dirty positions patched to point into one fresh chunk — no
/// per-table planning walk at all. A quiet pass (empty dirty set) shares
/// the prior's entry table outright.
///
/// Arena hygiene is amortized instead of per-pass: the patch leaves dead
/// slots behind in the prior chunks, so once live density would fall
/// below [`ARENA_COMPACT_MIN_LIVE`] (or the chunk count would exceed the
/// soak bound of `2 × ARENA_COMPACT_SMALL_DIVISOR + 2`), the reused
/// entries are rewritten into a single compaction chunk (distinct from
/// the fresh chunk, so relocated entries do not read as fetched). The
/// rebuild is O(n) but runs once per ~`1/dirty_fraction` cycles, keeping
/// the soak-test bounds intact with O(dirty) amortized cost.
fn dirty_positions(prior: &FleetObservation, mut dirty: Vec<u64>) -> Vec<u32> {
    dirty.sort_unstable();
    dirty.dedup();
    let index = prior.uid_index();
    // Dirty uids that are not listed (e.g. a force-dirty mark for a
    // table the connector no longer lists) are ignored, matching the
    // planning path's membership semantics.
    let mut positions: Vec<u32> = dirty
        .iter()
        .filter_map(|uid| index.get(uid).copied())
        .collect();
    positions.sort_unstable();
    positions
}

/// Quiet pass of the dirty-overwrite assembly: nothing to patch — the
/// prior's entry table is shared outright (one `Arc` bump).
fn fast_observe_quiet(
    scope: ScopeStrategy,
    tables: Arc<Vec<TableRef>>,
    listing_epoch: Option<u64>,
    prior: &FleetObservation,
    cursor: Option<ChangeCursor>,
) -> FleetObservation {
    debug_assert!(Arc::ptr_eq(&tables, &prior.tables));
    let n = tables.len();
    FleetObservation {
        scope,
        tables,
        listing_epoch,
        entries: Arc::clone(&prior.entries),
        chunks: prior.chunks.clone(),
        uid_index: Arc::clone(&prior.uid_index),
        cursor,
        fresh_chunk: None,
        prior_cursor: prior.cursor(),
        fetched: 0,
        reused: n,
        degradation: ObserveDegradation::default(),
    }
}

/// Patch pass of the dirty-overwrite assembly: `patch` holds the
/// positions whose fetches succeeded (or retired to `Missing`), in
/// ascending position order, each with its replacement entry. Positions
/// whose fault was absorbed by carry-forward are simply absent — their
/// entries keep pointing at the prior chunk and read as reused.
fn fast_observe_patch(
    scope: ScopeStrategy,
    tables: Arc<Vec<TableRef>>,
    listing_epoch: Option<u64>,
    prior: &FleetObservation,
    cursor: Option<ChangeCursor>,
    patch: Vec<(u32, TableObservation)>,
) -> FleetObservation {
    debug_assert!(Arc::ptr_eq(&tables, &prior.tables));
    let n = tables.len();
    let uid_index = Arc::clone(&prior.uid_index);
    let mut entries: Vec<EntryRef> = (*prior.entries).clone();
    let mut chunks = prior.chunks.clone();
    let fresh_idx = chunks.len() as u32;
    let fetched = patch.len();
    let mut fetched_stats: Vec<TableObservation> = Vec::with_capacity(fetched);
    for (i, (pos, stat)) in patch.into_iter().enumerate() {
        entries[pos as usize] = EntryRef {
            chunk: fresh_idx,
            offset: i as u32,
        };
        fetched_stats.push(stat);
    }
    chunks.push(Arc::new(fetched_stats));

    // Amortized arena hygiene: rebuild once the bounds the soak suite
    // pins would be violated.
    let slots: usize = chunks.iter().map(|c| c.len()).sum();
    let (live_num, live_den) = ARENA_COMPACT_MIN_LIVE;
    let density_low = n * live_den < slots * live_num;
    let too_many_chunks = chunks.len() > 2 * ARENA_COMPACT_SMALL_DIVISOR;
    if density_low || too_many_chunks {
        let mut compacted: Vec<TableObservation> = Vec::with_capacity(n - fetched);
        for e in entries.iter_mut() {
            if e.chunk == fresh_idx {
                e.chunk = 1;
                continue;
            }
            let stat = chunks[e.chunk as usize][e.offset as usize].clone();
            *e = EntryRef {
                chunk: 0,
                offset: compacted.len() as u32,
            };
            compacted.push(stat);
        }
        let fresh = chunks.pop().expect("fresh chunk pushed above");
        chunks = vec![Arc::new(compacted), fresh];
        return FleetObservation {
            scope,
            tables,
            listing_epoch,
            entries: Arc::new(entries),
            chunks,
            uid_index,
            cursor,
            fresh_chunk: Some(1),
            prior_cursor: prior.cursor(),
            fetched,
            reused: n - fetched,
            degradation: ObserveDegradation::default(),
        };
    }

    FleetObservation {
        scope,
        tables,
        listing_epoch,
        entries: Arc::new(entries),
        chunks,
        uid_index,
        cursor,
        fresh_chunk: Some(fresh_idx),
        prior_cursor: prior.cursor(),
        fetched,
        reused: n - fetched,
        degradation: ObserveDegradation::default(),
    }
}

/// Runs one fallible listing/changelog read under the recovery policy:
/// transient faults retry until the retry count or the notional-backoff
/// deadline is spent; permanent faults fail immediately. Returns the
/// final result plus the retries consumed.
fn retry_read<T>(
    policy: &ObserveRecoveryPolicy,
    mut attempt: impl FnMut() -> Result<T, ObserveFault>,
) -> (Result<T, ObserveFault>, u32) {
    let mut retries = 0u32;
    let mut waited = 0u64;
    loop {
        match attempt() {
            Ok(value) => return (Ok(value), retries),
            Err(fault) => {
                if !fault.is_transient() || retries >= policy.max_retries {
                    return (Err(fault), retries);
                }
                waited = waited.saturating_add(policy.backoff_ms(retries + 1));
                if waited > policy.retry_deadline_ms {
                    return (Err(fault), retries);
                }
                retries += 1;
            }
        }
    }
}

/// The fallible front half both drivers share: listing and changelog
/// answers resolved under the recovery policy.
struct ResolvedReads {
    tables: Arc<Vec<TableRef>>,
    listing_epoch: Option<u64>,
    /// Changelog answer (dirty uids since the prior cursor, plus
    /// quarantined tables whose backoff expired); `None` forces the
    /// full-fetch fallback.
    changes: Option<Vec<u64>>,
    deg: ObserveDegradation,
    /// Listing unavailable with nothing to carry: produce a husk.
    stalled: bool,
}

/// Resolves the table listing and (when an incremental pass is
/// structurally possible) the changelog answer, spending retries per
/// the policy and recording every degradation on the pass's
/// [`ObserveDegradation`]. Quarantined tables whose backoff expired are
/// folded into the dirty set here, so healing re-fetches happen
/// automatically on whichever path the pass takes.
fn resolve_reads(
    request: &ObserveRequest<'_>,
    connector_epoch: Option<u64>,
    try_list: impl FnMut() -> Result<Vec<TableRef>, ObserveFault>,
    mut try_changes: impl FnMut(ChangeCursor) -> Result<Option<Vec<u64>>, ObserveFault>,
) -> ResolvedReads {
    let policy = &request.recovery;
    let prior = request.prior;
    let mut deg = ObserveDegradation {
        pass: prior.map_or(0, |p| p.degradation.pass + 1),
        ..ObserveDegradation::default()
    };
    let mut listing_epoch = connector_epoch;
    // Listing reuse under an unchanged epoch costs no listing read at
    // all; otherwise the read retries transient faults and, exhausted,
    // carries the prior listing (keeping the prior's epoch so a healed
    // listing is re-read next pass).
    let tables = match (connector_epoch, prior) {
        (Some(e), Some(p)) if p.listing_epoch() == Some(e) => Some(p.tables_shared()),
        _ => {
            let (res, retries) = retry_read(policy, try_list);
            deg.listing_retries = retries;
            match res {
                Ok(listed) => Some(Arc::new(listed)),
                Err(_) => match prior {
                    Some(p) => {
                        deg.listing_stale_passes =
                            p.degradation.listing_stale_passes.saturating_add(1);
                        listing_epoch = p.listing_epoch();
                        Some(p.tables_shared())
                    }
                    None => None,
                },
            }
        }
    };
    let Some(tables) = tables else {
        deg.stalled = true;
        return ResolvedReads {
            tables: Arc::new(Vec::new()),
            listing_epoch: None,
            changes: None,
            deg,
            stalled: true,
        };
    };
    let mut changes = None;
    if let Some(p) = prior {
        if p.scope() == request.scope {
            if let Some(cursor) = p.cursor() {
                let (res, retries) = retry_read(policy, || try_changes(cursor));
                deg.changelog_retries = retries;
                match res {
                    Ok(Some(dirty)) => changes = Some(dirty),
                    // The prior pass obtained a cursor, so the connector
                    // has a change stream: `None` now means the cursor
                    // predates retention — definitive, no retry; one
                    // full observe resynchronizes.
                    Ok(None) => deg.fallback = Some(FallbackCause::ChangelogOverflow),
                    Err(_) => deg.fallback = Some(FallbackCause::ChangelogFault),
                }
            }
            if let Some(dirty) = &mut changes {
                dirty.extend(p.degradation.due_for_retry(deg.pass));
            }
        }
    }
    ResolvedReads {
        tables,
        listing_epoch,
        changes,
        deg,
        stalled: false,
    }
}

/// Applies the carry-forward/quarantine policy to one faulted stats
/// fetch. Returns `None` when the stale prior entry is carried (leave
/// it in place), or `Some(Missing)` when the entry retires — carry
/// budget spent, or nothing to carry.
fn absorb_stats_fault(
    uid: u64,
    can_carry: bool,
    policy: &ObserveRecoveryPolicy,
    prior_deg: &ObserveDegradation,
    deg: &mut ObserveDegradation,
) -> Option<TableObservation> {
    deg.stats_faults += 1;
    let attempts = prior_deg
        .quarantine
        .get(&uid)
        .map_or(0, |q| q.attempts)
        .saturating_add(1);
    let carried = can_carry && attempts <= policy.max_carry_attempts;
    deg.quarantine.insert(
        uid,
        Quarantined {
            attempts,
            release_pass: policy.quarantine_release(deg.pass, attempts),
            carried,
        },
    );
    if carried {
        None
    } else {
        Some(TableObservation::Missing)
    }
}

/// Carries prior quarantine records forward: tables still listed, not
/// refreshed and not re-faulted this pass keep their records unchanged
/// (their entries still read the carried or retired value, awaiting
/// their backoff).
fn carry_quarantine(
    prior: &FleetObservation,
    refreshed: &BTreeSet<u64>,
    tables: &[TableRef],
    deg: &mut ObserveDegradation,
) {
    if prior.degradation.quarantine.is_empty() {
        return;
    }
    let listed: BTreeSet<u64> = tables.iter().map(|t| t.table_uid).collect();
    for (uid, q) in &prior.degradation.quarantine {
        if deg.quarantine.contains_key(uid) || refreshed.contains(uid) || !listed.contains(uid) {
            continue;
        }
        deg.quarantine.insert(*uid, *q);
    }
}

/// Splits fallible fast-path fetch results into the entry patch
/// (successes plus retirements); faults absorbed by carry-forward are
/// dropped from the patch, so their entries keep pointing at the prior
/// chunk and read as reused.
fn fixup_fast_fetch(
    tables: &[TableRef],
    prior: &FleetObservation,
    policy: &ObserveRecoveryPolicy,
    positions: &[u32],
    results: Vec<Result<TableObservation, ObserveFault>>,
    deg: &mut ObserveDegradation,
) -> Vec<(u32, TableObservation)> {
    debug_assert_eq!(results.len(), positions.len());
    let mut refreshed = BTreeSet::new();
    let mut patch = Vec::with_capacity(results.len());
    for (pos, result) in positions.iter().zip(results) {
        let uid = tables[*pos as usize].table_uid;
        match result {
            Ok(stat) => {
                refreshed.insert(uid);
                patch.push((*pos, stat));
            }
            // The prior entry always exists on the fast path (identical
            // listing), so a fault can always carry until the budget
            // runs out.
            Err(_) => {
                if let Some(stat) = absorb_stats_fault(uid, true, policy, &prior.degradation, deg)
                {
                    patch.push((*pos, stat));
                }
            }
        }
    }
    carry_quarantine(prior, &refreshed, tables, deg);
    patch
}

/// Walks the plan/result pair of the planning path: successful fetches
/// keep their plan, faulted ones convert to `Reuse` of the prior entry
/// (carry-forward) or stay `Fetch` with a retired `Missing` entry.
/// Returns the compact fetched vector `assemble_incremental` expects.
fn fixup_planned_fetch(
    tables: &[TableRef],
    prior: &FleetObservation,
    policy: &ObserveRecoveryPolicy,
    plans: &mut [FetchPlan],
    results: Vec<Result<TableObservation, ObserveFault>>,
    deg: &mut ObserveDegradation,
) -> Vec<TableObservation> {
    let mut refreshed = BTreeSet::new();
    let mut out = Vec::with_capacity(results.len());
    let mut results = results.into_iter();
    for (pos, plan) in plans.iter_mut().enumerate() {
        if !matches!(plan, FetchPlan::Fetch) {
            continue;
        }
        let uid = tables[pos].table_uid;
        match results.next().expect("one result per fetch plan") {
            Ok(stat) => {
                refreshed.insert(uid);
                out.push(stat);
            }
            Err(_) => {
                let prior_idx = prior.position_of_uid(uid);
                match absorb_stats_fault(uid, prior_idx.is_some(), policy, &prior.degradation, deg)
                {
                    None => {
                        *plan = FetchPlan::Reuse(prior_idx.expect("carry implies a prior entry"))
                    }
                    Some(stat) => out.push(stat),
                }
            }
        }
    }
    carry_quarantine(prior, &refreshed, tables, deg);
    out
}

/// Post-processes a cold (full-fetch) pass's fallible results. With a
/// same-scope prior (e.g. a changelog-fallback full observe), faulted
/// tables carry their prior entry — cloned into the cold chunk, values
/// identical so downstream results match a reuse. Without one, faults
/// retire to `Missing` and heal through quarantine like any other.
fn fixup_cold_fetch(
    tables: &[TableRef],
    scope: ScopeStrategy,
    prior: Option<&FleetObservation>,
    policy: &ObserveRecoveryPolicy,
    results: Vec<Result<TableObservation, ObserveFault>>,
    deg: &mut ObserveDegradation,
) -> Vec<TableObservation> {
    // A scope change drops carry/quarantine state: prior entries have
    // the wrong shape for the new scope.
    let carry_prior = prior.filter(|p| p.scope() == scope);
    let empty = ObserveDegradation::default();
    let prior_deg = carry_prior.map_or(&empty, |p| &p.degradation);
    let mut refreshed = BTreeSet::new();
    let mut out = Vec::with_capacity(results.len());
    for (table, result) in tables.iter().zip(results) {
        let uid = table.table_uid;
        match result {
            Ok(stat) => {
                refreshed.insert(uid);
                out.push(stat);
            }
            Err(_) => {
                let prior_idx = carry_prior.and_then(|p| p.position_of_uid(uid));
                match absorb_stats_fault(uid, prior_idx.is_some(), policy, prior_deg, deg) {
                    None => {
                        let p = carry_prior.expect("carry implies a prior");
                        out.push(p.entry(prior_idx.expect("carry implies a position")).clone());
                    }
                    Some(stat) => out.push(stat),
                }
            }
        }
    }
    if let Some(p) = carry_prior {
        carry_quarantine(p, &refreshed, tables, deg);
    }
    out
}

/// The sequential observe driver: list, plan, then fetch (or reuse) one
/// table at a time. This is the default every [`LakeConnector`] inherits,
/// so pre-batch connectors keep working unchanged. Consumes only the
/// fallible `try_*` connector surface and degrades per the module docs'
/// contract instead of failing.
pub fn pull_observe<C: LakeConnector + ?Sized>(
    connector: &C,
    request: &ObserveRequest<'_>,
) -> FleetObservation {
    let ResolvedReads {
        tables,
        listing_epoch,
        changes,
        mut deg,
        stalled,
    } = resolve_reads(
        request,
        connector.listing_epoch(),
        || connector.try_list_tables(),
        |c| connector.try_changes_since(c),
    );
    let cursor = connector.fleet_cursor();
    let scope = request.scope;
    if stalled {
        let mut obs = FleetObservation::assemble_cold(scope, tables, None, Vec::new(), cursor);
        obs.degradation = deg;
        return obs;
    }
    let source = SeqSource(connector);
    let policy = &request.recovery;
    // Dirty-overwrite fast path: shared listing + changelog answer —
    // patch the prior observation instead of planning the whole fleet.
    if let Some(dirty) = fast_path_dirty(&tables, request, changes.as_ref()) {
        let prior = request.prior.expect("fast path implies a prior");
        let positions = dirty_positions(prior, dirty);
        let patch = if positions.is_empty() {
            carry_quarantine(prior, &BTreeSet::new(), &tables, &mut deg);
            Vec::new()
        } else {
            let results: Vec<_> = positions
                .iter()
                .map(|pos| fetch_one(&source, &prior.tables[*pos as usize], scope))
                .collect();
            fixup_fast_fetch(&tables, prior, policy, &positions, results, &mut deg)
        };
        let mut obs = if patch.is_empty() {
            fast_observe_quiet(scope, tables, listing_epoch, prior, cursor)
        } else {
            fast_observe_patch(scope, tables, listing_epoch, prior, cursor, patch)
        };
        obs.degradation = deg;
        return obs;
    }
    match make_plans(&tables, request, changes.as_ref()) {
        None => {
            let results: Vec<_> = tables.iter().map(|t| fetch_one(&source, t, scope)).collect();
            let stats = fixup_cold_fetch(&tables, scope, request.prior, policy, results, &mut deg);
            let mut obs =
                FleetObservation::assemble_cold(scope, tables, listing_epoch, stats, cursor);
            obs.degradation = deg;
            obs
        }
        Some(mut plans) => {
            let prior = request.prior.expect("plans imply a prior");
            let results: Vec<_> = tables
                .iter()
                .zip(&plans)
                .filter(|(_, plan)| matches!(plan, FetchPlan::Fetch))
                .map(|(t, _)| fetch_one(&source, t, scope))
                .collect();
            let fetched = fixup_planned_fetch(&tables, prior, policy, &mut plans, results, &mut deg);
            let mut obs =
                assemble_incremental(scope, tables, listing_epoch, &plans, fetched, prior, cursor);
            obs.degradation = deg;
            obs
        }
    }
}

/// The parallel observe driver: stats production fans out over scoped
/// threads in position-stable chunks, so the result is bit-identical to
/// [`pull_observe`] over the same lake state regardless of thread count
/// — fault handling included: results come back positional, and the
/// carry/quarantine fixup runs serially on them.
pub fn batch_observe<C: BatchLakeConnector + ?Sized>(
    connector: &C,
    request: &ObserveRequest<'_>,
) -> FleetObservation {
    let ResolvedReads {
        tables,
        listing_epoch,
        changes,
        mut deg,
        stalled,
    } = resolve_reads(
        request,
        connector.listing_epoch(),
        || connector.try_list_tables(),
        |c| connector.try_changes_since(c),
    );
    let cursor = connector.fleet_cursor();
    let scope = request.scope;
    if stalled {
        let mut obs = FleetObservation::assemble_cold(scope, tables, None, Vec::new(), cursor);
        obs.degradation = deg;
        return obs;
    }
    let source = BatchSource(connector);
    let policy = &request.recovery;
    // Dirty-overwrite fast path (see `pull_observe`), with the dirty
    // fetches fanned out position-stable like the planning path's.
    if let Some(dirty) = fast_path_dirty(&tables, request, changes.as_ref()) {
        let prior = request.prior.expect("fast path implies a prior");
        let positions = dirty_positions(prior, dirty);
        let patch = if positions.is_empty() {
            carry_quarantine(prior, &BTreeSet::new(), &tables, &mut deg);
            Vec::new()
        } else {
            let results = par::par_map(&positions, par::PAR_OBSERVE_MIN_LEN, |_, pos| {
                fetch_one(&source, &prior.tables[*pos as usize], scope)
            });
            fixup_fast_fetch(&tables, prior, policy, &positions, results, &mut deg)
        };
        let mut obs = if patch.is_empty() {
            fast_observe_quiet(scope, tables, listing_epoch, prior, cursor)
        } else {
            fast_observe_patch(scope, tables, listing_epoch, prior, cursor, patch)
        };
        obs.degradation = deg;
        return obs;
    }
    match make_plans(&tables, request, changes.as_ref()) {
        None => {
            let results = par::par_map(&tables, par::PAR_OBSERVE_MIN_LEN, |_, t| {
                fetch_one(&source, t, scope)
            });
            let stats = fixup_cold_fetch(&tables, scope, request.prior, policy, results, &mut deg);
            let mut obs =
                FleetObservation::assemble_cold(scope, tables, listing_epoch, stats, cursor);
            obs.degradation = deg;
            obs
        }
        Some(mut plans) => {
            let prior = request.prior.expect("plans imply a prior");
            // Fan out only over the dirty positions (position-stable, so
            // still bit-identical to the sequential path).
            let fetch_positions: Vec<u32> = plans
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p, FetchPlan::Fetch))
                .map(|(i, _)| i as u32)
                .collect();
            let results = par::par_map(&fetch_positions, par::PAR_OBSERVE_MIN_LEN, |_, pos| {
                fetch_one(&source, &tables[*pos as usize], scope)
            });
            let fetched = fixup_planned_fetch(&tables, prior, policy, &mut plans, results, &mut deg);
            let mut obs =
                assemble_incremental(scope, tables, listing_epoch, &plans, fetched, prior, cursor);
            obs.degradation = deg;
            obs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::SyncAsBatch;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// In-memory lake with a change log and fetch counters.
    struct ChangeLake {
        tables: Vec<TableRef>,
        version: Mutex<BTreeMap<u64, u64>>,
        log: Mutex<Vec<(u64, u64)>>, // (seq, uid)
        seq: AtomicU64,
        stat_calls: AtomicU64,
    }

    impl ChangeLake {
        fn new(n: u64) -> Self {
            ChangeLake {
                tables: (0..n)
                    .map(|i| TableRef {
                        table_uid: i,
                        database: "db".into(),
                        name: format!("t{i}").into(),
                        partitioned: i % 3 == 0,
                        compaction_enabled: true,
                        is_intermediate: false,
                    })
                    .collect(),
                version: Mutex::new(BTreeMap::new()),
                log: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
                stat_calls: AtomicU64::new(0),
            }
        }

        fn write(&self, uid: u64) {
            let seq = self.seq.fetch_add(1, Ordering::SeqCst);
            self.log.lock().unwrap().push((seq, uid));
            *self.version.lock().unwrap().entry(uid).or_insert(0) += 1;
        }

        fn stats_for(&self, uid: u64) -> CandidateStats {
            let v = self.version.lock().unwrap().get(&uid).copied().unwrap_or(0);
            CandidateStats {
                file_count: 10 + uid + v * 100,
                small_file_count: 5 + v * 50,
                ..CandidateStats::default()
            }
        }

        fn calls(&self) -> u64 {
            self.stat_calls.load(Ordering::SeqCst)
        }
    }

    impl LakeConnector for ChangeLake {
        fn list_tables(&self) -> Vec<TableRef> {
            self.tables.clone()
        }
        fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
            self.stat_calls.fetch_add(1, Ordering::SeqCst);
            (uid < self.tables.len() as u64).then(|| self.stats_for(uid))
        }
        fn partition_stats(&self, uid: u64) -> Vec<(String, CandidateStats)> {
            self.stat_calls.fetch_add(1, Ordering::SeqCst);
            if self.tables.get(uid as usize).is_some_and(|t| t.partitioned) {
                vec![
                    ("(p0)".to_string(), self.stats_for(uid)),
                    ("(p1)".to_string(), self.stats_for(uid)),
                ]
            } else {
                Vec::new()
            }
        }
        fn snapshot_stats(&self, uid: u64, _window_ms: u64) -> Option<CandidateStats> {
            self.stat_calls.fetch_add(1, Ordering::SeqCst);
            uid.is_multiple_of(2).then(|| self.stats_for(uid))
        }
        fn fleet_cursor(&self) -> Option<ChangeCursor> {
            Some(ChangeCursor(self.seq.load(Ordering::SeqCst)))
        }
        fn changes_since(&self, cursor: ChangeCursor) -> Option<Vec<u64>> {
            Some(
                self.log
                    .lock()
                    .unwrap()
                    .iter()
                    .filter(|(seq, _)| *seq >= cursor.0)
                    .map(|(_, uid)| *uid)
                    .collect(),
            )
        }
    }

    #[test]
    fn cold_observe_matches_per_table_pull() {
        let lake = ChangeLake::new(9);
        for scope in [
            ScopeStrategy::Table,
            ScopeStrategy::Partition,
            ScopeStrategy::Hybrid,
            ScopeStrategy::Snapshot { window_ms: 100 },
        ] {
            let observation = lake.observe(&ObserveRequest::fresh(scope));
            let pulled = crate::scope::generate_candidates(&lake, scope);
            assert_eq!(observation.to_candidates(), pulled, "scope {scope:?}");
            assert_eq!(observation.reused_tables(), 0);
            assert_eq!(observation.fetched_tables(), 9);
        }
    }

    #[test]
    fn incremental_observe_refetches_only_dirty_tables() {
        let lake = ChangeLake::new(20);
        let mut observer = FleetObserver::new();
        observer.observe(&lake, ScopeStrategy::Table);
        lake.write(3);
        lake.write(7);
        let before = lake.calls();
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert_eq!(lake.calls() - before, 2, "only dirty tables re-fetched");
        assert_eq!(obs.reused_tables(), 18);
        assert_eq!(obs.fetched_tables(), 2);
        // The refreshed entries reflect the writes; reused ones don't.
        let cold = lake.observe(&ObserveRequest::fresh(ScopeStrategy::Table));
        assert_eq!(obs.to_candidates(), cold.to_candidates());
    }

    #[test]
    fn force_dirty_overrides_a_quiet_changelog() {
        let lake = ChangeLake::new(5);
        let mut observer = FleetObserver::new();
        observer.observe(&lake, ScopeStrategy::Table);
        observer.mark_dirty(2);
        let before = lake.calls();
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert_eq!(lake.calls() - before, 1);
        assert_eq!(obs.fetched_tables(), 1);
        // Pending dirty marks are consumed by the observe.
        let before = lake.calls();
        observer.observe(&lake, ScopeStrategy::Table);
        assert_eq!(lake.calls() - before, 0);
    }

    #[test]
    fn scope_change_forces_a_full_fetch() {
        let lake = ChangeLake::new(6);
        let mut observer = FleetObserver::new();
        observer.observe(&lake, ScopeStrategy::Table);
        let obs = observer.observe(&lake, ScopeStrategy::Hybrid);
        assert_eq!(obs.reused_tables(), 0);
        assert_eq!(obs.fetched_tables(), 6);
    }

    #[test]
    fn batch_observe_is_identical_to_pull_observe() {
        let lake = ChangeLake::new(40);
        lake.write(5);
        for scope in [
            ScopeStrategy::Table,
            ScopeStrategy::Partition,
            ScopeStrategy::Hybrid,
            ScopeStrategy::Snapshot { window_ms: 9 },
        ] {
            let pulled = pull_observe(&lake, &ObserveRequest::fresh(scope));
            let batch = SyncAsBatch(&lake);
            let batched = batch_observe(&batch, &ObserveRequest::fresh(scope));
            assert_eq!(pulled, batched, "scope {scope:?}");
        }
    }

    /// Connector without changelog support: incremental requests degrade
    /// to full fetches (the compatibility contract).
    struct PlainLake(Vec<TableRef>);

    impl LakeConnector for PlainLake {
        fn list_tables(&self) -> Vec<TableRef> {
            self.0.clone()
        }
        fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
            Some(CandidateStats {
                file_count: uid,
                ..CandidateStats::default()
            })
        }
        fn partition_stats(&self, _uid: u64) -> Vec<(String, CandidateStats)> {
            Vec::new()
        }
    }

    #[test]
    fn connectors_without_changelog_always_observe_fully() {
        let lake = PlainLake(
            (0..4)
                .map(|i| TableRef {
                    table_uid: i,
                    database: "db".into(),
                    name: format!("t{i}").into(),
                    partitioned: false,
                    compaction_enabled: true,
                    is_intermediate: false,
                })
                .collect(),
        );
        let mut observer = FleetObserver::new();
        let first = observer.observe(&lake, ScopeStrategy::Table).clone();
        assert_eq!(first.cursor(), None);
        let second = observer.observe(&lake, ScopeStrategy::Table);
        assert_eq!(second.reused_tables(), 0);
        assert_eq!(second.fetched_tables(), 4);
        assert_eq!(&first, second);
    }

    #[test]
    fn new_and_dropped_tables_are_handled() {
        // Prior observed tables 0..=4; the lake now lists 0..=5: the new
        // table 5 is fetched, the other five are reused.
        let lake = ChangeLake::new(6);
        let prior = {
            let small = ChangeLake::new(5);
            small.observe(&ObserveRequest::fresh(ScopeStrategy::Table))
        };
        // Splice a cursor onto the prior that the big lake accepts.
        let request = ObserveRequest::incremental(ScopeStrategy::Table, &prior);
        let obs = lake.observe(&request);
        assert_eq!(obs.table_count(), 6);
        assert_eq!(obs.reused_tables(), 5);
        assert_eq!(obs.fetched_tables(), 1);
    }

    #[test]
    fn fresh_entries_are_exactly_the_dirty_set() {
        let lake = ChangeLake::new(10);
        let mut observer = FleetObserver::new();
        let cold = observer.observe(&lake, ScopeStrategy::Table);
        assert!(
            (0..10).all(|i| cold.is_fresh(i)),
            "cold is fresh everywhere"
        );
        lake.write(4);
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        for i in 0..10 {
            assert_eq!(obs.is_fresh(i), i == 4, "entry {i}");
        }
        assert_eq!(obs.prior_cursor(), Some(ChangeCursor(0)));
        // A force-dirtied table absent from the changelog is fresh too —
        // the invariant downstream caches key their invalidation on.
        observer.mark_dirty(7);
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        for i in 0..10 {
            assert_eq!(obs.is_fresh(i), i == 7, "entry {i}");
        }
        // A quiet incremental pass fetches nothing: no fresh entries.
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert!((0..10).all(|i| !obs.is_fresh(i)));
    }

    /// Lake with a constant listing epoch: incremental observes share the
    /// prior observation's table vector instead of re-materializing it.
    struct EpochLake(ChangeLake);

    impl LakeConnector for EpochLake {
        fn list_tables(&self) -> Vec<TableRef> {
            self.0.list_tables()
        }
        fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
            self.0.table_stats(uid)
        }
        fn partition_stats(&self, uid: u64) -> Vec<(String, CandidateStats)> {
            self.0.partition_stats(uid)
        }
        fn fleet_cursor(&self) -> Option<ChangeCursor> {
            self.0.fleet_cursor()
        }
        fn changes_since(&self, cursor: ChangeCursor) -> Option<Vec<u64>> {
            self.0.changes_since(cursor)
        }
        fn listing_epoch(&self) -> Option<u64> {
            Some(42)
        }
    }

    #[test]
    fn unchanged_listing_epoch_shares_the_table_vector() {
        let lake = EpochLake(ChangeLake::new(12));
        let mut observer = FleetObserver::new();
        let first = observer.observe(&lake, ScopeStrategy::Table).clone();
        assert_eq!(first.listing_epoch(), Some(42));
        lake.0.write(3);
        let second = observer.observe(&lake, ScopeStrategy::Table);
        assert!(
            Arc::ptr_eq(&first.tables_shared(), &second.tables_shared()),
            "same epoch ⇒ shared listing"
        );
        // Shared listing must still re-fetch the dirty set and stay
        // identical to an un-shared cold observe.
        assert_eq!(second.fetched_tables(), 1);
        let cold = lake.observe(&ObserveRequest::fresh(ScopeStrategy::Table));
        assert_eq!(second.to_candidates(), cold.to_candidates());
    }

    #[test]
    fn arena_compaction_bounds_dead_entries_and_chunks() {
        let lake = ChangeLake::new(200);
        let mut observer = FleetObserver::new();
        observer.observe(&lake, ScopeStrategy::Table);
        // Many incremental cycles, each dirtying a sliding window: dead
        // entries accumulate in partially-referenced chunks until the
        // density/small-chunk rules rewrite them.
        for round in 0..120u64 {
            for k in 0..5 {
                lake.write((round * 5 + k) % 200);
            }
            let obs = observer.observe(&lake, ScopeStrategy::Table);
            assert!(
                obs.arena_live_density() >= 0.5 - 1e-9,
                "round {round}: density {}",
                obs.arena_live_density()
            );
            assert!(
                obs.arena_chunk_count() <= 2 * ARENA_COMPACT_SMALL_DIVISOR + 2,
                "round {round}: {} chunks",
                obs.arena_chunk_count()
            );
            // Compaction must not disturb values: spot-check equality
            // with a cold observe every few rounds.
            if round % 40 == 0 {
                let cold = lake.observe(&ObserveRequest::fresh(ScopeStrategy::Table));
                assert_eq!(obs.to_candidates(), cold.to_candidates(), "round {round}");
            }
        }
    }

    #[test]
    fn interner_shares_allocations() {
        let mut interner = NameInterner::new();
        let a = interner.get_or_intern("db1");
        let b = interner.get_or_intern("db1");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(interner.len(), 1);
        let c = interner.get_or_intern("db2");
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!interner.is_empty());
    }

    /// `ChangeLake` wrapper with scripted fault queues on the `try_*`
    /// surface: each fallible read pops its queue (empty = healthy).
    struct FaultyLake {
        inner: ChangeLake,
        listing_faults: Mutex<Vec<ObserveFault>>,
        changelog_faults: Mutex<Vec<ObserveFault>>,
        changelog_overflows: AtomicU64,
        stats_faults: Mutex<BTreeMap<u64, Vec<ObserveFault>>>,
    }

    impl FaultyLake {
        fn new(n: u64) -> Self {
            FaultyLake {
                inner: ChangeLake::new(n),
                listing_faults: Mutex::new(Vec::new()),
                changelog_faults: Mutex::new(Vec::new()),
                changelog_overflows: AtomicU64::new(0),
                stats_faults: Mutex::new(BTreeMap::new()),
            }
        }

        fn fault_listing(&self, faults: impl IntoIterator<Item = ObserveFault>) {
            self.listing_faults.lock().unwrap().extend(faults);
        }

        fn fault_changelog(&self, faults: impl IntoIterator<Item = ObserveFault>) {
            self.changelog_faults.lock().unwrap().extend(faults);
        }

        fn fault_stats(&self, uid: u64, faults: impl IntoIterator<Item = ObserveFault>) {
            self.stats_faults
                .lock()
                .unwrap()
                .entry(uid)
                .or_default()
                .extend(faults);
        }

        fn pop(queue: &Mutex<Vec<ObserveFault>>) -> Option<ObserveFault> {
            let mut q = queue.lock().unwrap();
            if q.is_empty() {
                None
            } else {
                Some(q.remove(0))
            }
        }

        fn pop_stats(&self, uid: u64) -> Option<ObserveFault> {
            let mut map = self.stats_faults.lock().unwrap();
            let q = map.get_mut(&uid)?;
            if q.is_empty() {
                None
            } else {
                Some(q.remove(0))
            }
        }
    }

    impl LakeConnector for FaultyLake {
        fn list_tables(&self) -> Vec<TableRef> {
            self.inner.list_tables()
        }
        fn table_stats(&self, uid: u64) -> Option<CandidateStats> {
            self.inner.table_stats(uid)
        }
        fn partition_stats(&self, uid: u64) -> Vec<(String, CandidateStats)> {
            self.inner.partition_stats(uid)
        }
        fn snapshot_stats(&self, uid: u64, window_ms: u64) -> Option<CandidateStats> {
            self.inner.snapshot_stats(uid, window_ms)
        }
        fn fleet_cursor(&self) -> Option<ChangeCursor> {
            self.inner.fleet_cursor()
        }
        fn changes_since(&self, cursor: ChangeCursor) -> Option<Vec<u64>> {
            self.inner.changes_since(cursor)
        }
        fn try_list_tables(&self) -> Result<Vec<TableRef>, ObserveFault> {
            match Self::pop(&self.listing_faults) {
                Some(fault) => Err(fault),
                None => Ok(self.inner.list_tables()),
            }
        }
        fn try_table_stats(&self, uid: u64) -> Result<Option<CandidateStats>, ObserveFault> {
            match self.pop_stats(uid) {
                Some(fault) => Err(fault),
                None => Ok(self.inner.table_stats(uid)),
            }
        }
        fn try_partition_stats(
            &self,
            uid: u64,
        ) -> Result<Vec<(String, CandidateStats)>, ObserveFault> {
            match self.pop_stats(uid) {
                Some(fault) => Err(fault),
                None => Ok(self.inner.partition_stats(uid)),
            }
        }
        fn try_snapshot_stats(
            &self,
            uid: u64,
            window_ms: u64,
        ) -> Result<Option<CandidateStats>, ObserveFault> {
            match self.pop_stats(uid) {
                Some(fault) => Err(fault),
                None => Ok(self.inner.snapshot_stats(uid, window_ms)),
            }
        }
        fn try_changes_since(&self, cursor: ChangeCursor) -> Result<Option<Vec<u64>>, ObserveFault> {
            if self
                .changelog_overflows
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                return Ok(None);
            }
            match Self::pop(&self.changelog_faults) {
                Some(fault) => Err(fault),
                None => Ok(self.inner.changes_since(cursor)),
            }
        }
    }

    #[test]
    fn transient_listing_fault_is_retried_within_the_pass() {
        let lake = FaultyLake::new(6);
        lake.fault_listing([
            ObserveFault::transient("catalog timeout"),
            ObserveFault::transient("catalog timeout"),
        ]);
        let obs = lake.observe(&ObserveRequest::fresh(ScopeStrategy::Table));
        assert_eq!(obs.table_count(), 6, "retries recovered the listing");
        assert_eq!(obs.degradation().listing_retries, 2);
        assert!(!obs.degradation().stalled);
        assert_eq!(
            obs.to_candidates(),
            lake.inner
                .observe(&ObserveRequest::fresh(ScopeStrategy::Table))
                .to_candidates()
        );
    }

    #[test]
    fn exhausted_listing_fault_carries_the_prior_listing() {
        let lake = FaultyLake::new(5);
        let mut observer = FleetObserver::new();
        observer.observe(&lake, ScopeStrategy::Table);
        // Permanent fault: no retry, prior listing reused.
        lake.fault_listing([ObserveFault::permanent("catalog gone")]);
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert_eq!(obs.table_count(), 5);
        assert_eq!(obs.degradation().listing_stale_passes, 1);
        assert_eq!(obs.degradation().listing_retries, 0);
        // Healed: staleness clears.
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert_eq!(obs.degradation().listing_stale_passes, 0);
        assert!(!obs.degradation().is_degraded());
    }

    #[test]
    fn listing_fault_with_no_prior_stalls_into_a_husk() {
        let lake = FaultyLake::new(4);
        lake.fault_listing([ObserveFault::permanent("catalog gone")]);
        let obs = lake.observe(&ObserveRequest::fresh(ScopeStrategy::Table));
        assert_eq!(obs.table_count(), 0);
        assert!(obs.degradation().stalled);
        assert!(obs.degradation().is_degraded());
        // The husk is a valid prior: once the listing heals, the next
        // pass observes the fleet fully.
        let healed = lake.observe(&ObserveRequest::incremental(ScopeStrategy::Table, &obs));
        assert_eq!(healed.table_count(), 4);
        assert!(!healed.degradation().stalled);
    }

    #[test]
    fn changelog_fault_falls_back_to_a_full_observe() {
        let lake = FaultyLake::new(8);
        let mut observer = FleetObserver::new();
        observer.observe(&lake, ScopeStrategy::Table);
        lake.inner.write(3);
        lake.fault_changelog(vec![ObserveFault::permanent("stream down")]);
        let before = lake.inner.calls();
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert_eq!(
            obs.degradation().fallback,
            Some(FallbackCause::ChangelogFault)
        );
        assert_eq!(lake.inner.calls() - before, 8, "full fetch");
        assert_eq!(obs.fetched_tables(), 8);
        // The fallback resynchronized the chain: the next pass is
        // incremental again.
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert!(!obs.degradation().is_degraded());
        assert_eq!(obs.fetched_tables(), 0);
    }

    #[test]
    fn changelog_overflow_records_its_own_cause() {
        let lake = FaultyLake::new(7);
        let mut observer = FleetObserver::new();
        observer.observe(&lake, ScopeStrategy::Table);
        lake.changelog_overflows.store(1, Ordering::SeqCst);
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert_eq!(
            obs.degradation().fallback,
            Some(FallbackCause::ChangelogOverflow)
        );
        assert_eq!(obs.fetched_tables(), 7);
        assert_eq!(obs.degradation().changelog_retries, 0, "no retry: definitive");
    }

    #[test]
    fn stats_fault_carries_the_prior_entry_and_quarantines() {
        let lake = FaultyLake::new(10);
        let mut observer = FleetObserver::new();
        let cold = observer
            .observe(&lake, ScopeStrategy::Table)
            .to_candidates();
        lake.inner.write(4);
        lake.fault_stats(4, [ObserveFault::transient("store hiccup")]);
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        // The faulted table's entry is the stale prior value.
        assert_eq!(obs.to_candidates(), cold, "carried entry keeps prior stats");
        assert_eq!(obs.degradation().carried_entries(), 1);
        let q = obs.degradation().quarantine.get(&4).copied().unwrap();
        assert_eq!(q.attempts, 1);
        assert!(q.carried);
        assert_eq!(q.release_pass, obs.degradation().pass + 1);
        // Next pass: backoff expired, the table is re-force-dirtied and
        // heals — values converge on the written state.
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert!(obs.degradation().quarantine.is_empty());
        assert!(!obs.degradation().is_degraded());
        let fresh = lake
            .inner
            .observe(&ObserveRequest::fresh(ScopeStrategy::Table));
        assert_eq!(obs.to_candidates(), fresh.to_candidates());
    }

    #[test]
    fn carry_budget_exhaustion_retires_the_entry_to_missing() {
        let lake = FaultyLake::new(3);
        let policy = ObserveRecoveryPolicy {
            max_carry_attempts: 1,
            quarantine_backoff_passes: 1,
            quarantine_backoff_cap_passes: 1,
            ..ObserveRecoveryPolicy::default()
        };
        let mut observer = FleetObserver::new();
        observer.set_recovery(policy);
        observer.observe(&lake, ScopeStrategy::Table);
        // Two consecutive faulted re-fetches: carry, then retire.
        lake.fault_stats(1, vec![ObserveFault::transient("flaky"); 2]);
        lake.inner.write(1);
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert_eq!(obs.degradation().carried_entries(), 1);
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert_eq!(obs.degradation().carried_entries(), 0);
        assert_eq!(obs.degradation().retired_entries(), 1);
        let pos = obs.position_of_uid(1).unwrap();
        assert_eq!(*obs.entry(pos), TableObservation::Missing);
        assert!(obs
            .degradation()
            .reasons()
            .contains(&DegradeReason::Retired));
        // Healing re-fetch restores the table.
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert!(obs.degradation().quarantine.is_empty());
        assert_ne!(*obs.entry(pos), TableObservation::Missing);
    }

    #[test]
    fn faulted_batch_observe_matches_pull_observe() {
        let pull = FaultyLake::new(12);
        let batch = FaultyLake::new(12);
        for lake in [&pull, &batch] {
            lake.inner.write(2);
            lake.inner.write(9);
            lake.fault_stats(2, [ObserveFault::transient("store hiccup")]);
        }
        let mut seq_observer = FleetObserver::new();
        seq_observer.observe(&pull, ScopeStrategy::Hybrid);
        let seq = seq_observer.observe(&pull, ScopeStrategy::Hybrid);
        let mut batch_observer = FleetObserver::new();
        let wrapped = SyncAsBatch(batch);
        batch_observer.observe_batch(&wrapped, ScopeStrategy::Hybrid);
        let par = batch_observer.observe_batch(&wrapped, ScopeStrategy::Hybrid);
        assert_eq!(seq, par);
        assert_eq!(seq.degradation(), par.degradation());
    }

    #[test]
    fn vanish_is_not_a_fault() {
        // A table that vanishes (stats read answers `Ok(None)`) yields
        // `Missing` with no quarantine entry — state signal, not fault.
        let lake = FaultyLake::new(3);
        let mut observer = FleetObserver::new();
        observer.observe(&lake, ScopeStrategy::Table);
        observer.mark_dirty(99); // never listed
        let obs = observer.observe(&lake, ScopeStrategy::Table);
        assert!(obs.degradation().quarantine.is_empty());
        assert!(!obs.degradation().is_degraded());
    }
}
