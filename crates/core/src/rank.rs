//! Candidate ranking and selection (the decide phase, §4.3).
//!
//! Two scenarios from the paper:
//!
//! * **Unconstrained resources** — a threshold decision function: any
//!   candidate whose trait exceeds the threshold is compacted.
//! * **Resource-constrained** — the MOOP formulation: min–max normalize
//!   each trait over the candidate set, scalarize with weights summing to
//!   1 (`S_c = w1·T'₁ − w2·T'₂`), rank descending, then select top-k or
//!   greedily fit a compute budget (dynamic k, §7).
//!
//! The production deployment's quota-aware weighting (§7),
//! `w1 = 0.5 × (1 + UsedQuota/TotalQuota)`, is a per-candidate weight
//! variant.
//!
//! # Columnar decide path
//!
//! Trait values arrive as a [`TraitMatrix`] — interned trait names,
//! contiguous `f64` columns — so scalarization is index arithmetic, not
//! string-keyed map probes. Selection uses partial ordering
//! (`select_nth_unstable_by` plus a sort of the selected head) instead of
//! a full fleet sort: for a fixed k the decide phase is **O(n + k log k)**
//! in the candidate count n. Returned entries carry their candidate
//! `index` so downstream phases address the matrix and candidate slice
//! directly, with no id-keyed side tables.
//!
//! ## Ordering contract
//!
//! Entries are returned best-first for the *materialized prefix* — at
//! least every selected candidate plus the first
//! [`RANKED_PREFIX_MIN`] rows (what [`CycleReport`] renders). Entries past
//! the prefix follow in candidate order and their notes carry no exact
//! rank; nothing renders them. The seed sorted the entire fleet for every
//! cycle, which is exactly the O(n log n) framework overhead §7 warns
//! about.
//!
//! [`CycleReport`]: crate::pipeline::CycleReport

use std::fmt;
use std::sync::Arc;

use crate::candidate::{Candidate, CandidateId};
use crate::error::AutoCompError;
use crate::matrix::TraitMatrix;
use crate::Result;

/// Number of best-first rows always materialized in exact rank order —
/// the decision-report prefix ([`CycleReport`](crate::pipeline::CycleReport)
/// renders this many rows).
pub const RANKED_PREFIX_MIN: usize = 20;

/// One weighted objective in a MOOP policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TraitWeight {
    /// Trait name (must match a registered computer).
    pub trait_name: String,
    /// Weight; all weights must be positive and sum to 1.
    pub weight: f64,
}

impl TraitWeight {
    /// Convenience constructor.
    pub fn new(trait_name: impl Into<String>, weight: f64) -> Self {
        TraitWeight {
            trait_name: trait_name.into(),
            weight,
        }
    }
}

/// Ranking and selection policy.
#[derive(Debug, Clone, PartialEq)]
pub enum RankingPolicy {
    /// Unconstrained scenario (§4.3): select every candidate whose trait
    /// value meets the threshold, ranked by that value.
    Threshold {
        /// Trait to test.
        trait_name: String,
        /// Minimum value for selection.
        min_value: f64,
        /// Optional cap on selections (safety valve).
        max_k: Option<usize>,
    },
    /// Weighted-sum MOOP with top-k selection (§4.3 / §6: k=10 table
    /// scope, k=50/500 hybrid).
    Moop {
        /// Objective weights (positive, summing to 1).
        weights: Vec<TraitWeight>,
        /// Number of candidates to select.
        k: usize,
    },
    /// Weighted-sum MOOP with a compute budget instead of a fixed k: the
    /// dynamic-k selection the production deployment moved to in week 22
    /// (§7, 226 TBHr budget → k≈2500).
    BudgetedMoop {
        /// Objective weights (positive, summing to 1).
        weights: Vec<TraitWeight>,
        /// Trait holding each candidate's cost (raw, unnormalized units).
        cost_trait: String,
        /// Total budget in the cost trait's units (e.g. GBHr).
        budget: f64,
        /// Optional cap on selections.
        max_k: Option<usize>,
    },
    /// Production quota-aware weighting (§7): per-candidate
    /// `w1 = 0.5 × (1 + quota utilization)`, `w2 = 1 − w1`, scored as
    /// `w1·benefit' − w2·cost'`.
    QuotaAwareMoop {
        /// Benefit trait name.
        benefit_trait: String,
        /// Cost trait name.
        cost_trait: String,
        /// Fixed k (`None` = select by `budget`).
        k: Option<usize>,
        /// Budget in raw cost units (used when `k` is `None`).
        budget: Option<f64>,
    },
}

/// Why the decide phase did (not) select a candidate — rendered lazily on
/// [`Display`](fmt::Display), so unselected fleet-tail candidates cost no formatting or
/// allocation (NFR2 explainability without O(n) `format!` calls).
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionNote {
    /// No decision recorded (entries outside any policy run).
    None,
    /// Threshold met and selected.
    ThresholdMet {
        /// Tested trait.
        trait_name: Arc<str>,
        /// Observed value.
        value: f64,
        /// Selection threshold.
        min_value: f64,
    },
    /// Below the selection threshold.
    ThresholdBelow {
        /// Tested trait.
        trait_name: Arc<str>,
        /// Observed value.
        value: f64,
        /// Selection threshold.
        min_value: f64,
    },
    /// Above threshold but dropped by the `max_k` safety cap. (The seed
    /// mislabeled these with the below-threshold note.)
    ThresholdOverCap {
        /// Tested trait.
        trait_name: Arc<str>,
        /// Observed value.
        value: f64,
        /// Selection threshold.
        min_value: f64,
        /// The cap that excluded the candidate.
        cap: usize,
    },
    /// Ranked within the top-k.
    RankWithinK {
        /// 1-based rank.
        rank: usize,
        /// Selection size.
        k: usize,
    },
    /// Ranked beyond the top-k (exact rank known: prefix row).
    RankBeyondK {
        /// 1-based rank.
        rank: usize,
        /// Selection size.
        k: usize,
    },
    /// Beyond both the top-k and the materialized prefix; exact rank not
    /// computed (the whole point of partial selection).
    BeyondPrefix {
        /// Selection size.
        k: usize,
    },
    /// Selected under a compute budget; `spent` is the running total
    /// after this selection.
    FitsBudget {
        /// Budget consumed so far.
        spent: f64,
        /// Total budget.
        budget: f64,
    },
    /// Not selected: would overshoot the budget.
    OverBudget {
        /// This candidate's cost.
        cost: f64,
        /// Budget consumed when the candidate was considered.
        spent: f64,
        /// Total budget.
        budget: f64,
    },
    /// Not selected under a quota-aware budget (§7 reports no figures).
    OverBudgetBare,
    /// Quota-aware rank (exact rank known: prefix row).
    QuotaRank {
        /// 1-based rank.
        rank: usize,
    },
    /// Quota-aware, beyond the materialized prefix.
    QuotaBeyondPrefix,
    /// Dropped during orient because a trait computer produced NaN.
    NanTrait {
        /// The offending trait.
        trait_name: Arc<str>,
    },
}

impl fmt::Display for DecisionNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionNote::None => Ok(()),
            DecisionNote::ThresholdMet {
                trait_name,
                value,
                min_value,
            } => write!(f, "{trait_name} {value:.3} >= {min_value:.3}"),
            DecisionNote::ThresholdBelow {
                trait_name,
                value,
                min_value,
            } => write!(f, "{trait_name} {value:.3} < {min_value:.3}"),
            DecisionNote::ThresholdOverCap {
                trait_name,
                value,
                min_value,
                cap,
            } => write!(
                f,
                "{trait_name} {value:.3} >= {min_value:.3} but over cap k={cap}"
            ),
            DecisionNote::RankWithinK { rank, k } => write!(f, "rank {rank} <= k={k}"),
            DecisionNote::RankBeyondK { rank, k } => write!(f, "rank {rank} > k={k}"),
            DecisionNote::BeyondPrefix { k } => write!(f, "rank > k={k}"),
            DecisionNote::FitsBudget { spent, budget } => {
                write!(f, "fits budget ({spent:.2}/{budget:.2})")
            }
            DecisionNote::OverBudget {
                cost,
                spent,
                budget,
            } => write!(
                f,
                "over budget (cost {cost:.2}, spent {spent:.2}/{budget:.2})"
            ),
            DecisionNote::OverBudgetBare => write!(f, "over budget"),
            DecisionNote::QuotaRank { rank } => write!(f, "quota-aware rank {rank}"),
            DecisionNote::QuotaBeyondPrefix => write!(f, "quota-aware rank > prefix"),
            DecisionNote::NanTrait { trait_name } => {
                write!(f, "orient: trait '{trait_name}' is NaN")
            }
        }
    }
}

/// Decide-phase access to the per-candidate inputs that are *not* trait
/// values: identity (rank tie-breaks and report ids) and the §7 quota
/// signal. Implemented by `[Candidate]` for callers that hold
/// materialized candidates, and by the pipeline's observation-backed
/// source so the hot cycle ranks straight off a
/// [`FleetObservation`](crate::observe::FleetObservation) without ever
/// building `Candidate` structs.
pub trait RankSource {
    /// Number of candidates (must equal the trait matrix's row count).
    fn len(&self) -> usize;

    /// Whether the source holds no candidates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Identity of the candidate at `index`, materialized for a
    /// [`RankedEntry`]. Called once per returned entry.
    fn id(&self, index: usize) -> CandidateId;

    /// Orders two candidates by identity (the rank tie-break). Must agree
    /// with `self.id(a).cmp(&self.id(b))`; sources that can compare
    /// without materializing ids (e.g. observation-backed ones borrowing
    /// partition labels) avoid per-comparison clones in the selection
    /// hot path.
    fn cmp_ids(&self, a: usize, b: usize) -> std::cmp::Ordering;

    /// Quota utilization of the candidate's database (0.0 when the
    /// platform reports none) — the §7 quota-aware weighting input.
    fn quota_utilization(&self, index: usize) -> f64;
}

impl RankSource for [Candidate] {
    fn len(&self) -> usize {
        self.len()
    }
    fn id(&self, index: usize) -> CandidateId {
        self[index].id.clone()
    }
    fn cmp_ids(&self, a: usize, b: usize) -> std::cmp::Ordering {
        self[a].id.cmp(&self[b].id)
    }
    fn quota_utilization(&self, index: usize) -> f64 {
        self[index]
            .stats
            .quota
            .map(|q| q.utilization())
            .unwrap_or(0.0)
    }
}

/// One ranked candidate with its decision trail (NFR2 explainability).
///
/// Entries are columnar-friendly: they carry the candidate's `index` into
/// the cycle's candidate slice / [`TraitMatrix`] rows instead of cloned
/// trait maps, and the `note` is a lazy [`DecisionNote`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankedEntry {
    /// Candidate identity.
    pub id: CandidateId,
    /// Row index into the cycle's candidate slice and trait matrix.
    pub index: usize,
    /// Scalarized score (or raw trait value for threshold policies).
    pub score: f64,
    /// Whether the decide phase selected this candidate.
    pub selected: bool,
    /// Why it was (not) selected; rendered on [`Display`](fmt::Display).
    pub note: DecisionNote,
}

impl RankedEntry {
    /// Looks up one of this entry's trait values in the cycle matrix.
    pub fn trait_value(&self, matrix: &TraitMatrix, name: &str) -> Option<f64> {
        matrix.trait_id(name).map(|id| matrix.value(self.index, id))
    }
}

/// Min–max normalizes `values`; constant inputs map to 0.5 (§4.3's
/// normalization, with the degenerate case pinned deterministically).
pub fn min_max_normalize(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let (min, max) = column_min_max(values);
    let span = max - min;
    values.iter().map(|v| normalize(*v, min, span)).collect()
}

/// The §4.3 min–max rule for one value given its column's min and span:
/// constant columns (span below epsilon) pin to 0.5. Single source of
/// truth for every scalarization site in this module.
#[inline]
fn normalize(v: f64, min: f64, span: f64) -> f64 {
    if span.abs() < f64::EPSILON {
        0.5
    } else {
        (v - min) / span
    }
}

fn column_min_max(values: &[f64]) -> (f64, f64) {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (min, max)
}

fn validate_weights(weights: &[TraitWeight]) -> Result<()> {
    if weights.is_empty() {
        return Err(AutoCompError::InvalidWeights("no weights given".into()));
    }
    let sum: f64 = weights.iter().map(|w| w.weight).sum();
    if weights.iter().any(|w| w.weight <= 0.0) {
        return Err(AutoCompError::InvalidWeights(
            "weights must be positive".into(),
        ));
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(AutoCompError::InvalidWeights(format!(
            "weights sum to {sum}, expected 1"
        )));
    }
    Ok(())
}

/// Sort key mapping that keeps ordering total and seed-compatible:
/// NaN ranks last on a descending sort, and ±0.0 compare equal so ties
/// still break on candidate id (like the seed's `partial_cmp`).
#[inline]
fn sort_key(score: f64) -> f64 {
    if score.is_nan() {
        f64::NEG_INFINITY
    } else if score == 0.0 {
        0.0
    } else {
        score
    }
}

/// Lazily materializes the fleet's rank order (score descending, ties by
/// candidate id): `ensure(upto)` extends the sorted prefix by partial
/// selection — `select_nth_unstable_by` to split off the next chunk, then
/// a sort of just that chunk — with doubling chunk growth, so consuming k
/// of n candidates costs O(n + k log k) instead of a full O(n log n) sort.
struct RankOrder<'a, S: RankSource + ?Sized> {
    indices: Vec<u32>,
    sorted_upto: usize,
    /// `sort_key(score)` precomputed once per candidate: the selection
    /// comparator runs O(n) times per `ensure` growth and the NaN/±0
    /// normalization branches are hoisted out of it.
    keys: Vec<f64>,
    source: &'a S,
}

impl<'a, S: RankSource + ?Sized> RankOrder<'a, S> {
    fn new(scores: &'a [f64], source: &'a S) -> Self {
        debug_assert_eq!(scores.len(), source.len());
        RankOrder {
            indices: (0..source.len() as u32).collect(),
            sorted_upto: 0,
            keys: scores.iter().map(|s| sort_key(*s)).collect(),
            source,
        }
    }

    /// Guarantees `indices[..upto]` is in exact rank order.
    fn ensure(&mut self, upto: usize) {
        let n = self.indices.len();
        let upto = upto.min(n);
        while self.sorted_upto < upto {
            let target = upto.max(self.sorted_upto * 2).max(64).min(n);
            let keys = &self.keys;
            let source = self.source;
            let key = |a: &u32, b: &u32| {
                keys[*b as usize]
                    .total_cmp(&keys[*a as usize])
                    .then_with(|| source.cmp_ids(*a as usize, *b as usize))
            };
            let tail = &mut self.indices[self.sorted_upto..];
            let pivot = target - self.sorted_upto;
            if pivot < tail.len() {
                tail.select_nth_unstable_by(pivot, key);
            }
            self.indices[self.sorted_upto..target].sort_unstable_by(key);
            self.sorted_upto = target;
        }
    }

    #[inline]
    fn at(&self, pos: usize) -> usize {
        self.indices[pos] as usize
    }

    fn len(&self) -> usize {
        self.indices.len()
    }
}

/// Assembles the output vector: the materialized rank-order prefix first
/// (with per-position notes), then every remaining candidate in candidate
/// order (with a shared tail note).
fn assemble_entries<S: RankSource + ?Sized>(
    source: &S,
    scores: &[f64],
    order: &RankOrder<'_, S>,
    prefix: usize,
    mut prefix_entry: impl FnMut(usize, usize) -> (bool, DecisionNote),
    mut tail_note: impl FnMut(usize) -> (bool, DecisionNote),
) -> Vec<RankedEntry> {
    let n = source.len();
    let mut entries = Vec::with_capacity(n);
    let mut in_prefix = vec![false; n];
    for pos in 0..prefix {
        let index = order.at(pos);
        in_prefix[index] = true;
        let (selected, note) = prefix_entry(pos, index);
        entries.push(RankedEntry {
            id: source.id(index),
            index,
            score: scores[index],
            selected,
            note,
        });
    }
    for index in 0..n {
        if in_prefix[index] {
            continue;
        }
        let (selected, note) = tail_note(index);
        entries.push(RankedEntry {
            id: source.id(index),
            index,
            score: scores[index],
            selected,
            note,
        });
    }
    entries
}

/// Ranks candidates under `policy` given their columnar trait matrix.
/// Returns entries best-first for the materialized prefix (all selected
/// candidates plus at least [`RANKED_PREFIX_MIN`] rows), then remaining
/// candidates in candidate order; selection flags and notes record the
/// decision trail.
pub fn rank_and_select(
    candidates: &[Candidate],
    matrix: &TraitMatrix,
    policy: &RankingPolicy,
) -> Result<Vec<RankedEntry>> {
    rank_and_select_source(candidates, matrix, policy)
}

/// [`rank_and_select`] over any [`RankSource`] — the entry point the
/// index-native pipeline uses to rank observation-backed candidates
/// without materializing them. Output is identical to ranking the
/// equivalent `&[Candidate]` slice.
pub fn rank_and_select_source<S: RankSource + ?Sized>(
    source: &S,
    matrix: &TraitMatrix,
    policy: &RankingPolicy,
) -> Result<Vec<RankedEntry>> {
    if source.is_empty() {
        return Ok(Vec::new());
    }
    debug_assert_eq!(matrix.rows(), source.len());
    match policy {
        RankingPolicy::Threshold {
            trait_name,
            min_value,
            max_k,
        } => {
            let id = matrix
                .trait_id(trait_name)
                .ok_or_else(|| AutoCompError::UnknownTrait(trait_name.clone()))?;
            let scores = matrix.col(id);
            let name: Arc<str> = Arc::from(trait_name.as_str());
            let cap = max_k.unwrap_or(usize::MAX);
            let above = scores.iter().filter(|s| **s >= *min_value).count();
            let sel = above.min(cap);
            let mut order = RankOrder::new(scores, source);
            let prefix = sel.max(RANKED_PREFIX_MIN).min(source.len());
            order.ensure(prefix);
            let note_for = |index: usize, ranked_in: Option<usize>| {
                let value = scores[index];
                if value >= *min_value {
                    match ranked_in {
                        Some(pos) if pos < sel => DecisionNote::ThresholdMet {
                            trait_name: name.clone(),
                            value,
                            min_value: *min_value,
                        },
                        _ => DecisionNote::ThresholdOverCap {
                            trait_name: name.clone(),
                            value,
                            min_value: *min_value,
                            cap,
                        },
                    }
                } else {
                    DecisionNote::ThresholdBelow {
                        trait_name: name.clone(),
                        value,
                        min_value: *min_value,
                    }
                }
            };
            Ok(assemble_entries(
                source,
                scores,
                &order,
                prefix,
                |pos, index| {
                    (
                        pos < sel && scores[index] >= *min_value,
                        note_for(index, Some(pos)),
                    )
                },
                |index| (false, note_for(index, None)),
            ))
        }
        RankingPolicy::Moop { weights, k } => {
            validate_weights(weights)?;
            let scores = moop_scores(matrix, weights)?;
            let sel = (*k).min(source.len());
            let mut order = RankOrder::new(&scores, source);
            let prefix = sel.max(RANKED_PREFIX_MIN).min(source.len());
            order.ensure(prefix);
            Ok(assemble_entries(
                source,
                &scores,
                &order,
                prefix,
                |pos, _| {
                    let rank = pos + 1;
                    if pos < *k {
                        (true, DecisionNote::RankWithinK { rank, k: *k })
                    } else {
                        (false, DecisionNote::RankBeyondK { rank, k: *k })
                    }
                },
                |_| (false, DecisionNote::BeyondPrefix { k: *k }),
            ))
        }
        RankingPolicy::BudgetedMoop {
            weights,
            cost_trait,
            budget,
            max_k,
        } => {
            validate_weights(weights)?;
            let cost_id = matrix
                .trait_id(cost_trait)
                .ok_or_else(|| AutoCompError::UnknownTrait(cost_trait.clone()))?;
            let scores = moop_scores(matrix, weights)?;
            let costs = matrix.col(cost_id);
            let order = RankOrder::new(&scores, source);
            Ok(budget_scan(
                source,
                &scores,
                costs,
                order,
                *budget,
                max_k.unwrap_or(usize::MAX),
                BudgetNotes::Detailed,
            ))
        }
        RankingPolicy::QuotaAwareMoop {
            benefit_trait,
            cost_trait,
            k,
            budget,
        } => {
            let benefit_id = matrix
                .trait_id(benefit_trait)
                .ok_or_else(|| AutoCompError::UnknownTrait(benefit_trait.clone()))?;
            let cost_id = matrix
                .trait_id(cost_trait)
                .ok_or_else(|| AutoCompError::UnknownTrait(cost_trait.clone()))?;
            let benefit_col = matrix.col(benefit_id);
            let cost_col = matrix.col(cost_id);
            let (bmin, bmax) = column_min_max(benefit_col);
            let (cmin, cmax) = column_min_max(cost_col);
            let bspan = bmax - bmin;
            let cspan = cmax - cmin;
            let scores: Vec<f64> = (0..source.len())
                .map(|i| {
                    let util = source.quota_utilization(i);
                    // §7: w1 = 0.5 × (1 + Used/Total). Clamp so w2 ≥ 0 even
                    // for over-quota databases.
                    let w1 = (0.5 * (1.0 + util)).min(1.0);
                    let w2 = 1.0 - w1;
                    w1 * normalize(benefit_col[i], bmin, bspan)
                        - w2 * normalize(cost_col[i], cmin, cspan)
                })
                .collect();
            match (k, budget) {
                (Some(k), _) => {
                    let sel = (*k).min(source.len());
                    let mut order = RankOrder::new(&scores, source);
                    let prefix = sel.max(RANKED_PREFIX_MIN).min(source.len());
                    order.ensure(prefix);
                    Ok(assemble_entries(
                        source,
                        &scores,
                        &order,
                        prefix,
                        |pos, _| (pos < *k, DecisionNote::QuotaRank { rank: pos + 1 }),
                        |_| (false, DecisionNote::QuotaBeyondPrefix),
                    ))
                }
                (None, Some(budget)) => {
                    let order = RankOrder::new(&scores, source);
                    Ok(budget_scan(
                        source,
                        &scores,
                        cost_col,
                        order,
                        *budget,
                        usize::MAX,
                        BudgetNotes::Bare,
                    ))
                }
                (None, None) => Err(AutoCompError::InvalidConfig(
                    "QuotaAwareMoop needs k or budget".into(),
                )),
            }
        }
    }
}

/// Which note flavor a budget scan writes for unselected candidates: the
/// BudgetedMoop policy reports figures, the quota-aware §7 variant does
/// not (seed behavior preserved for both).
#[derive(Clone, Copy)]
enum BudgetNotes {
    Detailed,
    Bare,
}

/// Tracks the minimum cost over the candidates the budget scan has not
/// yet walked: a suffix min over the lazily sorted region plus a running
/// min over the still-unsorted tail. Unlike a global min (the previous
/// early-out bound), consumed candidates drop out of the bound — so once
/// the cheapest *remaining* candidate cannot fit, the scan stops instead
/// of walking (and rank-ordering) the rest of the fleet.
struct RemainingMinCost {
    /// `sorted_suffix_min[pos]` = min cost over sorted positions ≥ `pos`.
    sorted_suffix_min: Vec<f64>,
    /// Min cost over the unsorted tail (`+∞` when empty or all-NaN; the
    /// NaN-ignoring `f64::min` keeps NaN costs from poisoning the bound).
    tail_min: f64,
}

impl RemainingMinCost {
    /// Starts with an empty sorted region: the tail is the whole fleet.
    fn new(costs: &[f64]) -> Self {
        RemainingMinCost {
            sorted_suffix_min: Vec::new(),
            tail_min: costs.iter().cloned().fold(f64::INFINITY, f64::min),
        }
    }

    /// Rebuilds the bound after the sorted region grew. The suffix-array
    /// rebuild telescopes to O(n) over a full scan (doubling growth); the
    /// tail rescan is O(tail) per growth, matching the O(tail)
    /// `select_nth_unstable_by` pass `RankOrder::ensure` just paid for
    /// the same growth — a constant-factor addition, never a new
    /// asymptotic term.
    fn refresh<S: RankSource + ?Sized>(&mut self, order: &RankOrder<'_, S>, costs: &[f64]) {
        if self.sorted_suffix_min.len() == order.sorted_upto {
            return;
        }
        self.sorted_suffix_min.resize(order.sorted_upto, 0.0);
        let mut min = f64::INFINITY;
        for pos in (0..order.sorted_upto).rev() {
            min = min.min(costs[order.at(pos)]);
            self.sorted_suffix_min[pos] = min;
        }
        self.tail_min = order.indices[order.sorted_upto..]
            .iter()
            .map(|i| costs[*i as usize])
            .fold(f64::INFINITY, f64::min);
    }

    /// Min cost over every candidate at walk position ≥ `walked`.
    fn at(&self, walked: usize) -> f64 {
        let sorted = self
            .sorted_suffix_min
            .get(walked)
            .copied()
            .unwrap_or(f64::INFINITY);
        sorted.min(self.tail_min)
    }
}

/// Greedy budget fit over lazily materialized rank order. The scan walks
/// best-first exactly like the seed, but stops expanding the sorted
/// region once the selection cap is hit or once not even the cheapest
/// *remaining* (unwalked) candidate fits the leftover budget — after
/// that point no further selection (and no rank-dependent note) is
/// possible, so the rest of the fleet never needs ordering.
fn budget_scan<S: RankSource + ?Sized>(
    source: &S,
    scores: &[f64],
    costs: &[f64],
    mut order: RankOrder<'_, S>,
    budget: f64,
    cap: usize,
    notes: BudgetNotes,
) -> Vec<RankedEntry> {
    let n = order.len();
    let mut remaining_min = RemainingMinCost::new(costs);
    let mut spent = 0.0;
    let mut taken = 0usize;
    let mut walked = 0usize;
    let mut decisions: Vec<(bool, DecisionNote)> = Vec::new();
    while walked < n {
        // remaining_min is +∞ when every remaining cost is NaN, so this
        // comparison never sees NaN.
        if taken >= cap || spent + remaining_min.at(walked) > budget {
            break;
        }
        order.ensure(walked + 1);
        remaining_min.refresh(&order, costs);
        let index = order.at(walked);
        let cost = costs[index];
        if taken < cap && spent + cost <= budget {
            spent += cost;
            taken += 1;
            decisions.push((true, DecisionNote::FitsBudget { spent, budget }));
        } else {
            decisions.push((
                false,
                match notes {
                    BudgetNotes::Detailed => DecisionNote::OverBudget {
                        cost,
                        spent,
                        budget,
                    },
                    BudgetNotes::Bare => DecisionNote::OverBudgetBare,
                },
            ));
        }
        walked += 1;
    }
    // Materialize the report prefix even when the budget exhausted early.
    let prefix = walked.max(RANKED_PREFIX_MIN.min(n));
    order.ensure(prefix);
    let unprocessed_note = |index: usize| match notes {
        BudgetNotes::Detailed => DecisionNote::OverBudget {
            cost: costs[index],
            spent,
            budget,
        },
        BudgetNotes::Bare => DecisionNote::OverBudgetBare,
    };
    assemble_entries(
        source,
        scores,
        &order,
        prefix,
        |pos, index| {
            if pos < decisions.len() {
                decisions[pos].clone()
            } else {
                (false, unprocessed_note(index))
            }
        },
        |index| (false, unprocessed_note(index)),
    )
}

/// Weighted-sum scalarization over matrix columns: one fused
/// normalize-and-accumulate pass per weight, no intermediate columns.
fn moop_scores(matrix: &TraitMatrix, weights: &[TraitWeight]) -> Result<Vec<f64>> {
    let mut scores = vec![0.0; matrix.rows()];
    for w in weights {
        let id = matrix
            .trait_id(&w.trait_name)
            .ok_or_else(|| AutoCompError::UnknownTrait(w.trait_name.clone()))?;
        let direction = matrix
            .direction(id)
            .ok_or_else(|| AutoCompError::UnknownTrait(w.trait_name.clone()))?;
        let col = matrix.col(id);
        let (min, max) = column_min_max(col);
        let span = max - min;
        let sign = match direction {
            crate::traits::TraitDirection::Benefit => 1.0,
            crate::traits::TraitDirection::Cost => -1.0,
        };
        // The constant-column branch is hoisted out of the row loop; both
        // arms apply the shared `normalize` rule.
        if span.abs() < f64::EPSILON {
            for s in scores.iter_mut() {
                *s += sign * w.weight * 0.5;
            }
        } else {
            for (s, v) in scores.iter_mut().zip(col) {
                *s += sign * w.weight * normalize(*v, min, span);
            }
        }
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{CandidateStats, QuotaSignal};
    use crate::traits::TraitDirection;
    use std::collections::BTreeMap;

    fn candidate(uid: u64, quota_util: Option<f64>) -> Candidate {
        Candidate {
            id: CandidateId::table(uid),
            database: "db".into(),
            table_name: format!("t{uid}").into(),
            compaction_enabled: true,
            is_intermediate: false,
            stats: CandidateStats {
                quota: quota_util.map(|u| QuotaSignal {
                    used: (u * 100.0) as u64,
                    total: 100,
                }),
                ..CandidateStats::default()
            },
        }
    }

    fn traits(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn directions() -> BTreeMap<String, TraitDirection> {
        [
            ("benefit".to_string(), TraitDirection::Benefit),
            ("cost".to_string(), TraitDirection::Cost),
        ]
        .into_iter()
        .collect()
    }

    fn matrix(tv: &[BTreeMap<String, f64>]) -> TraitMatrix {
        TraitMatrix::from_maps(tv, &directions()).unwrap()
    }

    #[test]
    fn normalization_handles_constant_and_spread() {
        assert_eq!(min_max_normalize(&[5.0, 5.0]), vec![0.5, 0.5]);
        let n = min_max_normalize(&[0.0, 5.0, 10.0]);
        assert_eq!(n, vec![0.0, 0.5, 1.0]);
        assert!(min_max_normalize(&[]).is_empty());
    }

    #[test]
    fn threshold_selects_above_minimum() {
        let cands = vec![candidate(1, None), candidate(2, None), candidate(3, None)];
        let tv = vec![
            traits(&[("benefit", 5.0)]),
            traits(&[("benefit", 15.0)]),
            traits(&[("benefit", 25.0)]),
        ];
        let policy = RankingPolicy::Threshold {
            trait_name: "benefit".into(),
            min_value: 10.0,
            max_k: None,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(3));
        assert!(ranked[0].selected && ranked[1].selected);
        assert!(!ranked[2].selected);
        assert_eq!(ranked[0].note.to_string(), "benefit 25.000 >= 10.000");
        assert_eq!(ranked[2].note.to_string(), "benefit 5.000 < 10.000");
    }

    #[test]
    fn threshold_cap_gets_a_distinct_note() {
        // Three candidates above threshold, cap of 1: the two dropped by
        // the cap must say so, not pretend they were below threshold (the
        // seed bug).
        let cands = vec![candidate(1, None), candidate(2, None), candidate(3, None)];
        let tv = vec![
            traits(&[("benefit", 30.0)]),
            traits(&[("benefit", 20.0)]),
            traits(&[("benefit", 5.0)]),
        ];
        let policy = RankingPolicy::Threshold {
            trait_name: "benefit".into(),
            min_value: 10.0,
            max_k: Some(1),
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert!(ranked[0].selected);
        assert!(!ranked[1].selected);
        assert_eq!(
            ranked[1].note.to_string(),
            "benefit 20.000 >= 10.000 but over cap k=1"
        );
        assert_eq!(ranked[2].note.to_string(), "benefit 5.000 < 10.000");
    }

    #[test]
    fn moop_balances_benefit_against_cost() {
        // The §4.2 motivating example: candidate 1 yields nearly the same
        // benefit as candidate 2 at a tenth of the cost, so it must rank
        // first. Candidate 3 anchors the min–max normalization (with only
        // two candidates every trait normalizes to {0,1}, which is the
        // known degenerate case of min–max scalarization).
        let cands = vec![candidate(1, None), candidate(2, None), candidate(3, None)];
        let tv = vec![
            traits(&[("benefit", 200.0), ("cost", 10.0)]),
            traits(&[("benefit", 210.0), ("cost", 100.0)]),
            traits(&[("benefit", 0.0), ("cost", 0.0)]),
        ];
        let policy = RankingPolicy::Moop {
            weights: vec![
                TraitWeight::new("benefit", 0.7),
                TraitWeight::new("cost", 0.3),
            ],
            k: 1,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(1), "ratio should win");
        assert!(ranked[0].selected);
        assert!(!ranked[1].selected);
        assert_eq!(ranked[0].note.to_string(), "rank 1 <= k=1");
        assert_eq!(ranked[1].note.to_string(), "rank 2 > k=1");
    }

    #[test]
    fn moop_rejects_bad_weights() {
        let cands = vec![candidate(1, None)];
        let tv = vec![traits(&[("benefit", 1.0)])];
        let bad_sum = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("benefit", 0.5)],
            k: 1,
        };
        assert!(matches!(
            rank_and_select(&cands, &matrix(&tv), &bad_sum),
            Err(AutoCompError::InvalidWeights(_))
        ));
        let unknown = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("nope", 1.0)],
            k: 1,
        };
        assert!(matches!(
            rank_and_select(&cands, &matrix(&tv), &unknown),
            Err(AutoCompError::UnknownTrait(_))
        ));
    }

    #[test]
    fn moop_requires_a_direction_for_weighted_traits() {
        // A trait present in the matrix but with no declared direction
        // cannot be scalarized (seed: missing `directions` entry).
        let cands = vec![candidate(1, None), candidate(2, None)];
        let tv = vec![traits(&[("mystery", 1.0)]), traits(&[("mystery", 2.0)])];
        let m = TraitMatrix::from_maps(&tv, &BTreeMap::new()).unwrap();
        let policy = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("mystery", 1.0)],
            k: 1,
        };
        assert!(matches!(
            rank_and_select(&cands, &m, &policy),
            Err(AutoCompError::UnknownTrait(_))
        ));
    }

    #[test]
    fn budget_selection_is_dynamic_k() {
        let cands: Vec<Candidate> = (1..=4).map(|i| candidate(i, None)).collect();
        let tv = vec![
            traits(&[("benefit", 100.0), ("cost", 60.0)]),
            traits(&[("benefit", 90.0), ("cost", 30.0)]),
            traits(&[("benefit", 80.0), ("cost", 30.0)]),
            traits(&[("benefit", 10.0), ("cost", 1.0)]),
        ];
        let policy = RankingPolicy::BudgetedMoop {
            weights: vec![
                TraitWeight::new("benefit", 0.7),
                TraitWeight::new("cost", 0.3),
            ],
            cost_trait: "cost".into(),
            budget: 65.0,
            max_k: None,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        let selected: Vec<u64> = ranked
            .iter()
            .filter(|e| e.selected)
            .map(|e| e.id.table_uid)
            .collect();
        // Greedy fit: best-scored first while budget lasts; candidate 1
        // (cost 60) takes most of the budget, then only candidate 4 fits.
        let spent: f64 = ranked
            .iter()
            .filter(|e| e.selected)
            .map(|e| match e.id.table_uid {
                1 => 60.0,
                2 | 3 => 30.0,
                _ => 1.0,
            })
            .sum();
        assert!(spent <= 65.0, "spent {spent}");
        assert!(!selected.is_empty());
    }

    #[test]
    fn budget_scan_stops_once_no_remaining_candidate_fits() {
        // The cheapest candidate ranks first (highest score) and consumes
        // most of the budget; every *remaining* candidate costs more than
        // the leftover. The suffix-min early-out must stop the rank walk
        // right after the selection instead of materializing the full
        // fleet order — observable because the unwalked tail stays in
        // candidate order (ascending index) rather than rank order
        // (descending score ⇒ descending index here).
        let n = 60u64;
        let cands: Vec<Candidate> = (1..=n).map(|i| candidate(i, None)).collect();
        let tv: Vec<BTreeMap<String, f64>> = (1..=n)
            .map(|i| {
                let cost = if i == n { 10.0 } else { 50.0 };
                traits(&[("benefit", i as f64), ("cost", cost)])
            })
            .collect();
        let policy = RankingPolicy::BudgetedMoop {
            weights: vec![TraitWeight::new("benefit", 1.0)],
            cost_trait: "cost".into(),
            budget: 15.0,
            max_k: None,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        let selected: Vec<u64> = ranked
            .iter()
            .filter(|e| e.selected)
            .map(|e| e.id.table_uid)
            .collect();
        assert_eq!(selected, vec![n], "only the cheap top candidate fits");
        // Prefix rows (report) are rank-ordered; the tail is in candidate
        // order, proving the walk stopped at the early-out.
        for w in ranked[RANKED_PREFIX_MIN..].windows(2) {
            assert!(
                w[0].index < w[1].index,
                "tail must be candidate-ordered (walk stopped early)"
            );
        }
        // Every unselected entry reports the budget verdict.
        assert!(ranked
            .iter()
            .filter(|e| !e.selected)
            .all(|e| e.note.to_string().starts_with("over budget")));
    }

    #[test]
    fn quota_pressure_boosts_priority() {
        // Same traits, different quota pressure: the fuller database's
        // candidate must rank first (§7's w1 formula).
        let cands = vec![candidate(1, Some(0.1)), candidate(2, Some(0.9))];
        let tv = vec![
            traits(&[("benefit", 50.0), ("cost", 50.0)]),
            traits(&[("benefit", 50.0), ("cost", 50.0)]),
        ];
        let policy = RankingPolicy::QuotaAwareMoop {
            benefit_trait: "benefit".into(),
            cost_trait: "cost".into(),
            k: Some(1),
            budget: None,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(2));
        assert!(ranked[0].selected);
        assert_eq!(ranked[0].note.to_string(), "quota-aware rank 1");
    }

    #[test]
    fn quota_policy_requires_k_or_budget() {
        let cands = vec![candidate(1, None)];
        let tv = vec![traits(&[("benefit", 1.0), ("cost", 1.0)])];
        let policy = RankingPolicy::QuotaAwareMoop {
            benefit_trait: "benefit".into(),
            cost_trait: "cost".into(),
            k: None,
            budget: None,
        };
        assert!(matches!(
            rank_and_select(&cands, &matrix(&tv), &policy),
            Err(AutoCompError::InvalidConfig(_))
        ));
    }

    #[test]
    fn ties_break_on_candidate_id() {
        let cands = vec![candidate(2, None), candidate(1, None)];
        let tv = vec![traits(&[("benefit", 5.0)]), traits(&[("benefit", 5.0)])];
        let policy = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("benefit", 1.0)],
            k: 1,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(1), "lower id wins ties");
    }

    #[test]
    fn nan_scores_rank_last_without_panicking() {
        // The seed's `partial_cmp(...).expect(...)` turned one NaN trait
        // into a fleet-wide cycle abort; the columnar path totals the
        // order instead.
        let cands = vec![candidate(1, None), candidate(2, None), candidate(3, None)];
        let tv = vec![
            traits(&[("benefit", f64::NAN)]),
            traits(&[("benefit", 15.0)]),
            traits(&[("benefit", 25.0)]),
        ];
        let policy = RankingPolicy::Threshold {
            trait_name: "benefit".into(),
            min_value: 10.0,
            max_k: None,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(3));
        assert_eq!(ranked[1].id, CandidateId::table(2));
        assert_eq!(ranked[2].id, CandidateId::table(1));
        assert!(!ranked[2].selected, "NaN never satisfies a threshold");
    }

    #[test]
    fn tail_entries_follow_in_candidate_order() {
        // 50 candidates, k=2: the first max(k, RANKED_PREFIX_MIN) entries
        // are in exact rank order; the tail is in candidate order.
        let cands: Vec<Candidate> = (1..=50).map(|i| candidate(i, None)).collect();
        let tv: Vec<BTreeMap<String, f64>> = (1..=50)
            .map(|i| traits(&[("benefit", f64::from(i % 17) * 3.0)]))
            .collect();
        let policy = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("benefit", 1.0)],
            k: 2,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked.len(), 50);
        assert_eq!(ranked.iter().filter(|e| e.selected).count(), 2);
        // Prefix in strict rank order.
        for w in ranked[..RANKED_PREFIX_MIN].windows(2) {
            assert!(w[0].score > w[1].score || (w[0].score == w[1].score && w[0].id < w[1].id));
        }
        // Tail in candidate-index order.
        for w in ranked[RANKED_PREFIX_MIN..].windows(2) {
            assert!(w[0].index < w[1].index);
        }
        // Every candidate appears exactly once.
        let mut seen: Vec<usize> = ranked.iter().map(|e| e.index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }
}
