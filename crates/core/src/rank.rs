//! Candidate ranking and selection (the decide phase, §4.3).
//!
//! Two scenarios from the paper:
//!
//! * **Unconstrained resources** — a threshold decision function: any
//!   candidate whose trait exceeds the threshold is compacted.
//! * **Resource-constrained** — the MOOP formulation: min–max normalize
//!   each trait over the candidate set, scalarize with weights summing to
//!   1 (`S_c = w1·T'₁ − w2·T'₂`), rank descending, then select top-k or
//!   greedily fit a compute budget (dynamic k, §7).
//!
//! The production deployment's quota-aware weighting (§7),
//! `w1 = 0.5 × (1 + UsedQuota/TotalQuota)`, is a per-candidate weight
//! variant.

use std::collections::BTreeMap;

use crate::candidate::{Candidate, CandidateId};
use crate::error::AutoCompError;
use crate::traits::TraitDirection;
use crate::Result;

/// One weighted objective in a MOOP policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TraitWeight {
    /// Trait name (must match a registered computer).
    pub trait_name: String,
    /// Weight; all weights must be positive and sum to 1.
    pub weight: f64,
}

impl TraitWeight {
    /// Convenience constructor.
    pub fn new(trait_name: impl Into<String>, weight: f64) -> Self {
        TraitWeight {
            trait_name: trait_name.into(),
            weight,
        }
    }
}

/// Ranking and selection policy.
#[derive(Debug, Clone, PartialEq)]
pub enum RankingPolicy {
    /// Unconstrained scenario (§4.3): select every candidate whose trait
    /// value meets the threshold, ranked by that value.
    Threshold {
        /// Trait to test.
        trait_name: String,
        /// Minimum value for selection.
        min_value: f64,
        /// Optional cap on selections (safety valve).
        max_k: Option<usize>,
    },
    /// Weighted-sum MOOP with top-k selection (§4.3 / §6: k=10 table
    /// scope, k=50/500 hybrid).
    Moop {
        /// Objective weights (positive, summing to 1).
        weights: Vec<TraitWeight>,
        /// Number of candidates to select.
        k: usize,
    },
    /// Weighted-sum MOOP with a compute budget instead of a fixed k: the
    /// dynamic-k selection the production deployment moved to in week 22
    /// (§7, 226 TBHr budget → k≈2500).
    BudgetedMoop {
        /// Objective weights (positive, summing to 1).
        weights: Vec<TraitWeight>,
        /// Trait holding each candidate's cost (raw, unnormalized units).
        cost_trait: String,
        /// Total budget in the cost trait's units (e.g. GBHr).
        budget: f64,
        /// Optional cap on selections.
        max_k: Option<usize>,
    },
    /// Production quota-aware weighting (§7): per-candidate
    /// `w1 = 0.5 × (1 + quota utilization)`, `w2 = 1 − w1`, scored as
    /// `w1·benefit' − w2·cost'`.
    QuotaAwareMoop {
        /// Benefit trait name.
        benefit_trait: String,
        /// Cost trait name.
        cost_trait: String,
        /// Fixed k (`None` = select by `budget`).
        k: Option<usize>,
        /// Budget in raw cost units (used when `k` is `None`).
        budget: Option<f64>,
    },
}

/// One ranked candidate with its decision trail (NFR2 explainability).
#[derive(Debug, Clone, PartialEq)]
pub struct RankedEntry {
    /// Candidate identity.
    pub id: CandidateId,
    /// Scalarized score (or raw trait value for threshold policies).
    pub score: f64,
    /// The trait values that produced the score.
    pub traits: BTreeMap<String, f64>,
    /// Whether the decide phase selected this candidate.
    pub selected: bool,
    /// Why it was (not) selected.
    pub note: String,
}

/// Min–max normalizes `values`; constant inputs map to 0.5 (§4.3's
/// normalization, with the degenerate case pinned deterministically).
pub fn min_max_normalize(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|v| {
            if span.abs() < f64::EPSILON {
                0.5
            } else {
                (v - min) / span
            }
        })
        .collect()
}

fn validate_weights(weights: &[TraitWeight]) -> Result<()> {
    if weights.is_empty() {
        return Err(AutoCompError::InvalidWeights("no weights given".into()));
    }
    let sum: f64 = weights.iter().map(|w| w.weight).sum();
    if weights.iter().any(|w| w.weight <= 0.0) {
        return Err(AutoCompError::InvalidWeights(
            "weights must be positive".into(),
        ));
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(AutoCompError::InvalidWeights(format!(
            "weights sum to {sum}, expected 1"
        )));
    }
    Ok(())
}

fn trait_column(
    candidates: &[Candidate],
    trait_values: &[BTreeMap<String, f64>],
    name: &str,
) -> Result<Vec<f64>> {
    debug_assert_eq!(candidates.len(), trait_values.len());
    trait_values
        .iter()
        .map(|m| {
            m.get(name)
                .copied()
                .ok_or_else(|| AutoCompError::UnknownTrait(name.to_string()))
        })
        .collect()
}

/// Ranks candidates under `policy` given their computed trait values and
/// each trait's direction. Returns entries sorted by rank (best first);
/// selection flags and notes record the decision trail.
pub fn rank_and_select(
    candidates: &[Candidate],
    trait_values: &[BTreeMap<String, f64>],
    directions: &BTreeMap<String, TraitDirection>,
    policy: &RankingPolicy,
) -> Result<Vec<RankedEntry>> {
    if candidates.is_empty() {
        return Ok(Vec::new());
    }
    match policy {
        RankingPolicy::Threshold {
            trait_name,
            min_value,
            max_k,
        } => {
            let column = trait_column(candidates, trait_values, trait_name)?;
            let mut entries = build_entries(candidates, trait_values, &column);
            sort_entries(&mut entries);
            let cap = max_k.unwrap_or(usize::MAX);
            let mut taken = 0;
            for e in entries.iter_mut() {
                if e.score >= *min_value && taken < cap {
                    e.selected = true;
                    taken += 1;
                    e.note = format!("{trait_name} {:.3} >= {min_value:.3}", e.score);
                } else {
                    e.note = format!("{trait_name} {:.3} < {min_value:.3}", e.score);
                }
            }
            Ok(entries)
        }
        RankingPolicy::Moop { weights, k } => {
            validate_weights(weights)?;
            let scores = moop_scores(candidates, trait_values, directions, weights)?;
            let mut entries = build_entries(candidates, trait_values, &scores);
            sort_entries(&mut entries);
            for (rank, e) in entries.iter_mut().enumerate() {
                e.selected = rank < *k;
                e.note = if e.selected {
                    format!("rank {} <= k={k}", rank + 1)
                } else {
                    format!("rank {} > k={k}", rank + 1)
                };
            }
            Ok(entries)
        }
        RankingPolicy::BudgetedMoop {
            weights,
            cost_trait,
            budget,
            max_k,
        } => {
            validate_weights(weights)?;
            let scores = moop_scores(candidates, trait_values, directions, weights)?;
            let costs = trait_column(candidates, trait_values, cost_trait)?;
            let mut entries = build_entries(candidates, trait_values, &scores);
            // Carry raw costs through the sort via the traits map.
            let cost_by_id: BTreeMap<CandidateId, f64> = candidates
                .iter()
                .zip(costs)
                .map(|(c, cost)| (c.id.clone(), cost))
                .collect();
            sort_entries(&mut entries);
            let cap = max_k.unwrap_or(usize::MAX);
            let mut spent = 0.0;
            let mut taken = 0;
            for e in entries.iter_mut() {
                let cost = cost_by_id[&e.id];
                if taken < cap && spent + cost <= *budget {
                    e.selected = true;
                    spent += cost;
                    taken += 1;
                    e.note = format!("fits budget ({spent:.2}/{budget:.2})");
                } else {
                    e.note = format!("over budget (cost {cost:.2}, spent {spent:.2}/{budget:.2})");
                }
            }
            Ok(entries)
        }
        RankingPolicy::QuotaAwareMoop {
            benefit_trait,
            cost_trait,
            k,
            budget,
        } => {
            let benefit_raw = trait_column(candidates, trait_values, benefit_trait)?;
            let cost_raw = trait_column(candidates, trait_values, cost_trait)?;
            let benefit_n = min_max_normalize(&benefit_raw);
            let cost_n = min_max_normalize(&cost_raw);
            let scores: Vec<f64> = candidates
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let util = c.stats.quota.map(|q| q.utilization()).unwrap_or(0.0);
                    // §7: w1 = 0.5 × (1 + Used/Total). Clamp so w2 ≥ 0 even
                    // for over-quota databases.
                    let w1 = (0.5 * (1.0 + util)).min(1.0);
                    let w2 = 1.0 - w1;
                    w1 * benefit_n[i] - w2 * cost_n[i]
                })
                .collect();
            let cost_by_id: BTreeMap<CandidateId, f64> = candidates
                .iter()
                .zip(cost_raw)
                .map(|(c, cost)| (c.id.clone(), cost))
                .collect();
            let mut entries = build_entries(candidates, trait_values, &scores);
            sort_entries(&mut entries);
            match (k, budget) {
                (Some(k), _) => {
                    for (rank, e) in entries.iter_mut().enumerate() {
                        e.selected = rank < *k;
                        e.note = format!("quota-aware rank {}", rank + 1);
                    }
                }
                (None, Some(budget)) => {
                    let mut spent = 0.0;
                    for e in entries.iter_mut() {
                        let cost = cost_by_id[&e.id];
                        if spent + cost <= *budget {
                            e.selected = true;
                            spent += cost;
                            e.note = format!("fits budget ({spent:.2}/{budget:.2})");
                        } else {
                            e.note = "over budget".to_string();
                        }
                    }
                }
                (None, None) => {
                    return Err(AutoCompError::InvalidConfig(
                        "QuotaAwareMoop needs k or budget".into(),
                    ))
                }
            }
            Ok(entries)
        }
    }
}

fn moop_scores(
    candidates: &[Candidate],
    trait_values: &[BTreeMap<String, f64>],
    directions: &BTreeMap<String, TraitDirection>,
    weights: &[TraitWeight],
) -> Result<Vec<f64>> {
    let mut scores = vec![0.0; candidates.len()];
    for w in weights {
        let direction = directions
            .get(&w.trait_name)
            .copied()
            .ok_or_else(|| AutoCompError::UnknownTrait(w.trait_name.clone()))?;
        let raw = trait_column(candidates, trait_values, &w.trait_name)?;
        let normalized = min_max_normalize(&raw);
        let sign = match direction {
            TraitDirection::Benefit => 1.0,
            TraitDirection::Cost => -1.0,
        };
        for (s, n) in scores.iter_mut().zip(normalized) {
            *s += sign * w.weight * n;
        }
    }
    Ok(scores)
}

fn build_entries(
    candidates: &[Candidate],
    trait_values: &[BTreeMap<String, f64>],
    scores: &[f64],
) -> Vec<RankedEntry> {
    candidates
        .iter()
        .zip(trait_values)
        .zip(scores)
        .map(|((c, tv), &score)| RankedEntry {
            id: c.id.clone(),
            score,
            traits: tv.clone(),
            selected: false,
            note: String::new(),
        })
        .collect()
}

/// Sorts by score descending, ties broken by candidate id (NFR2).
fn sort_entries(entries: &mut [RankedEntry]) {
    entries.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are never NaN")
            .then_with(|| a.id.cmp(&b.id))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{CandidateStats, QuotaSignal};

    fn candidate(uid: u64, quota_util: Option<f64>) -> Candidate {
        Candidate {
            id: CandidateId::table(uid),
            database: "db".into(),
            table_name: format!("t{uid}"),
            compaction_enabled: true,
            is_intermediate: false,
            stats: CandidateStats {
                quota: quota_util.map(|u| QuotaSignal {
                    used: (u * 100.0) as u64,
                    total: 100,
                }),
                ..CandidateStats::default()
            },
        }
    }

    fn traits(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn directions() -> BTreeMap<String, TraitDirection> {
        [
            ("benefit".to_string(), TraitDirection::Benefit),
            ("cost".to_string(), TraitDirection::Cost),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn normalization_handles_constant_and_spread() {
        assert_eq!(min_max_normalize(&[5.0, 5.0]), vec![0.5, 0.5]);
        let n = min_max_normalize(&[0.0, 5.0, 10.0]);
        assert_eq!(n, vec![0.0, 0.5, 1.0]);
        assert!(min_max_normalize(&[]).is_empty());
    }

    #[test]
    fn threshold_selects_above_minimum() {
        let cands = vec![candidate(1, None), candidate(2, None), candidate(3, None)];
        let tv = vec![
            traits(&[("benefit", 5.0)]),
            traits(&[("benefit", 15.0)]),
            traits(&[("benefit", 25.0)]),
        ];
        let policy = RankingPolicy::Threshold {
            trait_name: "benefit".into(),
            min_value: 10.0,
            max_k: None,
        };
        let ranked = rank_and_select(&cands, &tv, &directions(), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(3));
        assert!(ranked[0].selected && ranked[1].selected);
        assert!(!ranked[2].selected);
    }

    #[test]
    fn moop_balances_benefit_against_cost() {
        // The §4.2 motivating example: candidate 1 yields nearly the same
        // benefit as candidate 2 at a tenth of the cost, so it must rank
        // first. Candidate 3 anchors the min–max normalization (with only
        // two candidates every trait normalizes to {0,1}, which is the
        // known degenerate case of min–max scalarization).
        let cands = vec![candidate(1, None), candidate(2, None), candidate(3, None)];
        let tv = vec![
            traits(&[("benefit", 200.0), ("cost", 10.0)]),
            traits(&[("benefit", 210.0), ("cost", 100.0)]),
            traits(&[("benefit", 0.0), ("cost", 0.0)]),
        ];
        let policy = RankingPolicy::Moop {
            weights: vec![
                TraitWeight::new("benefit", 0.7),
                TraitWeight::new("cost", 0.3),
            ],
            k: 1,
        };
        let ranked = rank_and_select(&cands, &tv, &directions(), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(1), "ratio should win");
        assert!(ranked[0].selected);
        assert!(!ranked[1].selected);
    }

    #[test]
    fn moop_rejects_bad_weights() {
        let cands = vec![candidate(1, None)];
        let tv = vec![traits(&[("benefit", 1.0)])];
        let bad_sum = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("benefit", 0.5)],
            k: 1,
        };
        assert!(matches!(
            rank_and_select(&cands, &tv, &directions(), &bad_sum),
            Err(AutoCompError::InvalidWeights(_))
        ));
        let unknown = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("nope", 1.0)],
            k: 1,
        };
        assert!(matches!(
            rank_and_select(&cands, &tv, &directions(), &unknown),
            Err(AutoCompError::UnknownTrait(_))
        ));
    }

    #[test]
    fn budget_selection_is_dynamic_k() {
        let cands: Vec<Candidate> = (1..=4).map(|i| candidate(i, None)).collect();
        let tv = vec![
            traits(&[("benefit", 100.0), ("cost", 60.0)]),
            traits(&[("benefit", 90.0), ("cost", 30.0)]),
            traits(&[("benefit", 80.0), ("cost", 30.0)]),
            traits(&[("benefit", 10.0), ("cost", 1.0)]),
        ];
        let policy = RankingPolicy::BudgetedMoop {
            weights: vec![
                TraitWeight::new("benefit", 0.7),
                TraitWeight::new("cost", 0.3),
            ],
            cost_trait: "cost".into(),
            budget: 65.0,
            max_k: None,
        };
        let ranked = rank_and_select(&cands, &tv, &directions(), &policy).unwrap();
        let selected: Vec<u64> = ranked
            .iter()
            .filter(|e| e.selected)
            .map(|e| e.id.table_uid)
            .collect();
        // Greedy fit: best-scored first while budget lasts; candidate 1
        // (cost 60) takes most of the budget, then only candidate 4 fits.
        let spent: f64 = ranked
            .iter()
            .filter(|e| e.selected)
            .map(|e| match e.id.table_uid {
                1 => 60.0,
                2 | 3 => 30.0,
                _ => 1.0,
            })
            .sum();
        assert!(spent <= 65.0, "spent {spent}");
        assert!(!selected.is_empty());
    }

    #[test]
    fn quota_pressure_boosts_priority() {
        // Same traits, different quota pressure: the fuller database's
        // candidate must rank first (§7's w1 formula).
        let cands = vec![candidate(1, Some(0.1)), candidate(2, Some(0.9))];
        let tv = vec![
            traits(&[("benefit", 50.0), ("cost", 50.0)]),
            traits(&[("benefit", 50.0), ("cost", 50.0)]),
        ];
        let policy = RankingPolicy::QuotaAwareMoop {
            benefit_trait: "benefit".into(),
            cost_trait: "cost".into(),
            k: Some(1),
            budget: None,
        };
        let ranked = rank_and_select(&cands, &tv, &directions(), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(2));
        assert!(ranked[0].selected);
    }

    #[test]
    fn quota_policy_requires_k_or_budget() {
        let cands = vec![candidate(1, None)];
        let tv = vec![traits(&[("benefit", 1.0), ("cost", 1.0)])];
        let policy = RankingPolicy::QuotaAwareMoop {
            benefit_trait: "benefit".into(),
            cost_trait: "cost".into(),
            k: None,
            budget: None,
        };
        assert!(matches!(
            rank_and_select(&cands, &tv, &directions(), &policy),
            Err(AutoCompError::InvalidConfig(_))
        ));
    }

    #[test]
    fn ties_break_on_candidate_id() {
        let cands = vec![candidate(2, None), candidate(1, None)];
        let tv = vec![traits(&[("benefit", 5.0)]), traits(&[("benefit", 5.0)])];
        let policy = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("benefit", 1.0)],
            k: 1,
        };
        let ranked = rank_and_select(&cands, &tv, &directions(), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(1), "lower id wins ties");
    }
}
