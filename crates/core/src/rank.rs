//! Candidate ranking and selection (the decide phase, §4.3).
//!
//! Two scenarios from the paper:
//!
//! * **Unconstrained resources** — a threshold decision function: any
//!   candidate whose trait exceeds the threshold is compacted.
//! * **Resource-constrained** — the MOOP formulation: min–max normalize
//!   each trait over the candidate set, scalarize with weights summing to
//!   1 (`S_c = w1·T'₁ − w2·T'₂`), rank descending, then select top-k or
//!   greedily fit a compute budget (dynamic k, §7).
//!
//! The production deployment's quota-aware weighting (§7),
//! `w1 = 0.5 × (1 + UsedQuota/TotalQuota)`, is a per-candidate weight
//! variant.
//!
//! # Columnar decide path
//!
//! Trait values arrive as a [`TraitMatrix`] — interned trait names,
//! contiguous `f64` columns — so scalarization is index arithmetic, not
//! string-keyed map probes. Selection uses partial ordering
//! (`select_nth_unstable_by` plus a sort of the selected head) instead of
//! a full fleet sort: for a fixed k the decide phase is **O(n + k log k)**
//! in the candidate count n. Returned entries carry their candidate
//! `index` so downstream phases address the matrix and candidate slice
//! directly, with no id-keyed side tables.
//!
//! ## Ordering contract
//!
//! Entries are returned best-first for the *materialized prefix* — at
//! least every selected candidate plus the first
//! [`RANKED_PREFIX_MIN`] rows (what [`CycleReport`] renders). Entries past
//! the prefix follow in candidate order and their notes carry no exact
//! rank; nothing renders them. The seed sorted the entire fleet for every
//! cycle, which is exactly the O(n log n) framework overhead §7 warns
//! about. The output type is [`RankedEntries`]: the prefix is eager
//! (`head()`), and on single-candidate-scope paths the candidate-order
//! tail is generated **lazily** on iteration from compact per-row
//! columns — the fleet-wide `Vec<RankedEntry>` materialization is gone
//! from the hot cycle, and iterating reproduces it bit-for-bit.
//!
//! # Incremental rank maintenance (exactness contract)
//!
//! Across incremental cycles the pipeline retains a rank memo — the
//! per-candidate scores, the min–max normalization bounds they were
//! computed under, and an exact-order prefix larger than the report head
//! — keyed by the **same cursor chain + config epoch + scope/width as
//! the cycle cache** (the memo's rows are aligned to that cache's
//! generation). The maintained state is reused only when all of the
//! following hold; otherwise the fleet-wide path recomputes everything
//! (and re-seeds the memo):
//!
//! * the policy shape is unchanged (guaranteed by the config epoch,
//!   checked defensively), and it is not inherently global —
//!   budget-driven policies ([`RankingPolicy::BudgetedMoop`] and the
//!   budget mode of [`RankingPolicy::QuotaAwareMoop`]) walk the fleet in
//!   rank order with a running budget, so no per-row delta can be
//!   maintained for them;
//! * every normalization bound (per-column min and span) is
//!   **bit-identical** to the memo's — min–max normalization is
//!   fleet-global, so any movement changes every score; bounds are
//!   recomputed each cycle in O(n) and compared bitwise;
//! * enough of the retained prefix survived as spliced (unchanged) rows:
//!   rows outside the pool ranked below every retained-prefix member
//!   last cycle and are unchanged, so merging the surviving prefix with
//!   the re-scored dirty rows yields the exact top-j for every
//!   j ≤ survivors — fewer survivors than the needed head forces the
//!   fallback.
//!
//! Under the memo, quiet rows' scores are *spliced* (bit-identical by
//! construction: same inputs, same accumulation order) and only
//! dirty/settled rows re-score. Feedback ingestion still does **not**
//! bump the epoch: calibration scales act-phase predictions, while
//! scores are pure functions of the (calibration-free) trait matrix —
//! exactly the cycle cache's rule. The incremental parity harness pins
//! bit-identical `CycleReport`s across both the maintained and fallback
//! paths.
//!
//! [`CycleReport`]: crate::pipeline::CycleReport

use std::fmt;
use std::sync::Arc;

use crate::candidate::{Candidate, CandidateId, ScopeKind};
use crate::error::AutoCompError;
use crate::matrix::TraitMatrix;
use crate::Result;

/// Number of best-first rows always materialized in exact rank order —
/// the decision-report prefix ([`CycleReport`](crate::pipeline::CycleReport)
/// renders this many rows).
pub const RANKED_PREFIX_MIN: usize = 20;

/// One weighted objective in a MOOP policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TraitWeight {
    /// Trait name (must match a registered computer).
    pub trait_name: String,
    /// Weight; all weights must be positive and sum to 1.
    pub weight: f64,
}

impl TraitWeight {
    /// Convenience constructor.
    pub fn new(trait_name: impl Into<String>, weight: f64) -> Self {
        TraitWeight {
            trait_name: trait_name.into(),
            weight,
        }
    }
}

/// Ranking and selection policy.
#[derive(Debug, Clone, PartialEq)]
pub enum RankingPolicy {
    /// Unconstrained scenario (§4.3): select every candidate whose trait
    /// value meets the threshold, ranked by that value.
    Threshold {
        /// Trait to test.
        trait_name: String,
        /// Minimum value for selection.
        min_value: f64,
        /// Optional cap on selections (safety valve).
        max_k: Option<usize>,
    },
    /// Weighted-sum MOOP with top-k selection (§4.3 / §6: k=10 table
    /// scope, k=50/500 hybrid).
    Moop {
        /// Objective weights (positive, summing to 1).
        weights: Vec<TraitWeight>,
        /// Number of candidates to select.
        k: usize,
    },
    /// Weighted-sum MOOP with a compute budget instead of a fixed k: the
    /// dynamic-k selection the production deployment moved to in week 22
    /// (§7, 226 TBHr budget → k≈2500).
    BudgetedMoop {
        /// Objective weights (positive, summing to 1).
        weights: Vec<TraitWeight>,
        /// Trait holding each candidate's cost (raw, unnormalized units).
        cost_trait: String,
        /// Total budget in the cost trait's units (e.g. GBHr).
        budget: f64,
        /// Optional cap on selections.
        max_k: Option<usize>,
    },
    /// Production quota-aware weighting (§7): per-candidate
    /// `w1 = 0.5 × (1 + quota utilization)`, `w2 = 1 − w1`, scored as
    /// `w1·benefit' − w2·cost'`.
    QuotaAwareMoop {
        /// Benefit trait name.
        benefit_trait: String,
        /// Cost trait name.
        cost_trait: String,
        /// Fixed k (`None` = select by `budget`).
        k: Option<usize>,
        /// Budget in raw cost units (used when `k` is `None`).
        budget: Option<f64>,
    },
}

/// Why the decide phase did (not) select a candidate — rendered lazily on
/// [`Display`](fmt::Display), so unselected fleet-tail candidates cost no formatting or
/// allocation (NFR2 explainability without O(n) `format!` calls).
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionNote {
    /// No decision recorded (entries outside any policy run).
    None,
    /// Threshold met and selected.
    ThresholdMet {
        /// Tested trait.
        trait_name: Arc<str>,
        /// Observed value.
        value: f64,
        /// Selection threshold.
        min_value: f64,
    },
    /// Below the selection threshold.
    ThresholdBelow {
        /// Tested trait.
        trait_name: Arc<str>,
        /// Observed value.
        value: f64,
        /// Selection threshold.
        min_value: f64,
    },
    /// Above threshold but dropped by the `max_k` safety cap. (The seed
    /// mislabeled these with the below-threshold note.)
    ThresholdOverCap {
        /// Tested trait.
        trait_name: Arc<str>,
        /// Observed value.
        value: f64,
        /// Selection threshold.
        min_value: f64,
        /// The cap that excluded the candidate.
        cap: usize,
    },
    /// Ranked within the top-k.
    RankWithinK {
        /// 1-based rank.
        rank: usize,
        /// Selection size.
        k: usize,
    },
    /// Ranked beyond the top-k (exact rank known: prefix row).
    RankBeyondK {
        /// 1-based rank.
        rank: usize,
        /// Selection size.
        k: usize,
    },
    /// Beyond both the top-k and the materialized prefix; exact rank not
    /// computed (the whole point of partial selection).
    BeyondPrefix {
        /// Selection size.
        k: usize,
    },
    /// Selected under a compute budget; `spent` is the running total
    /// after this selection.
    FitsBudget {
        /// Budget consumed so far.
        spent: f64,
        /// Total budget.
        budget: f64,
    },
    /// Not selected: would overshoot the budget.
    OverBudget {
        /// This candidate's cost.
        cost: f64,
        /// Budget consumed when the candidate was considered.
        spent: f64,
        /// Total budget.
        budget: f64,
    },
    /// Not selected under a quota-aware budget (§7 reports no figures).
    OverBudgetBare,
    /// Quota-aware rank (exact rank known: prefix row).
    QuotaRank {
        /// 1-based rank.
        rank: usize,
    },
    /// Quota-aware, beyond the materialized prefix.
    QuotaBeyondPrefix,
    /// Dropped during orient because a trait computer produced NaN.
    NanTrait {
        /// The offending trait.
        trait_name: Arc<str>,
    },
}

impl fmt::Display for DecisionNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionNote::None => Ok(()),
            DecisionNote::ThresholdMet {
                trait_name,
                value,
                min_value,
            } => write!(f, "{trait_name} {value:.3} >= {min_value:.3}"),
            DecisionNote::ThresholdBelow {
                trait_name,
                value,
                min_value,
            } => write!(f, "{trait_name} {value:.3} < {min_value:.3}"),
            DecisionNote::ThresholdOverCap {
                trait_name,
                value,
                min_value,
                cap,
            } => write!(
                f,
                "{trait_name} {value:.3} >= {min_value:.3} but over cap k={cap}"
            ),
            DecisionNote::RankWithinK { rank, k } => write!(f, "rank {rank} <= k={k}"),
            DecisionNote::RankBeyondK { rank, k } => write!(f, "rank {rank} > k={k}"),
            DecisionNote::BeyondPrefix { k } => write!(f, "rank > k={k}"),
            DecisionNote::FitsBudget { spent, budget } => {
                write!(f, "fits budget ({spent:.2}/{budget:.2})")
            }
            DecisionNote::OverBudget {
                cost,
                spent,
                budget,
            } => write!(
                f,
                "over budget (cost {cost:.2}, spent {spent:.2}/{budget:.2})"
            ),
            DecisionNote::OverBudgetBare => write!(f, "over budget"),
            DecisionNote::QuotaRank { rank } => write!(f, "quota-aware rank {rank}"),
            DecisionNote::QuotaBeyondPrefix => write!(f, "quota-aware rank > prefix"),
            DecisionNote::NanTrait { trait_name } => {
                write!(f, "orient: trait '{trait_name}' is NaN")
            }
        }
    }
}

/// Decide-phase access to the per-candidate inputs that are *not* trait
/// values: identity (rank tie-breaks and report ids) and the §7 quota
/// signal. Implemented by `[Candidate]` for callers that hold
/// materialized candidates, and by the pipeline's observation-backed
/// source so the hot cycle ranks straight off a
/// [`FleetObservation`](crate::observe::FleetObservation) without ever
/// building `Candidate` structs.
pub trait RankSource {
    /// Number of candidates (must equal the trait matrix's row count).
    fn len(&self) -> usize;

    /// Whether the source holds no candidates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Identity of the candidate at `index`, materialized for a
    /// [`RankedEntry`]. Called once per returned entry.
    fn id(&self, index: usize) -> CandidateId;

    /// Orders two candidates by identity (the rank tie-break). Must agree
    /// with `self.id(a).cmp(&self.id(b))`; sources that can compare
    /// without materializing ids (e.g. observation-backed ones borrowing
    /// partition labels) avoid per-comparison clones in the selection
    /// hot path.
    fn cmp_ids(&self, a: usize, b: usize) -> std::cmp::Ordering;

    /// Quota utilization of the candidate's database (0.0 when the
    /// platform reports none) — the §7 quota-aware weighting input.
    fn quota_utilization(&self, index: usize) -> f64;

    /// Uniform tail identity: when every candidate is a
    /// single-candidate-scope row (same [`ScopeKind`], no partition
    /// labels), returns the scope plus per-row table uids so the report
    /// tail can be generated lazily on iteration instead of
    /// materializing one [`RankedEntry`] per fleet candidate. `None`
    /// (the default) keeps the fully materialized output.
    fn tail_identity(&self) -> Option<(ScopeKind, Vec<u64>)> {
        None
    }
}

impl RankSource for [Candidate] {
    fn len(&self) -> usize {
        self.len()
    }
    fn id(&self, index: usize) -> CandidateId {
        self[index].id.clone()
    }
    fn cmp_ids(&self, a: usize, b: usize) -> std::cmp::Ordering {
        self[a].id.cmp(&self[b].id)
    }
    fn quota_utilization(&self, index: usize) -> f64 {
        self[index]
            .stats
            .quota
            .map(|q| q.utilization())
            .unwrap_or(0.0)
    }
}

/// One ranked candidate with its decision trail (NFR2 explainability).
///
/// Entries are columnar-friendly: they carry the candidate's `index` into
/// the cycle's candidate slice / [`TraitMatrix`] rows instead of cloned
/// trait maps, and the `note` is a lazy [`DecisionNote`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankedEntry {
    /// Candidate identity.
    pub id: CandidateId,
    /// Row index into the cycle's candidate slice and trait matrix.
    pub index: usize,
    /// Scalarized score (or raw trait value for threshold policies).
    pub score: f64,
    /// Whether the decide phase selected this candidate.
    pub selected: bool,
    /// Why it was (not) selected; rendered on [`Display`](fmt::Display).
    pub note: DecisionNote,
}

impl RankedEntry {
    /// Looks up one of this entry's trait values in the cycle matrix.
    pub fn trait_value(&self, matrix: &TraitMatrix, name: &str) -> Option<f64> {
        matrix.trait_id(name).map(|id| matrix.value(self.index, id))
    }
}

/// Note shape of lazily generated tail entries — everything needed to
/// reproduce the eager path's per-row tail note without materializing it.
#[derive(Debug, Clone)]
enum TailNoteSpec {
    /// MOOP top-k tail: [`DecisionNote::BeyondPrefix`].
    Moop { k: usize },
    /// Quota-aware top-k tail: [`DecisionNote::QuotaBeyondPrefix`].
    Quota,
    /// Threshold tail: below-threshold or over-cap, decided per row from
    /// the stored score (the raw trait value).
    Threshold {
        trait_name: Arc<str>,
        min_value: f64,
        cap: usize,
    },
}

/// Deferred tail of a decide-phase output: per-row scores and identities
/// kept in compact columnar form; [`RankedEntry`] values are generated on
/// iteration, in candidate order, bit-identical to the eager path.
#[derive(Debug, Clone)]
struct LazyTail {
    /// Score per candidate row (all rows, in candidate order).
    scores: Vec<f64>,
    /// Table uid per candidate row.
    uids: Vec<u64>,
    /// Uniform candidate scope (single-candidate scopes only).
    scope: ScopeKind,
    /// Rows already materialized in the head.
    in_head: Vec<bool>,
    note: TailNoteSpec,
}

impl LazyTail {
    fn entry(&self, row: usize) -> RankedEntry {
        let score = self.scores[row];
        let note = match &self.note {
            TailNoteSpec::Moop { k } => DecisionNote::BeyondPrefix { k: *k },
            TailNoteSpec::Quota => DecisionNote::QuotaBeyondPrefix,
            TailNoteSpec::Threshold {
                trait_name,
                min_value,
                cap,
            } => {
                if score >= *min_value {
                    DecisionNote::ThresholdOverCap {
                        trait_name: trait_name.clone(),
                        value: score,
                        min_value: *min_value,
                        cap: *cap,
                    }
                } else {
                    DecisionNote::ThresholdBelow {
                        trait_name: trait_name.clone(),
                        value: score,
                        min_value: *min_value,
                    }
                }
            }
        };
        RankedEntry {
            id: CandidateId {
                table_uid: self.uids[row],
                scope: self.scope,
                partition: None,
            },
            index: row,
            score,
            selected: false,
            note,
        }
    }
}

/// The decide phase's output: the materialized rank-order prefix (every
/// selected candidate plus at least [`RANKED_PREFIX_MIN`] report rows)
/// plus a tail covering the rest of the fleet in candidate order.
///
/// On hot single-candidate-scope paths the tail is **lazy**: entries are
/// generated on [`iter`](Self::iter)/[`to_vec`](Self::to_vec) from
/// compact per-row columns instead of being materialized every cycle —
/// at 100K tables the eager fleet-wide `Vec<RankedEntry>` was a
/// measurable slice of the steady-state incremental cycle. Iteration
/// yields entries bit-identical to the eager path (pinned by the parity
/// suites); [`head`](Self::head) is the eager accessor rendering and
/// seed-parity tests pin unchanged output against.
#[derive(Debug, Clone)]
pub struct RankedEntries {
    /// Eager entries: the full rank-order prefix — and, when `tail` is
    /// `None`, the entire output (budget policies, partition scopes, and
    /// the compat `&[Candidate]` path stay fully materialized).
    head: Vec<RankedEntry>,
    tail: Option<LazyTail>,
}

impl RankedEntries {
    /// Fully materialized entries (no lazy tail).
    pub(crate) fn eager(entries: Vec<RankedEntry>) -> Self {
        RankedEntries {
            head: entries,
            tail: None,
        }
    }

    /// Total number of ranked candidates (head + tail).
    pub fn len(&self) -> usize {
        match &self.tail {
            None => self.head.len(),
            Some(tail) => tail.scores.len(),
        }
    }

    /// Whether no candidates were ranked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The eagerly materialized prefix, best-first in exact rank order:
    /// every selected candidate plus at least [`RANKED_PREFIX_MIN`] rows
    /// (the whole output when no lazy tail exists). This is what
    /// `CycleReport` renders, so report output is identical whether or
    /// not the tail is lazy.
    pub fn head(&self) -> &[RankedEntry] {
        &self.head
    }

    /// Selected entries (always part of the head).
    pub fn selected(&self) -> impl Iterator<Item = &RankedEntry> {
        self.head.iter().filter(|e| e.selected)
    }

    /// Number of selected candidates.
    pub fn selected_count(&self) -> usize {
        self.selected().count()
    }

    /// Iterates every ranked entry: the head in rank order, then tail
    /// entries generated on the fly in candidate order — exactly the
    /// sequence the eager path materializes.
    pub fn iter(&self) -> impl Iterator<Item = RankedEntry> + '_ {
        let tail_rows = match &self.tail {
            None => 0..0,
            Some(tail) => 0..tail.scores.len(),
        };
        self.head.iter().cloned().chain(
            tail_rows
                .filter(move |row| self.tail.as_ref().is_some_and(|tail| !tail.in_head[*row]))
                .map(move |row| {
                    self.tail
                        .as_ref()
                        .expect("tail rows imply a tail")
                        .entry(row)
                }),
        )
    }

    /// Materializes every entry eagerly (the compatibility accessor).
    pub fn to_vec(&self) -> Vec<RankedEntry> {
        self.iter().collect()
    }

    /// Consuming variant of [`to_vec`](Self::to_vec): already-eager
    /// outputs move their entries instead of cloning them.
    pub fn into_vec(self) -> Vec<RankedEntry> {
        match self.tail {
            None => self.head,
            Some(_) => self.to_vec(),
        }
    }
}

/// Min–max normalizes `values`; constant inputs map to 0.5 (§4.3's
/// normalization, with the degenerate case pinned deterministically).
pub fn min_max_normalize(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let (min, max) = column_min_max(values);
    let span = max - min;
    values.iter().map(|v| normalize(*v, min, span)).collect()
}

/// The §4.3 min–max rule for one value given its column's min and span:
/// constant columns (span below epsilon) pin to 0.5. Single source of
/// truth for every scalarization site in this module.
#[inline]
fn normalize(v: f64, min: f64, span: f64) -> f64 {
    if span.abs() < f64::EPSILON {
        0.5
    } else {
        (v - min) / span
    }
}

fn column_min_max(values: &[f64]) -> (f64, f64) {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (min, max)
}

fn validate_weights(weights: &[TraitWeight]) -> Result<()> {
    if weights.is_empty() {
        return Err(AutoCompError::InvalidWeights("no weights given".into()));
    }
    let sum: f64 = weights.iter().map(|w| w.weight).sum();
    if weights.iter().any(|w| w.weight <= 0.0) {
        return Err(AutoCompError::InvalidWeights(
            "weights must be positive".into(),
        ));
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(AutoCompError::InvalidWeights(format!(
            "weights sum to {sum}, expected 1"
        )));
    }
    Ok(())
}

/// Sort key mapping that keeps ordering total and seed-compatible:
/// NaN ranks last on a descending sort, and ±0.0 compare equal so ties
/// still break on candidate id (like the seed's `partial_cmp`).
#[inline]
fn sort_key(score: f64) -> f64 {
    if score.is_nan() {
        f64::NEG_INFINITY
    } else if score == 0.0 {
        0.0
    } else {
        score
    }
}

/// Lazily materializes the fleet's rank order (score descending, ties by
/// candidate id): `ensure(upto)` extends the sorted prefix by partial
/// selection — `select_nth_unstable_by` to split off the next chunk, then
/// a sort of just that chunk — with doubling chunk growth, so consuming k
/// of n candidates costs O(n + k log k) instead of a full O(n log n) sort.
struct RankOrder<'a, S: RankSource + ?Sized> {
    indices: Vec<u32>,
    sorted_upto: usize,
    /// `sort_key(score)` precomputed once per candidate: the selection
    /// comparator runs O(n) times per `ensure` growth and the NaN/±0
    /// normalization branches are hoisted out of it.
    keys: Vec<f64>,
    source: &'a S,
}

impl<'a, S: RankSource + ?Sized> RankOrder<'a, S> {
    fn new(scores: &'a [f64], source: &'a S) -> Self {
        debug_assert_eq!(scores.len(), source.len());
        RankOrder {
            indices: (0..source.len() as u32).collect(),
            sorted_upto: 0,
            keys: scores.iter().map(|s| sort_key(*s)).collect(),
            source,
        }
    }

    /// Guarantees `indices[..upto]` is in exact rank order.
    fn ensure(&mut self, upto: usize) {
        let n = self.indices.len();
        let upto = upto.min(n);
        while self.sorted_upto < upto {
            let target = upto.max(self.sorted_upto * 2).max(64).min(n);
            let keys = &self.keys;
            let source = self.source;
            let key = |a: &u32, b: &u32| {
                keys[*b as usize]
                    .total_cmp(&keys[*a as usize])
                    .then_with(|| source.cmp_ids(*a as usize, *b as usize))
            };
            let tail = &mut self.indices[self.sorted_upto..];
            let pivot = target - self.sorted_upto;
            if pivot < tail.len() {
                tail.select_nth_unstable_by(pivot, key);
            }
            self.indices[self.sorted_upto..target].sort_unstable_by(key);
            self.sorted_upto = target;
        }
    }

    #[inline]
    fn at(&self, pos: usize) -> usize {
        self.indices[pos] as usize
    }

    fn len(&self) -> usize {
        self.indices.len()
    }
}

/// Assembles the output vector: the materialized rank-order prefix first
/// (with per-position notes), then every remaining candidate in candidate
/// order (with a shared tail note).
fn assemble_entries<S: RankSource + ?Sized>(
    source: &S,
    scores: &[f64],
    order: &RankOrder<'_, S>,
    prefix: usize,
    mut prefix_entry: impl FnMut(usize, usize) -> (bool, DecisionNote),
    mut tail_note: impl FnMut(usize) -> (bool, DecisionNote),
) -> Vec<RankedEntry> {
    let n = source.len();
    let mut entries = Vec::with_capacity(n);
    let mut in_prefix = vec![false; n];
    for pos in 0..prefix {
        let index = order.at(pos);
        in_prefix[index] = true;
        let (selected, note) = prefix_entry(pos, index);
        entries.push(RankedEntry {
            id: source.id(index),
            index,
            score: scores[index],
            selected,
            note,
        });
    }
    for index in 0..n {
        if in_prefix[index] {
            continue;
        }
        let (selected, note) = tail_note(index);
        entries.push(RankedEntry {
            id: source.id(index),
            index,
            score: scores[index],
            selected,
            note,
        });
    }
    entries
}

/// Ranks candidates under `policy` given their columnar trait matrix.
/// Returns entries best-first for the materialized prefix (all selected
/// candidates plus at least [`RANKED_PREFIX_MIN`] rows), then remaining
/// candidates in candidate order; selection flags and notes record the
/// decision trail.
pub fn rank_and_select(
    candidates: &[Candidate],
    matrix: &TraitMatrix,
    policy: &RankingPolicy,
) -> Result<Vec<RankedEntry>> {
    rank_and_select_source(candidates, matrix, policy).map(RankedEntries::into_vec)
}

/// [`rank_and_select`] over any [`RankSource`] — the entry point the
/// index-native pipeline uses to rank observation-backed candidates
/// without materializing them. Output is identical to ranking the
/// equivalent `&[Candidate]` slice (lazy tails generate equal entries).
pub fn rank_and_select_source<S: RankSource + ?Sized>(
    source: &S,
    matrix: &TraitMatrix,
    policy: &RankingPolicy,
) -> Result<RankedEntries> {
    rank_with_memo(source, matrix, policy, None).map(|(entries, _, _)| entries)
}

/// Sentinel "no prior row" marker in a [`RankDelta`] splice map.
pub(crate) const NO_PRIOR_ROW: u32 = u32::MAX;

/// Retained decide-phase state of one cycle, aligned to the cycle
/// cache's generation rows — the structure incremental rank maintenance
/// reuses next cycle (see the module docs' exactness contract).
#[derive(Debug, Clone)]
pub(crate) struct RankMemo {
    /// Policy-shape discriminant (defensive: the config epoch already
    /// pins the policy, but a mismatched memo must never splice).
    kind: u8,
    /// Bit patterns of the min–max normalization bounds per consumed
    /// column, in policy consumption order. Any movement invalidates the
    /// per-row scores wholesale (normalization is fleet-global).
    bounds: Vec<(u64, u64)>,
    /// Final per-row scores by generation row.
    scores: Vec<f64>,
    /// Whether the generation row was ranked (present post-suppression,
    /// post-NaN) — rows without a score always recompute.
    has: Vec<bool>,
    /// Generation rows of the retained exact-rank-order prefix
    /// (strictly larger than the report head, so a few dirty rows per
    /// cycle cannot immediately force a fleet-wide re-sort).
    prefix: Vec<u32>,
}

impl RankMemo {
    /// Writes the memo into a snapshot, scores as raw IEEE-754 bits so a
    /// restored memo splices bit-identically.
    pub(crate) fn snapshot_write(&self, enc: &mut lakesim_storage::Encoder) {
        enc.put_u8(self.kind);
        enc.put_u64(self.bounds.len() as u64);
        for (lo, hi) in &self.bounds {
            enc.put_u64(*lo);
            enc.put_u64(*hi);
        }
        enc.put_u64(self.scores.len() as u64);
        for score in &self.scores {
            enc.put_f64(*score);
        }
        debug_assert_eq!(self.scores.len(), self.has.len());
        for has in &self.has {
            enc.put_bool(*has);
        }
        enc.put_u64(self.prefix.len() as u64);
        for row in &self.prefix {
            enc.put_u32(*row);
        }
    }

    /// Restores a memo from a snapshot, re-validating the structural
    /// invariants (`has` row-aligned with `scores`, prefix rows in
    /// bounds) so a corrupt payload is rejected instead of spliced.
    pub(crate) fn snapshot_read(
        dec: &mut lakesim_storage::Decoder<'_>,
    ) -> std::result::Result<Self, lakesim_storage::CodecError> {
        use lakesim_storage::CodecError;
        let kind = dec.take_u8("memo kind")?;
        let bounds = (0..dec.take_len(16, "memo bounds")?)
            .map(|_| {
                Ok((
                    dec.take_u64("memo bound lo")?,
                    dec.take_u64("memo bound hi")?,
                ))
            })
            .collect::<std::result::Result<Vec<_>, CodecError>>()?;
        let rows = dec.take_len(8, "memo scores")?;
        let scores = (0..rows)
            .map(|_| dec.take_f64("memo score"))
            .collect::<std::result::Result<Vec<_>, CodecError>>()?;
        let has = (0..rows)
            .map(|_| dec.take_bool("memo has"))
            .collect::<std::result::Result<Vec<_>, CodecError>>()?;
        let prefix = (0..dec.take_len(4, "memo prefix")?)
            .map(|_| dec.take_u32("memo prefix row"))
            .collect::<std::result::Result<Vec<_>, CodecError>>()?;
        if prefix.iter().any(|r| *r as usize >= rows) {
            return Err(CodecError::Invalid("memo prefix row out of bounds"));
        }
        Ok(RankMemo {
            kind,
            bounds,
            scores,
            has,
            prefix,
        })
    }
}

/// Inputs wiring one cycle's splice mapping into the rank phase.
pub(crate) struct RankDelta<'a> {
    /// The prior cycle's memo, already validated by the caller against
    /// the cursor chain + config epoch + scope/width keys.
    pub(crate) memo: Option<&'a RankMemo>,
    /// Per current row: the prior generation row its trait row was
    /// spliced from, or [`NO_PRIOR_ROW`] for recomputed rows.
    pub(crate) prior_rows: &'a [u32],
    /// Per current row: its row in the generation being installed this
    /// cycle (what next cycle's `prior_rows` will reference).
    pub(crate) gen_rows: &'a [u32],
    /// Kept-row count of the generation being installed.
    pub(crate) gen_len: usize,
    /// Whether `gen_rows` is the identity mapping (no suppression/NaN
    /// masks thinned the kept set) — the steady state, where the memo
    /// arrays can be bulk-copied instead of scattered row by row.
    pub(crate) gen_identity: bool,
}

/// Splice effectiveness of one rank pass (see
/// [`AutoComp::rank_memo_stats`](crate::pipeline::AutoComp::rank_memo_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankCycleStats {
    /// Whether top-k selection was maintained from the retained prefix
    /// (no fleet-wide ordering pass ran).
    pub memo_fast: bool,
    /// Rows whose score was spliced from the retained memo.
    pub spliced_scores: usize,
    /// Rows whose score was recomputed (dirty rows, or the whole fleet
    /// on the fallback path).
    pub recomputed_scores: usize,
}

/// One pre-resolved weighted column of a MOOP scalarization.
struct WeightedCol<'a> {
    col: &'a [f64],
    min: f64,
    span: f64,
    /// `sign × weight`, folded once so per-row recomputes accumulate in
    /// exactly the shape [`moop_scores`] uses.
    factor: f64,
}

/// Decide phase with optional cross-cycle maintenance: ranks `source`
/// under `policy`; when `delta` is provided, splices per-row scores from
/// the retained memo (bounds permitting), maintains top-k selection from
/// the retained prefix, and emits the next cycle's memo. `delta: None`
/// is exactly the historical fleet-wide path.
pub(crate) fn rank_with_memo<S: RankSource + ?Sized>(
    source: &S,
    matrix: &TraitMatrix,
    policy: &RankingPolicy,
    delta: Option<&RankDelta<'_>>,
) -> Result<(RankedEntries, Option<RankMemo>, RankCycleStats)> {
    if source.is_empty() {
        return Ok((
            RankedEntries::eager(Vec::new()),
            None,
            RankCycleStats::default(),
        ));
    }
    debug_assert_eq!(matrix.rows(), source.len());
    let n = source.len();
    match policy {
        RankingPolicy::Threshold {
            trait_name,
            min_value,
            max_k,
        } => {
            let id = matrix
                .trait_id(trait_name)
                .ok_or_else(|| AutoCompError::UnknownTrait(trait_name.clone()))?;
            let col = matrix.col(id);
            let name: Arc<str> = Arc::from(trait_name.as_str());
            let cap = max_k.unwrap_or(usize::MAX);
            let min_value = *min_value;
            let above = col.iter().filter(|s| **s >= min_value).count();
            let sel = above.min(cap);
            let note_for = |index: usize, ranked_in: Option<usize>, scores: &[f64]| {
                let value = scores[index];
                if value >= min_value {
                    match ranked_in {
                        Some(pos) if pos < sel => DecisionNote::ThresholdMet {
                            trait_name: name.clone(),
                            value,
                            min_value,
                        },
                        _ => DecisionNote::ThresholdOverCap {
                            trait_name: name.clone(),
                            value,
                            min_value,
                            cap,
                        },
                    }
                } else {
                    DecisionNote::ThresholdBelow {
                        trait_name: name.clone(),
                        value,
                        min_value,
                    }
                }
            };
            Ok(rank_incremental_policy(
                source,
                1,
                Vec::new(),
                sel,
                || col.to_vec(),
                |i| col[i],
                |pos, index, scores| {
                    (
                        pos < sel && scores[index] >= min_value,
                        note_for(index, Some(pos), scores),
                    )
                },
                |index, scores| note_for(index, None, scores),
                TailNoteSpec::Threshold {
                    trait_name: name.clone(),
                    min_value,
                    cap,
                },
                delta,
            ))
        }
        RankingPolicy::Moop { weights, k } => {
            validate_weights(weights)?;
            // Key on (min, span) bits — exactly the two values
            // `normalize` consumes, so bit-equal keys imply bit-equal
            // normalization.
            let parts = weighted_parts(matrix, weights)?;
            let bounds = parts
                .iter()
                .map(|p| (p.min.to_bits(), p.span.to_bits()))
                .collect();
            let k = *k;
            let sel = k.min(n);
            Ok(rank_incremental_policy(
                source,
                2,
                bounds,
                sel,
                || weighted_full(&parts, n),
                |i| weighted_row(&parts, i),
                |pos, _, _| {
                    let rank = pos + 1;
                    if pos < k {
                        (true, DecisionNote::RankWithinK { rank, k })
                    } else {
                        (false, DecisionNote::RankBeyondK { rank, k })
                    }
                },
                |_, _| DecisionNote::BeyondPrefix { k },
                TailNoteSpec::Moop { k },
                delta,
            ))
        }
        RankingPolicy::BudgetedMoop {
            weights,
            cost_trait,
            budget,
            max_k,
        } => {
            validate_weights(weights)?;
            let cost_id = matrix
                .trait_id(cost_trait)
                .ok_or_else(|| AutoCompError::UnknownTrait(cost_trait.clone()))?;
            let scores = moop_scores(matrix, weights)?;
            let costs = matrix.col(cost_id);
            let order = RankOrder::new(&scores, source);
            // The budget walk is inherently global: each selection moves
            // the remaining budget, so no per-row delta can be maintained
            // — always the fleet-wide path (see the module docs).
            Ok((
                RankedEntries::eager(budget_scan(
                    source,
                    &scores,
                    costs,
                    order,
                    *budget,
                    max_k.unwrap_or(usize::MAX),
                    BudgetNotes::Detailed,
                )),
                None,
                RankCycleStats {
                    memo_fast: false,
                    spliced_scores: 0,
                    recomputed_scores: n,
                },
            ))
        }
        RankingPolicy::QuotaAwareMoop {
            benefit_trait,
            cost_trait,
            k,
            budget,
        } => {
            let benefit_id = matrix
                .trait_id(benefit_trait)
                .ok_or_else(|| AutoCompError::UnknownTrait(benefit_trait.clone()))?;
            let cost_id = matrix
                .trait_id(cost_trait)
                .ok_or_else(|| AutoCompError::UnknownTrait(cost_trait.clone()))?;
            let benefit_col = matrix.col(benefit_id);
            let cost_col = matrix.col(cost_id);
            let (bmin, bmax) = column_min_max(benefit_col);
            let (cmin, cmax) = column_min_max(cost_col);
            let bspan = bmax - bmin;
            let cspan = cmax - cmin;
            let quota_row = |i: usize| {
                let util = source.quota_utilization(i);
                // §7: w1 = 0.5 × (1 + Used/Total). Clamp so w2 ≥ 0 even
                // for over-quota databases.
                let w1 = (0.5 * (1.0 + util)).min(1.0);
                let w2 = 1.0 - w1;
                w1 * normalize(benefit_col[i], bmin, bspan)
                    - w2 * normalize(cost_col[i], cmin, cspan)
            };
            match (k, budget) {
                (Some(k), _) => {
                    let k = *k;
                    let sel = k.min(n);
                    let bounds = vec![
                        (bmin.to_bits(), bspan.to_bits()),
                        (cmin.to_bits(), cspan.to_bits()),
                    ];
                    Ok(rank_incremental_policy(
                        source,
                        3,
                        bounds,
                        sel,
                        || (0..n).map(quota_row).collect(),
                        quota_row,
                        |pos, _, _| (pos < k, DecisionNote::QuotaRank { rank: pos + 1 }),
                        |_, _| DecisionNote::QuotaBeyondPrefix,
                        TailNoteSpec::Quota,
                        delta,
                    ))
                }
                (None, Some(budget)) => {
                    let scores: Vec<f64> = (0..n).map(quota_row).collect();
                    let order = RankOrder::new(&scores, source);
                    Ok((
                        RankedEntries::eager(budget_scan(
                            source,
                            &scores,
                            cost_col,
                            order,
                            *budget,
                            usize::MAX,
                            BudgetNotes::Bare,
                        )),
                        None,
                        RankCycleStats {
                            memo_fast: false,
                            spliced_scores: 0,
                            recomputed_scores: n,
                        },
                    ))
                }
                (None, None) => Err(AutoCompError::InvalidConfig(
                    "QuotaAwareMoop needs k or budget".into(),
                )),
            }
        }
    }
}

/// Resolves MOOP weights to their columns, normalization bounds and
/// folded factors.
fn weighted_parts<'a>(
    matrix: &'a TraitMatrix,
    weights: &[TraitWeight],
) -> Result<Vec<WeightedCol<'a>>> {
    weights
        .iter()
        .map(|w| {
            let id = matrix
                .trait_id(&w.trait_name)
                .ok_or_else(|| AutoCompError::UnknownTrait(w.trait_name.clone()))?;
            let direction = matrix
                .direction(id)
                .ok_or_else(|| AutoCompError::UnknownTrait(w.trait_name.clone()))?;
            let col = matrix.col(id);
            let (min, max) = column_min_max(col);
            let sign = match direction {
                crate::traits::TraitDirection::Benefit => 1.0,
                crate::traits::TraitDirection::Cost => -1.0,
            };
            Ok(WeightedCol {
                col,
                min,
                span: max - min,
                factor: sign * w.weight,
            })
        })
        .collect()
}

/// Fleet-wide weighted-sum scalarization over pre-resolved parts — the
/// exact accumulation shape of [`moop_scores`], so results are
/// bit-identical to it.
fn weighted_full(parts: &[WeightedCol<'_>], rows: usize) -> Vec<f64> {
    let mut scores = vec![0.0; rows];
    for part in parts {
        if part.span.abs() < f64::EPSILON {
            for s in scores.iter_mut() {
                *s += part.factor * 0.5;
            }
        } else {
            for (s, v) in scores.iter_mut().zip(part.col) {
                *s += part.factor * normalize(*v, part.min, part.span);
            }
        }
    }
    scores
}

/// One row's weighted-sum score, accumulated in the same per-weight
/// order as [`weighted_full`] (bit-identical by construction).
fn weighted_row(parts: &[WeightedCol<'_>], i: usize) -> f64 {
    let mut score = 0.0;
    for part in parts {
        score += if part.span.abs() < f64::EPSILON {
            part.factor * 0.5
        } else {
            part.factor * normalize(part.col[i], part.min, part.span)
        };
    }
    score
}

/// Shared core of the incremental-capable policies (threshold, MOOP
/// top-k, quota-aware top-k): score (splicing from the memo when the
/// normalization bounds are bit-unchanged), select (maintaining the
/// retained prefix when enough of it survived), and assemble the head +
/// (lazy) tail, emitting the next memo when a delta is wired in.
#[allow(clippy::too_many_arguments)]
fn rank_incremental_policy<S: RankSource + ?Sized>(
    source: &S,
    kind: u8,
    bounds: Vec<(u64, u64)>,
    sel: usize,
    score_full: impl Fn() -> Vec<f64>,
    score_row: impl Fn(usize) -> f64,
    prefix_entry: impl Fn(usize, usize, &[f64]) -> (bool, DecisionNote),
    tail_note: impl Fn(usize, &[f64]) -> DecisionNote,
    tail_spec: TailNoteSpec,
    delta: Option<&RankDelta<'_>>,
) -> (RankedEntries, Option<RankMemo>, RankCycleStats) {
    let n = source.len();
    let needed = sel.max(RANKED_PREFIX_MIN).min(n);
    // Retained-prefix size: enough slack that the expected dirty set
    // cannot knock the stable membership below `needed` every cycle.
    let memo_target = needed.saturating_add(needed.max(64)).min(n);
    let mut stats = RankCycleStats::default();

    // The memo splices only when the policy shape and every
    // normalization bound are bit-identical: scores are then pure
    // per-row functions of (unchanged) trait values.
    let memo = delta
        .and_then(|d| d.memo)
        .filter(|m| m.kind == kind && m.bounds == bounds);

    // Score pass: splice quiet rows, recompute the rest. The same walk
    // maps the retained prefix (prior generation rows) onto current rows
    // — a member is *stable* when it survived as a spliced row
    // (identical score by the bounds check above).
    let mut fresh_rows: Vec<u32> = Vec::new();
    let mut stable_slots: Vec<u32> = Vec::new();
    let scores: Vec<f64> = match (delta, memo) {
        (Some(d), Some(m)) => {
            let mut prefix_pos = vec![NO_PRIOR_ROW; m.scores.len()];
            for (pos, g) in m.prefix.iter().enumerate() {
                prefix_pos[*g as usize] = pos as u32;
            }
            stable_slots = vec![NO_PRIOR_ROW; m.prefix.len()];
            let mut scores = Vec::with_capacity(n);
            for i in 0..n {
                let g = d.prior_rows[i] as usize;
                if d.prior_rows[i] != NO_PRIOR_ROW && g < m.scores.len() && m.has[g] {
                    stats.spliced_scores += 1;
                    scores.push(m.scores[g]);
                    let pos = prefix_pos[g];
                    if pos != NO_PRIOR_ROW {
                        stable_slots[pos as usize] = i as u32;
                    }
                } else {
                    stats.recomputed_scores += 1;
                    fresh_rows.push(i as u32);
                    scores.push(score_row(i));
                }
            }
            scores
        }
        _ => {
            stats.recomputed_scores = n;
            score_full()
        }
    };

    // Rank comparator: score descending (NaN last, ±0 tied), ties by
    // candidate id — identical to `RankOrder`'s.
    let before = |a: u32, b: u32| {
        sort_key(scores[b as usize])
            .total_cmp(&sort_key(scores[a as usize]))
            .then_with(|| source.cmp_ids(a as usize, b as usize))
            == std::cmp::Ordering::Less
    };

    // Selection: maintain the retained prefix when possible, otherwise
    // run the fleet-wide lazy partial selection.
    let mut order_rows: Option<Vec<u32>> = None;
    if memo.is_some() {
        let stable: Vec<u32> = stable_slots
            .into_iter()
            .filter(|r| *r != NO_PRIOR_ROW)
            .collect();
        // Exactness guard: every row outside the pool ranked after all
        // retained-prefix members last cycle and is unchanged, so the
        // merged top-j is the true top-j for every j ≤ |stable|. Fewer
        // survivors than `needed` ⇒ fleet-wide fallback.
        if needed <= stable.len() {
            fresh_rows.sort_unstable_by(|a, b| {
                if before(*a, *b) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            let take = memo_target.min(stable.len());
            let mut merged = Vec::with_capacity(take);
            let (mut si, mut fi) = (0usize, 0usize);
            while merged.len() < take {
                match (stable.get(si), fresh_rows.get(fi)) {
                    (Some(s), Some(f)) => {
                        if before(*f, *s) {
                            merged.push(*f);
                            fi += 1;
                        } else {
                            merged.push(*s);
                            si += 1;
                        }
                    }
                    (Some(s), None) => {
                        merged.push(*s);
                        si += 1;
                    }
                    (None, Some(f)) => {
                        merged.push(*f);
                        fi += 1;
                    }
                    (None, None) => break,
                }
            }
            stats.memo_fast = true;
            order_rows = Some(merged);
        }
    }
    let order_rows = match order_rows {
        Some(rows) => rows,
        None => {
            let mut order = RankOrder::new(&scores, source);
            let prefix = if delta.is_some() {
                memo_target.max(needed)
            } else {
                needed
            };
            order.ensure(prefix);
            order.indices[..prefix].to_vec()
        }
    };

    // Head assembly: exactly `needed` rank-ordered rows (the extra
    // ordered rows beyond `needed` only feed the next memo's prefix).
    let mut in_head = vec![false; n];
    let mut head = Vec::with_capacity(needed);
    for (pos, row) in order_rows.iter().take(needed).enumerate() {
        let index = *row as usize;
        in_head[index] = true;
        let (selected, note) = prefix_entry(pos, index, &scores);
        head.push(RankedEntry {
            id: source.id(index),
            index,
            score: scores[index],
            selected,
            note,
        });
    }

    // Next cycle's memo, aligned to the generation being installed. In
    // the steady state (identity generation mapping) the arrays are
    // bulk copies, not per-row scatters.
    let memo_out = delta.map(|d| {
        let (gen_scores, has) = if d.gen_identity {
            debug_assert_eq!(d.gen_len, n);
            (scores.clone(), vec![true; d.gen_len])
        } else {
            let mut gen_scores = vec![0.0; d.gen_len];
            let mut has = vec![false; d.gen_len];
            for (i, score) in scores.iter().enumerate() {
                let g = d.gen_rows[i] as usize;
                gen_scores[g] = *score;
                has[g] = true;
            }
            (gen_scores, has)
        };
        RankMemo {
            kind,
            bounds,
            scores: gen_scores,
            has,
            prefix: order_rows.iter().map(|r| d.gen_rows[*r as usize]).collect(),
        }
    });

    let entries = match source.tail_identity() {
        Some((scope, uids)) => {
            debug_assert_eq!(uids.len(), n);
            RankedEntries {
                head,
                tail: Some(LazyTail {
                    scores,
                    uids,
                    scope,
                    in_head,
                    note: tail_spec,
                }),
            }
        }
        None => {
            let mut all = head;
            all.reserve(n - all.len());
            for index in 0..n {
                if in_head[index] {
                    continue;
                }
                all.push(RankedEntry {
                    id: source.id(index),
                    index,
                    score: scores[index],
                    selected: false,
                    note: tail_note(index, &scores),
                });
            }
            RankedEntries::eager(all)
        }
    };
    (entries, memo_out, stats)
}

/// Which note flavor a budget scan writes for unselected candidates: the
/// BudgetedMoop policy reports figures, the quota-aware §7 variant does
/// not (seed behavior preserved for both).
#[derive(Clone, Copy)]
enum BudgetNotes {
    Detailed,
    Bare,
}

/// Tracks the minimum cost over the candidates the budget scan has not
/// yet walked: a suffix min over the lazily sorted region plus a running
/// min over the still-unsorted tail. Unlike a global min (the previous
/// early-out bound), consumed candidates drop out of the bound — so once
/// the cheapest *remaining* candidate cannot fit, the scan stops instead
/// of walking (and rank-ordering) the rest of the fleet.
struct RemainingMinCost {
    /// `sorted_suffix_min[pos]` = min cost over sorted positions ≥ `pos`.
    sorted_suffix_min: Vec<f64>,
    /// Min cost over the unsorted tail (`+∞` when empty or all-NaN; the
    /// NaN-ignoring `f64::min` keeps NaN costs from poisoning the bound).
    tail_min: f64,
}

impl RemainingMinCost {
    /// Starts with an empty sorted region: the tail is the whole fleet.
    fn new(costs: &[f64]) -> Self {
        RemainingMinCost {
            sorted_suffix_min: Vec::new(),
            tail_min: costs.iter().cloned().fold(f64::INFINITY, f64::min),
        }
    }

    /// Rebuilds the bound after the sorted region grew. The suffix-array
    /// rebuild telescopes to O(n) over a full scan (doubling growth); the
    /// tail rescan is O(tail) per growth, matching the O(tail)
    /// `select_nth_unstable_by` pass `RankOrder::ensure` just paid for
    /// the same growth — a constant-factor addition, never a new
    /// asymptotic term.
    fn refresh<S: RankSource + ?Sized>(&mut self, order: &RankOrder<'_, S>, costs: &[f64]) {
        if self.sorted_suffix_min.len() == order.sorted_upto {
            return;
        }
        self.sorted_suffix_min.resize(order.sorted_upto, 0.0);
        let mut min = f64::INFINITY;
        for pos in (0..order.sorted_upto).rev() {
            min = min.min(costs[order.at(pos)]);
            self.sorted_suffix_min[pos] = min;
        }
        self.tail_min = order.indices[order.sorted_upto..]
            .iter()
            .map(|i| costs[*i as usize])
            .fold(f64::INFINITY, f64::min);
    }

    /// Min cost over every candidate at walk position ≥ `walked`.
    fn at(&self, walked: usize) -> f64 {
        let sorted = self
            .sorted_suffix_min
            .get(walked)
            .copied()
            .unwrap_or(f64::INFINITY);
        sorted.min(self.tail_min)
    }
}

/// Greedy budget fit over lazily materialized rank order. The scan walks
/// best-first exactly like the seed, but stops expanding the sorted
/// region once the selection cap is hit or once not even the cheapest
/// *remaining* (unwalked) candidate fits the leftover budget — after
/// that point no further selection (and no rank-dependent note) is
/// possible, so the rest of the fleet never needs ordering.
fn budget_scan<S: RankSource + ?Sized>(
    source: &S,
    scores: &[f64],
    costs: &[f64],
    mut order: RankOrder<'_, S>,
    budget: f64,
    cap: usize,
    notes: BudgetNotes,
) -> Vec<RankedEntry> {
    let n = order.len();
    let mut remaining_min = RemainingMinCost::new(costs);
    let mut spent = 0.0;
    let mut taken = 0usize;
    let mut walked = 0usize;
    let mut decisions: Vec<(bool, DecisionNote)> = Vec::new();
    while walked < n {
        // remaining_min is +∞ when every remaining cost is NaN, so this
        // comparison never sees NaN.
        if taken >= cap || spent + remaining_min.at(walked) > budget {
            break;
        }
        order.ensure(walked + 1);
        remaining_min.refresh(&order, costs);
        let index = order.at(walked);
        let cost = costs[index];
        if taken < cap && spent + cost <= budget {
            spent += cost;
            taken += 1;
            decisions.push((true, DecisionNote::FitsBudget { spent, budget }));
        } else {
            decisions.push((
                false,
                match notes {
                    BudgetNotes::Detailed => DecisionNote::OverBudget {
                        cost,
                        spent,
                        budget,
                    },
                    BudgetNotes::Bare => DecisionNote::OverBudgetBare,
                },
            ));
        }
        walked += 1;
    }
    // Materialize the report prefix even when the budget exhausted early.
    let prefix = walked.max(RANKED_PREFIX_MIN.min(n));
    order.ensure(prefix);
    let unprocessed_note = |index: usize| match notes {
        BudgetNotes::Detailed => DecisionNote::OverBudget {
            cost: costs[index],
            spent,
            budget,
        },
        BudgetNotes::Bare => DecisionNote::OverBudgetBare,
    };
    assemble_entries(
        source,
        scores,
        &order,
        prefix,
        |pos, index| {
            if pos < decisions.len() {
                decisions[pos].clone()
            } else {
                (false, unprocessed_note(index))
            }
        },
        |index| (false, unprocessed_note(index)),
    )
}

/// Weighted-sum scalarization over matrix columns: one fused
/// normalize-and-accumulate pass per weight, no intermediate columns.
fn moop_scores(matrix: &TraitMatrix, weights: &[TraitWeight]) -> Result<Vec<f64>> {
    let mut scores = vec![0.0; matrix.rows()];
    for w in weights {
        let id = matrix
            .trait_id(&w.trait_name)
            .ok_or_else(|| AutoCompError::UnknownTrait(w.trait_name.clone()))?;
        let direction = matrix
            .direction(id)
            .ok_or_else(|| AutoCompError::UnknownTrait(w.trait_name.clone()))?;
        let col = matrix.col(id);
        let (min, max) = column_min_max(col);
        let span = max - min;
        let sign = match direction {
            crate::traits::TraitDirection::Benefit => 1.0,
            crate::traits::TraitDirection::Cost => -1.0,
        };
        // The constant-column branch is hoisted out of the row loop; both
        // arms apply the shared `normalize` rule.
        if span.abs() < f64::EPSILON {
            for s in scores.iter_mut() {
                *s += sign * w.weight * 0.5;
            }
        } else {
            for (s, v) in scores.iter_mut().zip(col) {
                *s += sign * w.weight * normalize(*v, min, span);
            }
        }
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{CandidateStats, QuotaSignal};
    use crate::traits::TraitDirection;
    use std::collections::BTreeMap;

    fn candidate(uid: u64, quota_util: Option<f64>) -> Candidate {
        Candidate {
            id: CandidateId::table(uid),
            database: "db".into(),
            table_name: format!("t{uid}").into(),
            compaction_enabled: true,
            is_intermediate: false,
            stats: CandidateStats {
                quota: quota_util.map(|u| QuotaSignal {
                    used: (u * 100.0) as u64,
                    total: 100,
                }),
                ..CandidateStats::default()
            },
        }
    }

    fn traits(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn directions() -> BTreeMap<String, TraitDirection> {
        [
            ("benefit".to_string(), TraitDirection::Benefit),
            ("cost".to_string(), TraitDirection::Cost),
        ]
        .into_iter()
        .collect()
    }

    fn matrix(tv: &[BTreeMap<String, f64>]) -> TraitMatrix {
        TraitMatrix::from_maps(tv, &directions()).unwrap()
    }

    #[test]
    fn normalization_handles_constant_and_spread() {
        assert_eq!(min_max_normalize(&[5.0, 5.0]), vec![0.5, 0.5]);
        let n = min_max_normalize(&[0.0, 5.0, 10.0]);
        assert_eq!(n, vec![0.0, 0.5, 1.0]);
        assert!(min_max_normalize(&[]).is_empty());
    }

    #[test]
    fn threshold_selects_above_minimum() {
        let cands = vec![candidate(1, None), candidate(2, None), candidate(3, None)];
        let tv = vec![
            traits(&[("benefit", 5.0)]),
            traits(&[("benefit", 15.0)]),
            traits(&[("benefit", 25.0)]),
        ];
        let policy = RankingPolicy::Threshold {
            trait_name: "benefit".into(),
            min_value: 10.0,
            max_k: None,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(3));
        assert!(ranked[0].selected && ranked[1].selected);
        assert!(!ranked[2].selected);
        assert_eq!(ranked[0].note.to_string(), "benefit 25.000 >= 10.000");
        assert_eq!(ranked[2].note.to_string(), "benefit 5.000 < 10.000");
    }

    #[test]
    fn threshold_cap_gets_a_distinct_note() {
        // Three candidates above threshold, cap of 1: the two dropped by
        // the cap must say so, not pretend they were below threshold (the
        // seed bug).
        let cands = vec![candidate(1, None), candidate(2, None), candidate(3, None)];
        let tv = vec![
            traits(&[("benefit", 30.0)]),
            traits(&[("benefit", 20.0)]),
            traits(&[("benefit", 5.0)]),
        ];
        let policy = RankingPolicy::Threshold {
            trait_name: "benefit".into(),
            min_value: 10.0,
            max_k: Some(1),
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert!(ranked[0].selected);
        assert!(!ranked[1].selected);
        assert_eq!(
            ranked[1].note.to_string(),
            "benefit 20.000 >= 10.000 but over cap k=1"
        );
        assert_eq!(ranked[2].note.to_string(), "benefit 5.000 < 10.000");
    }

    #[test]
    fn moop_balances_benefit_against_cost() {
        // The §4.2 motivating example: candidate 1 yields nearly the same
        // benefit as candidate 2 at a tenth of the cost, so it must rank
        // first. Candidate 3 anchors the min–max normalization (with only
        // two candidates every trait normalizes to {0,1}, which is the
        // known degenerate case of min–max scalarization).
        let cands = vec![candidate(1, None), candidate(2, None), candidate(3, None)];
        let tv = vec![
            traits(&[("benefit", 200.0), ("cost", 10.0)]),
            traits(&[("benefit", 210.0), ("cost", 100.0)]),
            traits(&[("benefit", 0.0), ("cost", 0.0)]),
        ];
        let policy = RankingPolicy::Moop {
            weights: vec![
                TraitWeight::new("benefit", 0.7),
                TraitWeight::new("cost", 0.3),
            ],
            k: 1,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(1), "ratio should win");
        assert!(ranked[0].selected);
        assert!(!ranked[1].selected);
        assert_eq!(ranked[0].note.to_string(), "rank 1 <= k=1");
        assert_eq!(ranked[1].note.to_string(), "rank 2 > k=1");
    }

    #[test]
    fn moop_rejects_bad_weights() {
        let cands = vec![candidate(1, None)];
        let tv = vec![traits(&[("benefit", 1.0)])];
        let bad_sum = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("benefit", 0.5)],
            k: 1,
        };
        assert!(matches!(
            rank_and_select(&cands, &matrix(&tv), &bad_sum),
            Err(AutoCompError::InvalidWeights(_))
        ));
        let unknown = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("nope", 1.0)],
            k: 1,
        };
        assert!(matches!(
            rank_and_select(&cands, &matrix(&tv), &unknown),
            Err(AutoCompError::UnknownTrait(_))
        ));
    }

    #[test]
    fn moop_requires_a_direction_for_weighted_traits() {
        // A trait present in the matrix but with no declared direction
        // cannot be scalarized (seed: missing `directions` entry).
        let cands = vec![candidate(1, None), candidate(2, None)];
        let tv = vec![traits(&[("mystery", 1.0)]), traits(&[("mystery", 2.0)])];
        let m = TraitMatrix::from_maps(&tv, &BTreeMap::new()).unwrap();
        let policy = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("mystery", 1.0)],
            k: 1,
        };
        assert!(matches!(
            rank_and_select(&cands, &m, &policy),
            Err(AutoCompError::UnknownTrait(_))
        ));
    }

    #[test]
    fn budget_selection_is_dynamic_k() {
        let cands: Vec<Candidate> = (1..=4).map(|i| candidate(i, None)).collect();
        let tv = vec![
            traits(&[("benefit", 100.0), ("cost", 60.0)]),
            traits(&[("benefit", 90.0), ("cost", 30.0)]),
            traits(&[("benefit", 80.0), ("cost", 30.0)]),
            traits(&[("benefit", 10.0), ("cost", 1.0)]),
        ];
        let policy = RankingPolicy::BudgetedMoop {
            weights: vec![
                TraitWeight::new("benefit", 0.7),
                TraitWeight::new("cost", 0.3),
            ],
            cost_trait: "cost".into(),
            budget: 65.0,
            max_k: None,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        let selected: Vec<u64> = ranked
            .iter()
            .filter(|e| e.selected)
            .map(|e| e.id.table_uid)
            .collect();
        // Greedy fit: best-scored first while budget lasts; candidate 1
        // (cost 60) takes most of the budget, then only candidate 4 fits.
        let spent: f64 = ranked
            .iter()
            .filter(|e| e.selected)
            .map(|e| match e.id.table_uid {
                1 => 60.0,
                2 | 3 => 30.0,
                _ => 1.0,
            })
            .sum();
        assert!(spent <= 65.0, "spent {spent}");
        assert!(!selected.is_empty());
    }

    #[test]
    fn budget_scan_stops_once_no_remaining_candidate_fits() {
        // The cheapest candidate ranks first (highest score) and consumes
        // most of the budget; every *remaining* candidate costs more than
        // the leftover. The suffix-min early-out must stop the rank walk
        // right after the selection instead of materializing the full
        // fleet order — observable because the unwalked tail stays in
        // candidate order (ascending index) rather than rank order
        // (descending score ⇒ descending index here).
        let n = 60u64;
        let cands: Vec<Candidate> = (1..=n).map(|i| candidate(i, None)).collect();
        let tv: Vec<BTreeMap<String, f64>> = (1..=n)
            .map(|i| {
                let cost = if i == n { 10.0 } else { 50.0 };
                traits(&[("benefit", i as f64), ("cost", cost)])
            })
            .collect();
        let policy = RankingPolicy::BudgetedMoop {
            weights: vec![TraitWeight::new("benefit", 1.0)],
            cost_trait: "cost".into(),
            budget: 15.0,
            max_k: None,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        let selected: Vec<u64> = ranked
            .iter()
            .filter(|e| e.selected)
            .map(|e| e.id.table_uid)
            .collect();
        assert_eq!(selected, vec![n], "only the cheap top candidate fits");
        // Prefix rows (report) are rank-ordered; the tail is in candidate
        // order, proving the walk stopped at the early-out.
        for w in ranked[RANKED_PREFIX_MIN..].windows(2) {
            assert!(
                w[0].index < w[1].index,
                "tail must be candidate-ordered (walk stopped early)"
            );
        }
        // Every unselected entry reports the budget verdict.
        assert!(ranked
            .iter()
            .filter(|e| !e.selected)
            .all(|e| e.note.to_string().starts_with("over budget")));
    }

    #[test]
    fn quota_pressure_boosts_priority() {
        // Same traits, different quota pressure: the fuller database's
        // candidate must rank first (§7's w1 formula).
        let cands = vec![candidate(1, Some(0.1)), candidate(2, Some(0.9))];
        let tv = vec![
            traits(&[("benefit", 50.0), ("cost", 50.0)]),
            traits(&[("benefit", 50.0), ("cost", 50.0)]),
        ];
        let policy = RankingPolicy::QuotaAwareMoop {
            benefit_trait: "benefit".into(),
            cost_trait: "cost".into(),
            k: Some(1),
            budget: None,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(2));
        assert!(ranked[0].selected);
        assert_eq!(ranked[0].note.to_string(), "quota-aware rank 1");
    }

    #[test]
    fn quota_policy_requires_k_or_budget() {
        let cands = vec![candidate(1, None)];
        let tv = vec![traits(&[("benefit", 1.0), ("cost", 1.0)])];
        let policy = RankingPolicy::QuotaAwareMoop {
            benefit_trait: "benefit".into(),
            cost_trait: "cost".into(),
            k: None,
            budget: None,
        };
        assert!(matches!(
            rank_and_select(&cands, &matrix(&tv), &policy),
            Err(AutoCompError::InvalidConfig(_))
        ));
    }

    #[test]
    fn ties_break_on_candidate_id() {
        let cands = vec![candidate(2, None), candidate(1, None)];
        let tv = vec![traits(&[("benefit", 5.0)]), traits(&[("benefit", 5.0)])];
        let policy = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("benefit", 1.0)],
            k: 1,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(1), "lower id wins ties");
    }

    #[test]
    fn nan_scores_rank_last_without_panicking() {
        // The seed's `partial_cmp(...).expect(...)` turned one NaN trait
        // into a fleet-wide cycle abort; the columnar path totals the
        // order instead.
        let cands = vec![candidate(1, None), candidate(2, None), candidate(3, None)];
        let tv = vec![
            traits(&[("benefit", f64::NAN)]),
            traits(&[("benefit", 15.0)]),
            traits(&[("benefit", 25.0)]),
        ];
        let policy = RankingPolicy::Threshold {
            trait_name: "benefit".into(),
            min_value: 10.0,
            max_k: None,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked[0].id, CandidateId::table(3));
        assert_eq!(ranked[1].id, CandidateId::table(2));
        assert_eq!(ranked[2].id, CandidateId::table(1));
        assert!(!ranked[2].selected, "NaN never satisfies a threshold");
    }

    #[test]
    fn tail_entries_follow_in_candidate_order() {
        // 50 candidates, k=2: the first max(k, RANKED_PREFIX_MIN) entries
        // are in exact rank order; the tail is in candidate order.
        let cands: Vec<Candidate> = (1..=50).map(|i| candidate(i, None)).collect();
        let tv: Vec<BTreeMap<String, f64>> = (1..=50)
            .map(|i| traits(&[("benefit", f64::from(i % 17) * 3.0)]))
            .collect();
        let policy = RankingPolicy::Moop {
            weights: vec![TraitWeight::new("benefit", 1.0)],
            k: 2,
        };
        let ranked = rank_and_select(&cands, &matrix(&tv), &policy).unwrap();
        assert_eq!(ranked.len(), 50);
        assert_eq!(ranked.iter().filter(|e| e.selected).count(), 2);
        // Prefix in strict rank order.
        for w in ranked[..RANKED_PREFIX_MIN].windows(2) {
            assert!(w[0].score > w[1].score || (w[0].score == w[1].score && w[0].id < w[1].id));
        }
        // Tail in candidate-index order.
        for w in ranked[RANKED_PREFIX_MIN..].windows(2) {
            assert!(w[0].index < w[1].index);
        }
        // Every candidate appears exactly once.
        let mut seen: Vec<usize> = ranked.iter().map(|e| e.index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }
}
